"""Tests for column/table schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.values import DataType


def make_schema():
    return TableSchema(
        [
            ColumnSchema("player", DataType.TEXT, is_subject=True),
            ColumnSchema("country", DataType.TEXT),
            ColumnSchema("titles", DataType.INTEGER),
        ]
    )


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        TableSchema([])


def test_from_names():
    schema = TableSchema.from_names(["a", "b"])
    assert schema.names == ["a", "b"]
    assert all(c.data_type == DataType.TEXT for c in schema)


def test_basic_accessors():
    schema = make_schema()
    assert schema.width == len(schema) == 3
    assert schema[1].name == "country"
    assert schema.index_of("titles") == 2
    assert schema.subject_index() == 0


def test_index_of_missing_raises():
    with pytest.raises(SchemaError):
        make_schema().index_of("nope")


def test_duplicate_names_resolve_to_first():
    schema = TableSchema([ColumnSchema("x"), ColumnSchema("x")])
    assert schema.index_of("x") == 0


def test_subject_index_none():
    schema = TableSchema.from_names(["a", "b"])
    assert schema.subject_index() is None


def test_reordered():
    schema = make_schema().reordered([2, 0, 1])
    assert schema.names == ["titles", "player", "country"]


def test_reordered_rejects_non_permutation():
    with pytest.raises(SchemaError):
        make_schema().reordered([0, 0, 1])


def test_projected():
    schema = make_schema().projected([2, 0])
    assert schema.names == ["titles", "player"]


def test_projected_out_of_range():
    with pytest.raises(SchemaError):
        make_schema().projected([5])


def test_renamed_preserves_other_fields():
    schema = make_schema().renamed(0, "athlete")
    assert schema.names[0] == "athlete"
    assert schema[0].is_subject  # renaming keeps the subject flag
    assert schema[0].data_type == DataType.TEXT


def test_renamed_out_of_range():
    with pytest.raises(SchemaError):
        make_schema().renamed(9, "x")


def test_equality_and_hash():
    assert make_schema() == make_schema()
    assert hash(make_schema()) == hash(make_schema())
    assert make_schema() != TableSchema.from_names(["a", "b", "c"])


def test_column_schema_helpers():
    col = ColumnSchema("price", DataType.MONEY)
    assert col.renamed("cost").name == "cost"
    assert col.with_type(DataType.FLOAT).data_type == DataType.FLOAT
    # originals unchanged (frozen dataclass)
    assert col.name == "price"
    assert col.data_type == DataType.MONEY
