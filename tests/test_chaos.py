"""Cross-layer chaos harness tests.

The invariant under test (see :mod:`repro.testing.chaos`): every sweep
completes, degrades with named failures, or resumes bit-identically —
never hangs, never silently drops a cell.  These tests compose the
injectors the same way the CI chaos-smoke job does, at the smallest
sizes that still exercise multi-worker scheduling.
"""

import json
import os

import numpy as np
import pytest

from repro import Observatory, RuntimeConfig
from repro.core.framework import DatasetSizes
from repro.errors import CellPoisonedError
from repro.runtime.disk import DiskTier
from repro.runtime.faults import FaultPolicy
from repro.runtime.scheduler import CRASH_ENV, STALL_ENV
from repro.testing import ChaosPlan, assert_sweep_invariant

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
MODELS = ["bert", "taptap"]
PROPS = ["row_order_insignificance", "sample_fidelity"]


def make_observatory(**runtime_kwargs) -> Observatory:
    return Observatory(seed=3, sizes=SIZES, runtime=RuntimeConfig(**runtime_kwargs))


def cell_dicts(sweep):
    return {
        (c.model_name, c.property_name): c.result.to_dict() for c in sweep.cells
    }


class TestChaosPlanMechanics:
    def test_env_injection_applied_and_restored(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        monkeypatch.setenv(STALL_ENV, "9:1.0")  # pre-existing value survives
        plan = ChaosPlan(seed=1).worker_crash(0).worker_stall(1, 0.5)
        with plan:
            assert os.environ[CRASH_ENV] == "worker:0"
            assert os.environ[STALL_ENV] == "1:0.5"
        assert CRASH_ENV not in os.environ
        assert os.environ[STALL_ENV] == "9:1.0"

    def test_one_scheduler_spec_enforced(self):
        with pytest.raises(ValueError, match="one spec"):
            ChaosPlan(seed=1).worker_crash(0).poison_cell("bert", "p")
        with pytest.raises(ValueError, match="one spec"):
            ChaosPlan(seed=1).worker_stall(0, 1.0).worker_stall(1, 1.0)

    def test_not_reentrant(self):
        plan = ChaosPlan(seed=1)
        with plan:
            with pytest.raises(RuntimeError, match="not reentrant"):
                plan.__enter__()

    def test_describe_is_loggable(self):
        plan = ChaosPlan(seed=7).worker_crash(2)
        plan.parent_kill("/tmp/j", 3, 12345)
        payload = json.loads(json.dumps(plan.describe()))
        assert payload["seed"] == 7
        assert payload["scheduler_crash"] == "worker:2"
        assert payload["parent_kills"][0]["after_cells"] == 3

    def test_same_seed_tears_the_same_entry(self, tmp_path):
        for attempt in ("a", "b"):
            directory = str(tmp_path / attempt)
            tier = DiskTier(directory)
            for i in range(4):
                tier.put(f"entry-{i}", np.arange(32.0) + i)
        torn = []
        for attempt in ("a", "b"):
            directory = str(tmp_path / attempt)
            with ChaosPlan(seed=11).torn_cache_write(directory):
                pass
            torn.append(
                sorted(
                    (name, os.path.getsize(os.path.join(directory, name)))
                    for name in os.listdir(directory)
                    if name.endswith(".npy")
                )
            )
        assert torn[0] == torn[1]  # deterministic under the seed

    def test_torn_entry_on_empty_cache_is_noop(self, tmp_path):
        with ChaosPlan(seed=1).torn_cache_write(str(tmp_path)):
            pass
        with ChaosPlan(seed=1).torn_cache_write(str(tmp_path / "missing")):
            pass


class TestTornCacheWrites:
    def test_disk_tier_drops_torn_entry_never_serves_it(self, tmp_path):
        tier = DiskTier(str(tmp_path))
        tier.put("k", np.arange(64.0))
        with ChaosPlan(seed=3).torn_cache_write(str(tmp_path)):
            assert tier.get("k") is None  # dropped, not served torn
            assert tier.drops == 1
            assert tier.put("k", np.arange(64.0))  # recompute path works
            assert np.array_equal(tier.get("k"), np.arange(64.0))

    def test_sweep_over_torn_cache_is_bit_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = make_observatory(
            max_workers=1, disk_cache_dir=cache_dir
        ).sweep(MODELS, PROPS)
        with ChaosPlan(seed=5).torn_cache_write(cache_dir):
            second = make_observatory(
                max_workers=1, disk_cache_dir=cache_dir
            ).sweep(MODELS, PROPS)
        assert cell_dicts(first) == cell_dicts(second)


class TestSchedulerChaos:
    def test_worker_crash_sweep_still_completes(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        reference = make_observatory(max_workers=1).sweep(MODELS, PROPS)
        with ChaosPlan(seed=2).worker_crash(0):
            survived = make_observatory(max_workers=2).sweep(
                MODELS, PROPS, execution="process"
            )
        assert cell_dicts(survived) == cell_dicts(reference)
        assert_sweep_invariant(survived, planned=len(reference.cells))

    def test_poisoned_cell_degrades_with_named_failure(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        reference = make_observatory(max_workers=1).sweep(MODELS, PROPS)
        # Budget below the worker count: the poisoned group must exhaust
        # its retries (and degrade) while a worker is still alive to
        # finish everything else — all-workers-dead is a WorkerCrashError
        # even under degrade, by design (resume is that recovery).
        policy = FaultPolicy(scheduler_retries=1)
        with ChaosPlan(seed=2).poison_cell("bert", "sample_fidelity"):
            degraded = make_observatory(max_workers=2).sweep(
                MODELS,
                PROPS,
                execution="process",
                on_error="degrade",
                fault_policy=policy,
            )
        assert_sweep_invariant(degraded, planned=len(reference.cells))
        failed = {(f.model_name, f.property_name) for f in degraded.failures}
        # The poisoned cell's work group degrades as one unit; the
        # poisoned cell itself must be in it, with a typed name.
        assert any("sample_fidelity" == p for _, p in failed)
        assert all(f.error == "CellPoisonedError" for f in degraded.failures)
        ok = cell_dicts(degraded)
        for key, value in ok.items():
            assert value == cell_dicts(reference)[key]

    def test_poisoned_cell_aborts_typed_by_default(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        with ChaosPlan(seed=2).poison_cell("bert", "sample_fidelity"):
            with pytest.raises(CellPoisonedError):
                make_observatory(max_workers=2).sweep(
                    MODELS,
                    PROPS,
                    execution="process",
                    fault_policy=FaultPolicy(scheduler_retries=0),
                )


class TestInvariantChecker:
    class _Cell:
        def __init__(self, model, prop):
            self.model_name = model
            self.property_name = prop

    class _Failure:
        def __init__(self, model, prop, error="XError", message="boom"):
            self.model_name = model
            self.property_name = prop
            self.error = error
            self.message = message

    class _Sweep:
        def __init__(self, cells, failures):
            self.cells = cells
            self.failures = failures

    def test_accepts_complete_accounting(self):
        sweep = self._Sweep(
            [self._Cell("m", "p1")], [self._Failure("m", "p2")]
        )
        assert_sweep_invariant(sweep, planned=2)

    def test_rejects_dropped_cells(self):
        sweep = self._Sweep([self._Cell("m", "p1")], [])
        with pytest.raises(AssertionError, match="dropped"):
            assert_sweep_invariant(sweep, planned=2)

    def test_rejects_double_counting(self):
        sweep = self._Sweep(
            [self._Cell("m", "p1")], [self._Failure("m", "p1")]
        )
        with pytest.raises(AssertionError, match="double-counted"):
            assert_sweep_invariant(sweep, planned=1)

    def test_rejects_unnamed_failures(self):
        sweep = self._Sweep([], [self._Failure("m", "p1", error="")])
        with pytest.raises(AssertionError, match="named error"):
            assert_sweep_invariant(sweep, planned=1)
