"""Tests for Dr.Spider-style perturbations."""

import pytest

from repro.data.drspider import (
    PerturbationKind,
    PerturbationSuite,
    abbreviate,
    perturb_table,
    synonym_of,
)
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import DatasetError
from repro.relational.table import Table


def test_abbreviate_examples():
    assert abbreviate("CountryName") == "cntry_nm"
    assert abbreviate("country") == "cntry"
    assert abbreviate("daily intake") == "dly_intk"
    assert abbreviate("age") == "age"  # too short to abbreviate


def test_abbreviate_deterministic_lowercase():
    out = abbreviate("PopulationCount")
    assert out == out.lower()
    assert "_" in out


def test_synonym_of():
    assert synonym_of("country") == "nation"
    assert synonym_of("country", 1) == "state"
    assert synonym_of("COUNTRY") == "nation"  # case-insensitive lookup
    assert synonym_of("quux") is None


def test_perturb_synonym(tennis_table):
    out = perturb_table(tennis_table, 1, PerturbationKind.SCHEMA_SYNONYM)
    assert out.header[1] == "nation"
    assert out.rows == tennis_table.rows  # values untouched


def test_perturb_synonym_inapplicable():
    table = Table.from_columns([("zzz", [1, 2])])
    assert perturb_table(table, 0, PerturbationKind.SCHEMA_SYNONYM) is None


def test_perturb_abbreviation(tennis_table):
    out = perturb_table(tennis_table, 0, PerturbationKind.SCHEMA_ABBREVIATION)
    assert out.header[0] == "plyr"
    assert out.rows == tennis_table.rows


def test_perturb_column_equivalence_age():
    table = Table.from_columns([("age", [30, 41])])
    out = perturb_table(table, 0, PerturbationKind.COLUMN_EQUIVALENCE)
    assert out.header[0] == "birthyear"
    assert out.column_values(0) == [1994, 1983]


def test_perturb_column_equivalence_money():
    table = Table.from_columns([("price", ["$15.00", "$2,000.00"])])
    out = perturb_table(table, 0, PerturbationKind.COLUMN_EQUIVALENCE)
    assert out.column_values(0) == ["15.00 USD", "2000.00 USD"]


def test_perturb_column_equivalence_year():
    table = Table.from_columns([("year", [1999, 2005])])
    out = perturb_table(table, 0, PerturbationKind.COLUMN_EQUIVALENCE)
    assert out.header[0] == "release date"
    assert out.column_values(0) == ["1999-01-01", "2005-01-01"]


def test_perturb_column_equivalence_inapplicable(tennis_table):
    assert perturb_table(tennis_table, 1, PerturbationKind.COLUMN_EQUIVALENCE) is None


def test_perturb_out_of_range(tennis_table):
    with pytest.raises(DatasetError):
        perturb_table(tennis_table, 9, PerturbationKind.SCHEMA_SYNONYM)


def test_suite_builds_cases():
    corpus = WikiTablesGenerator(seed=4).generate(6)
    suite = PerturbationSuite(corpus)
    assert suite.total_cases() > 0
    synonyms = suite.of_kind(PerturbationKind.SCHEMA_SYNONYM)
    abbreviations = suite.of_kind(PerturbationKind.SCHEMA_ABBREVIATION)
    assert synonyms and abbreviations
    for case in synonyms[:5]:
        assert case.original_header != case.perturbed_header
        assert case.table.rows == case.perturbed_table.rows


def test_suite_perturbations_preserve_semantics():
    """Perturbed tables keep shape; only the targeted column changes."""
    corpus = WikiTablesGenerator(seed=4).generate(4)
    suite = PerturbationSuite(corpus)
    for kind in PerturbationKind:
        for case in suite.of_kind(kind)[:5]:
            assert case.perturbed_table.num_rows == case.table.num_rows
            assert case.perturbed_table.num_columns == case.table.num_columns
            for c in range(case.table.num_columns):
                if c != case.column_index:
                    assert case.perturbed_table.header[c] == case.table.header[c]
