"""Tests for cosine similarity utilities and distribution summaries."""

import numpy as np
import pytest

from repro.core.measures.similarity import cosine_similarity, cosine_to_reference, pairwise_cosine
from repro.core.measures.stats import five_number_summary, summarize
from repro.errors import MeasureError


def test_cosine_basic():
    assert cosine_similarity([1, 0], [1, 0]) == 1.0
    assert cosine_similarity([1, 0], [0, 1]) == 0.0
    assert cosine_similarity([1, 0], [-1, 0]) == -1.0


def test_cosine_scale_invariant():
    a, b = np.array([1.0, 2.0, 3.0]), np.array([2.0, -1.0, 0.5])
    assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(5 * a, 0.1 * b))


def test_cosine_clipped_to_unit_interval():
    a = np.full(100, 1e-3)
    assert -1.0 <= cosine_similarity(a, a) <= 1.0


def test_cosine_zero_vector_raises():
    with pytest.raises(MeasureError):
        cosine_similarity([0, 0], [1, 0])


def test_cosine_shape_mismatch():
    with pytest.raises(MeasureError):
        cosine_similarity([1, 0], [1, 0, 0])


def test_cosine_to_reference():
    ref = np.array([1.0, 0.0])
    others = np.array([[1.0, 0.0], [0.0, 2.0], [-3.0, 0.0]])
    out = cosine_to_reference(ref, others)
    assert np.allclose(out, [1.0, 0.0, -1.0])


def test_pairwise_cosine_properties():
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((6, 4))
    sims = pairwise_cosine(matrix)
    assert sims.shape == (6, 6)
    assert np.allclose(np.diag(sims), 1.0)
    assert np.allclose(sims, sims.T)
    assert sims.min() >= -1.0 and sims.max() <= 1.0


def test_five_number_summary():
    lo, q1, med, q3, hi = five_number_summary([1, 2, 3, 4, 5])
    assert (lo, med, hi) == (1.0, 3.0, 5.0)
    assert q1 == 2.0 and q3 == 4.0


def test_summarize_fields():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.n == 4
    assert stats.mean == 2.5
    assert stats.iqr == stats.q3 - stats.q1
    assert stats.tukey_low == pytest.approx(stats.q1 - 1.5 * stats.iqr)
    assert stats.tukey_high == pytest.approx(stats.q3 + 1.5 * stats.iqr)


def test_summarize_single_value():
    stats = summarize([7.0])
    assert stats.std == 0.0
    assert stats.minimum == stats.maximum == 7.0


def test_summarize_empty_raises():
    with pytest.raises(MeasureError):
        summarize([])


def test_stats_to_dict_and_str():
    stats = summarize([1.0, 2.0, 3.0])
    d = stats.to_dict()
    assert {"n", "mean", "std", "min", "q1", "median", "q3", "max"} <= set(d)
    assert "med=" in str(stats)
