"""Tests for the async streaming executor, telemetry, and sweep observability.

The streaming pipeline is a pure scheduling change: every result must be
bit-identical to the synchronous path (the local backend is exact and
chunking only regroups independent sequences).  Sweeps additionally
report per-cell phase splits, the encoder backend, and pipeline/padding
accounting — locked in here end to end for both engines.
"""

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.core.framework import DatasetSizes, Observatory
from repro.core.levels import EmbeddingLevel
from repro.errors import ObservatoryError
from repro.models.backends import PaddedBackend
from repro.models.registry import load_model, register_model, unregister_model
from repro.relational.table import Table
from repro.runtime.cache import EmbeddingCache
from repro.runtime.pipeline import EncodeLoop, EncodeLoopClosedError, encode_loop
from repro.runtime.planner import EmbeddingExecutor, RuntimeConfig

LEVELS = (EmbeddingLevel.COLUMN, EmbeddingLevel.ROW, EmbeddingLevel.TABLE)


def corpus(n=14):
    tables = []
    for i in range(n):
        rows = 2 + i % 5
        tables.append(
            Table.from_columns(
                [
                    ("name", [f"item {j * 7 + i}" for j in range(rows)]),
                    ("price", [j + 10 * i for j in range(rows)]),
                ],
                table_id=f"stream-{i}",
            )
        )
    return tables


class TestStreamingExecutor:
    def test_streaming_bit_identical_to_sync(self, bert):
        tables = corpus()
        sync = EmbeddingExecutor(
            bert, cache=EmbeddingCache(max_entries=256), async_encode=False
        )
        streamed = EmbeddingExecutor(
            bert,
            cache=EmbeddingCache(max_entries=256),
            async_encode=True,
            pipeline_chunk=4,
        )
        a = sync.embed_levels_many(tables, LEVELS)
        b = streamed.embed_levels_many(tables, LEVELS)
        for bundle_a, bundle_b in zip(a, b):
            for level in LEVELS:
                assert np.array_equal(bundle_a[level], bundle_b[level])
        stats = streamed.pipeline_stats
        assert stats.batches >= 2
        assert stats.encode_seconds > 0
        assert 0.0 <= stats.overlap_ratio <= 1.0

    def test_streaming_caches_like_sync(self, bert):
        cache = EmbeddingCache(max_entries=256)
        executor = EmbeddingExecutor(
            bert, cache=cache, async_encode=True, pipeline_chunk=4
        )
        tables = corpus()
        executor.embed_levels_many(tables, LEVELS)
        misses = cache.stats.misses
        executor.embed_levels_many(tables, LEVELS)
        assert cache.stats.misses == misses  # second pass: pure hits

    def test_padded_entries_never_poison_an_exact_cache(self, bert):
        # A shared (or persistent) cache must keep tolerance-tier
        # embeddings in their own key space: an exact executor reading a
        # cache populated by a padded run must still be bit-identical to
        # uncached exact computation.
        cache = EmbeddingCache(max_entries=512)
        padded_exec = EmbeddingExecutor(
            load_model("bert", backend=PaddedBackend()), cache=cache
        )
        exact_exec = EmbeddingExecutor(bert, cache=cache)
        tables = corpus(8)
        padded_exec.embed_levels_many(tables, LEVELS)  # warm with padded
        got = exact_exec.embed_levels_many(tables, LEVELS)
        want = EmbeddingExecutor(bert, naive=True).embed_levels_many(tables, LEVELS)
        for bundle_got, bundle_want in zip(got, want):
            for level in LEVELS:
                assert np.array_equal(bundle_got[level], bundle_want[level])

    def test_small_requests_skip_the_loop(self, bert):
        executor = EmbeddingExecutor(
            bert, cache=EmbeddingCache(max_entries=64), pipeline_chunk=64
        )
        executor.embed_levels_many(corpus(3), LEVELS)
        assert executor.pipeline_stats.batches == 0

    def test_generic_model_falls_back(self):
        class Minimal:
            name = "minimal-stream"
            dim = 4

            def supports(self, level):
                return level == EmbeddingLevel.COLUMN

            def supported_levels(self):
                return frozenset({EmbeddingLevel.COLUMN})

            def embed_columns(self, table):
                return np.ones((table.num_columns, 4))

        executor = EmbeddingExecutor(
            Minimal(),
            cache=EmbeddingCache(max_entries=64),
            async_encode=True,
            pipeline_chunk=2,
        )
        bundles = executor.embed_levels_many(corpus(6), (EmbeddingLevel.COLUMN,))
        assert all(b[EmbeddingLevel.COLUMN].shape == (2, 4) for b in bundles)
        assert executor.pipeline_stats.batches == 0

    def test_row_template_model_falls_back(self, taptap):
        executor = EmbeddingExecutor(
            taptap,
            cache=EmbeddingCache(max_entries=64),
            async_encode=True,
            pipeline_chunk=2,
        )
        tables = corpus(5)
        bundles = executor.embed_levels_many(tables, (EmbeddingLevel.ROW,))
        for table, bundle in zip(tables, bundles):
            assert np.array_equal(
                bundle[EmbeddingLevel.ROW], taptap.embed_rows(table)
            )
        assert executor.pipeline_stats.batches == 0


class TestEncodeLoop:
    def test_shared_loop_survives_and_submits(self):
        loop = encode_loop()
        assert loop is encode_loop()  # singleton
        assert loop.is_alive()

        async def compute():
            return 21 * 2

        assert loop.submit(compute()).result(timeout=5) == 42

    def test_private_loop_close(self):
        loop = EncodeLoop()

        async def compute():
            return "ok"

        assert loop.submit(compute()).result(timeout=5) == "ok"
        loop.close()
        assert not loop.is_alive()


class TestTelemetry:
    def test_spans_accumulate_per_thread(self):
        timings = telemetry.start_cell()
        try:
            with telemetry.span("encode"):
                pass
            telemetry.add("aggregate", 0.25)
            telemetry.add("encode", 0.5, timings=timings)
        finally:
            stopped = telemetry.stop_cell()
        assert stopped is timings
        assert timings.aggregate_seconds == 0.25
        assert timings.encode_seconds >= 0.5
        assert telemetry.current() is None

    def test_span_noop_without_cell(self):
        telemetry.stop_cell()
        with telemetry.span("encode"):
            pass  # must not raise nor allocate a cell
        assert telemetry.current() is None

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            telemetry.CellTimings().add("network", 1.0)


class TestSweepObservability:
    SIZES = DatasetSizes(
        wikitables_tables=3, sotab_tables=4, n_permutations=4, min_rows=4, max_rows=6
    )
    PROPS = ["row_order_insignificance", "heterogeneous_context"]

    def test_records_and_slowest(self):
        observatory = Observatory(seed=0, sizes=self.SIZES)
        sweep = observatory.sweep(["bert"], self.PROPS)
        assert sweep.backend == "local (exact)"
        records = sweep.records
        assert len(records) == len(sweep.cells) == 2
        for record in records:
            assert record["seconds"] > 0
            assert record["encode_seconds"] > 0
            assert record["encode_seconds"] + record["aggregate_seconds"] >= 0
        slowest = sweep.slowest(1)
        assert len(slowest) == 1
        assert slowest[0].seconds == max(c.seconds for c in sweep.cells)
        payload = sweep.to_dict()
        assert payload["backend"] == "local (exact)"
        assert "encode_seconds" in payload["cells"][0]

    def test_process_engine_carries_phase_splits(self):
        observatory = Observatory(seed=0, sizes=self.SIZES)
        sweep = observatory.sweep(
            ["bert"], self.PROPS, execution="process", max_workers=2
        )
        assert len(sweep.cells) == 2
        assert all(cell.encode_seconds > 0 for cell in sweep.cells)

    def test_render_sweep_shows_backend_and_slowest(self):
        from repro.analysis.report import render_sweep

        observatory = Observatory(seed=0, sizes=self.SIZES)
        sweep = observatory.sweep(["bert"], self.PROPS)
        rendered = render_sweep(sweep)
        assert "encoder backend: local (exact)" in rendered
        assert "Slowest cells" in rendered
        assert "encode " in rendered

    def test_padded_sweep_reports_backend_and_padding(self):
        from repro.analysis.report import render_sweep

        observatory = Observatory(
            seed=0, sizes=self.SIZES, runtime=RuntimeConfig(exact=False)
        )
        sweep = observatory.sweep(["bert"], self.PROPS)
        assert sweep.backend.startswith("padded")
        rendered = render_sweep(sweep)
        assert "padded" in rendered

    def test_padded_sweep_close_to_exact(self):
        exact = Observatory(seed=0, sizes=self.SIZES).sweep(["bert"], self.PROPS)
        padded = Observatory(
            seed=0, sizes=self.SIZES, runtime=RuntimeConfig(exact=False)
        ).sweep(["bert"], self.PROPS)
        for cell_e, cell_p in zip(exact.cells, padded.cells):
            for key, value in cell_e.result.scalars.items():
                assert cell_p.result.scalars[key] == pytest.approx(value, abs=1e-9)


class TestRuntimeConfigBackends:
    def test_backend_resolution(self):
        assert RuntimeConfig().backend_name() == "local"
        assert RuntimeConfig(exact=False).backend_name() == "padded"
        assert RuntimeConfig(exact=False, backend="local").backend_name() == "local"
        assert RuntimeConfig().build_backend().name == "local"
        padded = RuntimeConfig(exact=False, padding_tier=5).build_backend()
        assert padded.name == "padded" and padded.tier_width == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(backend="padded")  # exact=True contradiction
        with pytest.raises(ValueError):
            RuntimeConfig(backend="nonsense")
        with pytest.raises(ValueError):
            RuntimeConfig(padding_tier=0)

    def test_custom_model_rejects_non_local_backend(self):
        class Plain:
            name = "plain-no-backend"
            dim = 4

            def supports(self, level):
                return False

            def supported_levels(self):
                return frozenset()

        register_model("plain-no-backend", Plain)
        try:
            obs = Observatory(runtime=RuntimeConfig(exact=False))
            with pytest.raises(ObservatoryError):
                obs.model("plain-no-backend")
            # Default (local) config keeps custom models working.
            assert Observatory().model("plain-no-backend").name == "plain-no-backend"
        finally:
            unregister_model("plain-no-backend")

    def test_observatory_shares_one_backend(self):
        obs = Observatory(runtime=RuntimeConfig(exact=False))
        assert obs.model("bert").backend is obs.model("tapas").backend
        assert obs.padding_stats() is not None
        assert Observatory().padding_stats() is None


class TestEncodeLoopLifecycle:
    """close()/submit() hardening (PR 5): no silent wedges, no dead enqueues."""

    def test_submit_after_close_fails_fast(self):
        loop = EncodeLoop()
        loop.close()
        assert loop.closed and not loop.is_alive()

        async def compute():
            return 1

        with pytest.raises(EncodeLoopClosedError):
            loop.submit(compute())

    def test_close_raises_when_loop_thread_is_wedged(self):
        import threading
        import time as time_mod

        loop = EncodeLoop()
        started = threading.Event()

        async def wedge():
            # Non-cooperative block on the loop thread — the shape of a
            # backend coroutine stuck on a dead socket without a deadline.
            started.set()
            time_mod.sleep(1.2)

        future = loop.submit(wedge())
        assert started.wait(timeout=5.0)
        with pytest.raises(RuntimeError, match="wedged"):
            loop.close(timeout=0.1)
        # The wedge is detected, the loop is poisoned for new work...
        with pytest.raises(EncodeLoopClosedError):
            loop.submit(wedge())
        # ...and the shared-loop factory would hand out a fresh loop.
        assert not loop.is_alive()
        future.result(timeout=5.0)  # let the blocked thread drain

    def test_shared_loop_replaced_after_close(self):
        first = encode_loop()
        try:
            first.close()
        except RuntimeError:
            pass
        second = encode_loop()
        assert second is not first
        assert second.is_alive()

    def test_submit_close_race_never_strands_a_future(self):
        # Submits racing close() must each reach a terminal outcome —
        # a result, EncodeLoopClosedError, or CancelledError — never a
        # forever-pending future (the silent-wedge class this PR fixes).
        import threading
        from concurrent.futures import CancelledError

        for _ in range(25):
            loop = EncodeLoop()
            outcomes = []

            async def compute():
                return 1

            def submitter():
                try:
                    outcomes.append(loop.submit(compute()).result(timeout=10))
                except (EncodeLoopClosedError, CancelledError) as error:
                    outcomes.append(type(error).__name__)

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            for thread in threads:
                thread.start()
            loop.close()
            for thread in threads:
                thread.join(timeout=30)
            assert all(not t.is_alive() for t in threads)
            assert len(outcomes) == 4
