"""Property-based tests for the bounded disk cache tier.

Hypothesis drives random insert/evict/read sequences against
:class:`repro.runtime.disk.DiskTier` under a virtual clock and checks,
after **every prefix** of operations:

1. the directory never exceeds ``max_bytes``;
2. an entry younger than ``max_age`` is never evicted while an
   older-than-``max_age`` entry remains, and size eviction is LRU;
3. the JSON index always matches the directory contents exactly.
"""

import json
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cache import EmbeddingCache
from repro.runtime.disk import INDEX_NAME, DiskTier

MAX_BYTES = 2000
MAX_AGE = 50.0

# float64 payload lengths; the largest exceeds the whole byte budget and
# must be rejected outright rather than evicting everything else.
SIZES = (4, 64, 200, 400)
KEYS = tuple(f"entry-{i}" for i in range(6))


class FakeClock:
    def __init__(self, start: float = 1_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


ops = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.sampled_from(SIZES)),
    st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(0)),
    st.tuples(st.just("tick"), st.just(""), st.floats(min_value=1.0, max_value=30.0)),
)


def disk_listing(directory):
    """{entry-name: file size} for every payload file in the directory."""
    return {
        name[: -len(".npy")]: os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
        if name.endswith(".npy") and not name.startswith(".tmp-")
    }


def read_index(directory):
    with open(os.path.join(directory, INDEX_NAME), "r", encoding="utf-8") as handle:
        return json.load(handle)["entries"]


def check_invariants(directory, snapshot, now, touched=None):
    """Assert the three eviction invariants after one operation.

    ``touched`` is the key the operation just wrote: a re-``put`` of a
    live key refreshes its recency (and creation time), so its snapshot
    stamps no longer apply.
    """
    listing = disk_listing(directory)
    assert sum(listing.values()) <= MAX_BYTES, "byte budget exceeded"

    if not os.path.exists(os.path.join(directory, INDEX_NAME)):
        assert not listing, "payloads on disk but no index"
        return {}
    entries = read_index(directory)
    assert set(entries) == set(listing), "index does not match directory"
    for name, entry in entries.items():
        assert int(entry["bytes"]) == listing[name], f"stale size for {name}"

    victims = set(snapshot) - set(entries)
    for victim in victims:
        victim_age = now - snapshot[victim]["created"]
        if victim_age <= MAX_AGE:  # young victim: size eviction
            for survivor in entries:
                if survivor == touched or survivor not in snapshot:
                    continue  # just (re)written: most recent by definition
                survivor_age = now - snapshot[survivor]["created"]
                assert survivor_age <= MAX_AGE, (
                    "young entry evicted while an expired one remained"
                )
                assert snapshot[survivor]["atime"] >= snapshot[victim]["atime"], (
                    "evicted a more recently used entry (LRU violated)"
                )
    return entries


@settings(max_examples=40, deadline=None)
@given(operations=st.lists(ops, min_size=1, max_size=25))
def test_random_sequences_hold_invariants(operations):
    with tempfile.TemporaryDirectory() as directory:
        clock = FakeClock()
        tier = DiskTier(
            directory, max_bytes=MAX_BYTES, max_age=MAX_AGE, clock=clock
        )
        snapshot = {}
        for kind, key, arg in operations:
            clock.now += 1.0  # distinct stamps per operation
            if kind == "tick":
                clock.now += arg
                continue
            touched = None
            if kind == "put":
                stored = tier.put(key, np.full(arg, 1.5))
                oversized = 128 + arg * 8 > MAX_BYTES
                assert stored != oversized, (
                    "oversized entries must be rejected, fitting ones kept"
                )
                touched = key if stored else None
            else:
                value = tier.get(key)
                if value is not None:
                    assert value.shape[0] in SIZES
                    assert float(value[0]) == 1.5
            snapshot = check_invariants(directory, snapshot, clock.now, touched)


@settings(max_examples=25, deadline=None)
@given(operations=st.lists(ops, min_size=1, max_size=20))
def test_unbounded_tier_index_always_matches_directory(operations):
    # Without budgets nothing is ever evicted, but the index/directory
    # agreement must still hold after any prefix of operations.
    with tempfile.TemporaryDirectory() as directory:
        clock = FakeClock()
        tier = DiskTier(directory, clock=clock)
        live = set()
        for kind, key, arg in operations:
            clock.now += 1.0
            if kind == "tick":
                clock.now += arg
            elif kind == "put":
                assert tier.put(key, np.full(arg, 2.5))
                live.add(key)
            else:
                value = tier.get(key)
                assert (value is not None) == (key in live)
            listing = disk_listing(directory)
            assert set(listing) == live
            if live:
                assert set(read_index(directory)) == live
        assert tier.evictions == 0


class TestExpiry:
    def test_expired_entry_is_a_miss_and_reclaimed(self):
        with tempfile.TemporaryDirectory() as directory:
            clock = FakeClock()
            tier = DiskTier(directory, max_age=10.0, clock=clock)
            tier.put("k", np.ones(8))
            clock.now += 5.0
            assert tier.get("k") is not None
            clock.now += 10.1  # creation age governs expiry, not access
            assert tier.get("k") is None
            assert disk_listing(directory) == {}
            assert tier.evictions == 1

    def test_expired_entries_reclaimed_before_young_ones(self):
        with tempfile.TemporaryDirectory() as directory:
            clock = FakeClock()
            tier = DiskTier(
                directory, max_bytes=1200, max_age=50.0, clock=clock
            )
            tier.put("old", np.ones(64))  # ~640 bytes
            clock.now += 60.0  # "old" expires
            tier.put("young", np.ones(64))
            tier.put("trigger", np.ones(4))  # forces reclaim over budget
            listing = disk_listing(directory)
            assert "old" not in listing
            assert {"young", "trigger"} <= set(listing)


class TestByteBudgetThroughEmbeddingCache:
    def test_disk_usage_stays_bounded_across_many_puts(self, tmp_path):
        cache = EmbeddingCache(
            max_entries=2, disk_dir=str(tmp_path), disk_max_bytes=MAX_BYTES
        )
        rng = np.random.default_rng(0)
        for i in range(30):
            cache.put(("m", "column", f"fp{i}"), rng.standard_normal(48))
        assert sum(disk_listing(str(tmp_path)).values()) <= MAX_BYTES
        assert cache.stats.disk_evictions > 0
        assert cache.stats.disk_evictions == cache.disk.evictions

    def test_oldest_entries_evicted_first(self, tmp_path):
        clock = FakeClock()
        cache = EmbeddingCache(
            max_entries=1,
            disk_dir=str(tmp_path),
            disk_max_bytes=1500,
            clock=clock,
        )
        for i in range(4):
            clock.now += 1.0
            cache.put(("m", "column", f"fp{i}"), np.full(64, float(i)))
        # ~640 bytes each: only the two most recent fit the budget.
        assert cache.get(("m", "column", "fp0")) is None
        assert cache.get(("m", "column", "fp3")) is not None

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            DiskTier("/tmp/unused", max_bytes=0)
        with pytest.raises(ValueError):
            DiskTier("/tmp/unused", max_age=0)
        from repro.runtime.planner import RuntimeConfig

        with pytest.raises(ValueError):
            RuntimeConfig(cache_max_bytes=0)
        with pytest.raises(ValueError):
            RuntimeConfig(cache_max_age=-1.0)
