"""Tests for KNN retrieval and overlap (Measure 6)."""

import numpy as np
import pytest

from repro.core.measures.knn import average_overlap_at_k, knn_indices, knn_overlap
from repro.errors import MeasureError
from repro.seeding import rng_for


def embeddings_on_line():
    # Points on a line: neighbours of index i are i-1 and i+1 by euclidean.
    return np.array([[float(i), 0.0] for i in range(1, 7)])


def test_knn_euclidean_neighbours():
    out = knn_indices(embeddings_on_line(), 2, 2, metric="euclidean")
    assert set(out) == {1, 3}


def test_knn_cosine_excludes_query():
    rng = rng_for("knn-test", 1)
    embs = rng.standard_normal((10, 4))
    out = knn_indices(embs, 3, 5)
    assert 3 not in out
    assert len(out) == 5


def test_knn_deterministic_tie_break():
    embs = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    out = knn_indices(embs, 0, 2)
    assert out == [1, 2]  # ties broken by index


def test_knn_validation():
    embs = np.eye(3)
    with pytest.raises(MeasureError):
        knn_indices(embs, 5, 1)
    with pytest.raises(MeasureError):
        knn_indices(embs, 0, 3)  # k > n-1
    with pytest.raises(MeasureError):
        knn_indices(embs, 0, 1, metric="manhattan")


def test_knn_overlap():
    assert knn_overlap([1, 2, 3], [3, 2, 1]) == 1.0
    assert knn_overlap([1, 2], [3, 4]) == 0.0
    assert knn_overlap([1, 2, 3, 4], [3, 4, 5, 6]) == 0.5


def test_knn_overlap_validation():
    with pytest.raises(MeasureError):
        knn_overlap([1, 1], [2, 3])
    with pytest.raises(MeasureError):
        knn_overlap([1, 2], [1, 2, 3])
    with pytest.raises(MeasureError):
        knn_overlap([], [])


def test_average_overlap_identical_spaces_is_one():
    rng = rng_for("knn-test", 2)
    space = rng.standard_normal((20, 8))
    assert average_overlap_at_k(space, space.copy(), [0, 3, 7], 5) == 1.0


def test_average_overlap_rotation_invariance():
    """Cosine KNN structure survives orthogonal transforms."""
    rng = rng_for("knn-test", 3)
    space = rng.standard_normal((30, 8))
    q, _ = np.linalg.qr(rng.standard_normal((8, 8)))
    assert average_overlap_at_k(space, space @ q.T @ q, list(range(10)), 5) == 1.0


def test_average_overlap_random_spaces_low():
    rng = rng_for("knn-test", 4)
    a = rng.standard_normal((50, 8))
    b = rng.standard_normal((50, 8))
    value = average_overlap_at_k(a, b, list(range(20)), 5)
    assert value < 0.5


def test_average_overlap_validation():
    with pytest.raises(MeasureError):
        average_overlap_at_k(np.eye(3), np.eye(4), [0], 1)
    with pytest.raises(MeasureError):
        average_overlap_at_k(np.eye(3), np.eye(3), [], 1)
