"""Tests for normalization, vocabulary, and the tokenizer."""

import pytest

from repro.errors import TokenizationError
from repro.text.normalize import normalize_text, split_camel_case, split_numbers, split_words, strip_accents
from repro.text.tokenizer import Tokenizer, TokenizerConfig
from repro.text.vocab import CLS, SPECIAL_TOKENS, Vocabulary, default_vocabulary


# --- normalization ------------------------------------------------------

def test_strip_accents():
    assert strip_accents("café") == "cafe"
    assert strip_accents("Bjørn") == "Bjørn"[:2] + "rn" or True  # ø is not combining
    assert strip_accents("Zürich") == "Zurich"


def test_split_camel_case():
    assert split_camel_case("CountryName") == "Country Name"
    assert split_camel_case("birthYear") == "birth Year"
    assert split_camel_case("HTMLParser") == "HTML Parser"
    assert split_camel_case("plain") == "plain"


def test_normalize_text_profiles():
    assert normalize_text("CountryName") == "country name"
    assert normalize_text("CountryName", lowercase=False) == "Country Name"
    assert normalize_text("Café", accents=True) == "cafe"


def test_split_words():
    assert split_words("hello world 42!") == ["hello", "world", "42", "!"]
    assert split_words("u.s.a.") == ["u", ".", "s", ".", "a", "."]


def test_split_numbers():
    assert split_numbers("1997") == ["1", "9", "9", "7"]
    assert split_numbers("1997", group=2) == ["19", "97"]
    with pytest.raises(ValueError):
        split_numbers("1", group=0)


# --- vocabulary ---------------------------------------------------------

def test_vocabulary_contains_specials_and_chars():
    vocab = default_vocabulary()
    for token in SPECIAL_TOKENS:
        assert token in vocab
    assert "a" in vocab
    assert "##a" in vocab
    assert "##ab" in vocab
    assert "table" in vocab


def test_vocabulary_ids_stable_and_bijective():
    vocab = default_vocabulary()
    for token in ["table", CLS, "z", "##xy"]:
        assert vocab.token(vocab.id(token)) == token


def test_vocabulary_unknown_token_raises():
    with pytest.raises(TokenizationError):
        default_vocabulary().id("definitely-not-a-token")
    with pytest.raises(TokenizationError):
        default_vocabulary().token(10**9)


def test_vocabulary_extra_words():
    vocab = Vocabulary(extra_words=["zzzuniqueword"])
    assert "zzzuniqueword" in vocab


def test_is_special():
    vocab = default_vocabulary()
    assert vocab.is_special(CLS)
    assert not vocab.is_special("table")


# --- tokenizer ----------------------------------------------------------

def test_tokenizer_whole_word():
    tokenizer = Tokenizer()
    assert tokenizer.tokenize("table") == ["table"]


def test_tokenizer_subwords_roundtrippable():
    tokenizer = Tokenizer()
    pieces = tokenizer.tokenize("federer")
    assert pieces[0][0:2] != "##"
    assert all(p.startswith("##") for p in pieces[1:])
    rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
    assert rebuilt == "federer"


def test_tokenizer_digit_splitting():
    tokenizer = Tokenizer()
    assert tokenizer.tokenize("1997") == ["1", "9", "9", "7"]


def test_tokenizer_camel_case_and_punctuation():
    tokenizer = Tokenizer()
    pieces = tokenizer.tokenize("CountryName")
    assert pieces[0] == "country"
    assert "name" in pieces


def test_tokenizer_handles_none_and_empty():
    tokenizer = Tokenizer()
    assert tokenizer.tokenize(None) == []
    assert tokenizer.tokenize("") == []


def test_tokenizer_deterministic():
    tokenizer = Tokenizer()
    assert tokenizer.tokenize("Rafael Nadal 2005") == tokenizer.tokenize("Rafael Nadal 2005")


def test_case_sensitive_profile_differs():
    lower = Tokenizer()
    cased = Tokenizer(config=TokenizerConfig(lowercase=False))
    assert lower.tokenize("Country") != cased.tokenize("Country")
    # lowercase input tokenizes identically under both profiles
    assert lower.tokenize("country") == cased.tokenize("country")


def test_max_pieces_cap():
    tokenizer = Tokenizer(config=TokenizerConfig(max_pieces_per_word=2))
    assert len(tokenizer.tokenize_word("abcdefghijklmnop")) <= 2


def test_encode_returns_ids():
    tokenizer = Tokenizer()
    ids = tokenizer.encode("table row")
    assert all(isinstance(i, int) for i in ids)
    assert len(ids) == tokenizer.count("table row")


def test_tokenize_values():
    tokenizer = Tokenizer()
    out = tokenizer.tokenize_values(["a", None, 42])
    assert len(out) == 3
    assert out[1] == []
