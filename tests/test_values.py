"""Tests for typed values and data-type inference."""

import pytest

from repro.relational.values import DataType, infer_column_type, infer_type, non_empty, parse_value


@pytest.mark.parametrize(
    "value, expected",
    [
        (None, DataType.EMPTY),
        ("", DataType.EMPTY),
        ("   ", DataType.EMPTY),
        (True, DataType.BOOLEAN),
        ("yes", DataType.BOOLEAN),
        ("FALSE", DataType.BOOLEAN),
        (42, DataType.INTEGER),
        ("42", DataType.INTEGER),
        ("1,234,567", DataType.INTEGER),
        (-3.5, DataType.FLOAT),
        ("3.14", DataType.FLOAT),
        ("1e-3", DataType.FLOAT),
        ("2021-03-05", DataType.DATE),
        ("3/14/2021", DataType.DATE),
        ("January 5, 1999", DataType.DATE),
        ("$1,299.99", DataType.MONEY),
        ("12.5 kg", DataType.QUANTITY),
        ("85%", DataType.QUANTITY),
        ("978-3-16-148410-0", DataType.ISBN),
        ("90210", DataType.INTEGER),  # bare 5-digit numbers stay numeric
        ("90210-1234", DataType.POSTAL_CODE),
        ("K1A 0B1", DataType.POSTAL_CODE),
        ("hello world", DataType.TEXT),
        ("Roger Federer", DataType.TEXT),
    ],
)
def test_infer_type(value, expected):
    assert infer_type(value) == expected


def test_bare_year_is_datelike():
    # A bare year matches the date family (the weakest date pattern).
    assert infer_type("1997") in (DataType.DATE, DataType.INTEGER)


def test_infer_column_type_majority():
    assert infer_column_type(["1", "2", "3", "oops"]) == DataType.INTEGER


def test_infer_column_type_mixed_numeric_pools_to_float():
    assert infer_column_type(["1", "2.5", "3", "4.1"]) == DataType.FLOAT


def test_infer_column_type_empty():
    assert infer_column_type([None, "", "  "]) == DataType.EMPTY


def test_infer_column_type_no_majority_falls_back_to_text():
    values = ["1", "2021-01-01", "hello", "$5.00", "true"]
    assert infer_column_type(values) == DataType.TEXT


def test_parse_value_round_trips():
    assert parse_value("42") == 42
    assert parse_value("3.5") == 3.5
    assert parse_value("1,000") == 1000
    assert parse_value("yes") is True
    assert parse_value("no") is False
    assert parse_value("") is None
    assert parse_value("plain text") == "plain text"


def test_parse_value_with_explicit_type_degrades_gracefully():
    assert parse_value("not-a-number", DataType.INTEGER) == "not-a-number"


def test_non_empty_filters():
    assert non_empty([None, "", " ", "a", 0, 1.5]) == ["a", 0, 1.5]


def test_textual_and_numeric_flags():
    assert DataType.TEXT.is_textual
    assert DataType.BOOLEAN.is_textual
    assert not DataType.MONEY.is_textual
    assert DataType.MONEY.is_numeric
    assert DataType.QUANTITY.is_numeric
    assert not DataType.DATE.is_numeric
