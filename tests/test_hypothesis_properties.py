"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measures.correlation import rankdata, spearman
from repro.core.measures.mcv import albert_zhang_mcv
from repro.core.measures.similarity import cosine_similarity
from repro.core.measures.stats import summarize
from repro.relational.fd import FunctionalDependency, fd_groups, satisfies
from repro.relational.fd_discovery import discover_unary_fds
from repro.relational.overlap import containment, jaccard, multiset_jaccard
from repro.relational.permutations import sample_permutations
from repro.relational.sampling import chunk_values
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer

# Reusable strategies -----------------------------------------------------

values_strategy = st.lists(
    st.sampled_from(["a", "b", "c", "dd", "ee", "f g", "42", "x"]),
    min_size=1,
    max_size=30,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(min_value=1, max_value=8))
    n_cols = draw(st.integers(min_value=1, max_value=4))
    pool = ["x", "y", "z", "w", "1", "2"]
    columns = []
    for c in range(n_cols):
        values = [draw(st.sampled_from(pool)) for _ in range(n_rows)]
        columns.append((f"col{c}", values))
    return Table.from_columns(columns, table_id="hyp")


# Overlap measures ---------------------------------------------------------

@given(values_strategy, values_strategy)
def test_overlap_bounds(q, c):
    assert 0.0 <= containment(q, c) <= 1.0
    assert 0.0 <= jaccard(q, c) <= 1.0
    assert 0.0 <= multiset_jaccard(q, c) <= 0.5


@given(values_strategy, values_strategy)
def test_containment_at_least_jaccard(q, c):
    # |Q ∩ C| / |Q| >= |Q ∩ C| / |Q ∪ C| since Q ⊆ Q ∪ C.
    assert containment(q, c) >= jaccard(q, c) - 1e-12


@given(values_strategy)
def test_self_overlap_maximal(values):
    assert containment(values, values) == 1.0
    assert jaccard(values, values) == 1.0
    assert multiset_jaccard(values, values) == pytest.approx(0.5)


@given(values_strategy, values_strategy)
def test_jaccard_symmetric(q, c):
    assert jaccard(q, c) == pytest.approx(jaccard(c, q))
    assert multiset_jaccard(q, c) == pytest.approx(multiset_jaccard(c, q))


# Permutations ---------------------------------------------------------------

@given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=40))
def test_sampled_permutations_distinct_and_valid(n_items, cap):
    perms = sample_permutations(n_items, cap, seed_parts=(n_items, cap))
    assert len(perms) == len(set(perms))
    assert all(sorted(p) == list(range(n_items)) for p in perms)
    assert perms[0] == tuple(range(n_items))


# Tables ---------------------------------------------------------------------

@given(small_tables(), st.data())
def test_row_shuffle_preserves_column_multisets(table, data):
    perm = data.draw(st.permutations(range(table.num_rows)))
    shuffled = table.reorder_rows(list(perm))
    for c in range(table.num_columns):
        assert table.column_multiset(c) == shuffled.column_multiset(c)


@given(small_tables(), st.data())
def test_column_shuffle_preserves_row_multisets(table, data):
    perm = data.draw(st.permutations(range(table.num_columns)))
    shuffled = table.reorder_columns(list(perm))
    for r in range(table.num_rows):
        assert sorted(map(str, table.rows[r])) == sorted(map(str, shuffled.rows[r]))


@given(small_tables(), st.data())
def test_double_shuffle_roundtrip(table, data):
    perm = list(data.draw(st.permutations(range(table.num_rows))))
    inverse = [0] * len(perm)
    for new, old in enumerate(perm):
        inverse[old] = new
    # take_rows with the inverse ordering restores the original rows
    assert table.reorder_rows(perm).reorder_rows(inverse).rows == table.rows


# FDs -------------------------------------------------------------------------

@given(small_tables())
@settings(max_examples=30, deadline=None)
def test_discovered_unary_fds_always_hold(table):
    for fd in discover_unary_fds(table, sample_pairs=16):
        assert satisfies(table, fd)


@given(small_tables(), st.data())
def test_fd_groups_partition_rows(table, data):
    assume(table.num_columns >= 2)
    lhs = data.draw(st.integers(min_value=0, max_value=table.num_columns - 1))
    rhs = data.draw(
        st.integers(min_value=0, max_value=table.num_columns - 1).filter(lambda x: x != lhs)
    )
    groups = fd_groups(table, FunctionalDependency.unary(lhs, rhs))
    rows = sorted(r for group in groups.values() for r in group)
    assert rows == list(range(table.num_rows))


@given(small_tables(), st.data())
def test_fd_satisfaction_invariant_under_row_shuffle(table, data):
    assume(table.num_columns >= 2)
    perm = list(data.draw(st.permutations(range(table.num_rows))))
    fd = FunctionalDependency.unary(0, 1)
    assert satisfies(table, fd) == satisfies(table.reorder_rows(perm), fd)


# Chunking ---------------------------------------------------------------------

@given(values_strategy, st.integers(min_value=1, max_value=10))
def test_chunks_reassemble(values, size):
    chunks = chunk_values(values, size)
    assert [v for chunk in chunks for v in chunk] == list(values)
    assert all(1 <= len(c) <= size for c in chunks)


# Measures ---------------------------------------------------------------------

@given(
    st.lists(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=3,
            max_size=3,
        ),
        min_size=2,
        max_size=20,
    )
)
def test_mcv_scale_invariance_hypothesis(rows):
    # Shift one coordinate so the mean vector is never (numerically) zero.
    samples = np.asarray(rows)
    samples[:, 0] += 500.0
    value = albert_zhang_mcv(samples)
    scaled = albert_zhang_mcv(samples * 3.7)
    assert value >= 0.0
    assert scaled == pytest.approx(value, rel=1e-6, abs=1e-9)


@given(
    st.lists(finite_floats, min_size=4, max_size=4),
    st.lists(finite_floats, min_size=4, max_size=4),
)
def test_cosine_bounds_hypothesis(a, b):
    a, b = np.array(a), np.array(b)
    assume(np.linalg.norm(a) > 1e-6 and np.linalg.norm(b) > 1e-6)
    value = cosine_similarity(a, b)
    assert -1.0 <= value <= 1.0
    assert cosine_similarity(a, a) == pytest.approx(1.0)


@given(st.lists(finite_floats, min_size=3, max_size=50))
def test_rankdata_is_valid_ranking(values):
    ranks = rankdata(values)
    assert len(ranks) == len(values)
    assert ranks.sum() == pytest.approx(len(values) * (len(values) + 1) / 2)


@given(st.lists(st.tuples(finite_floats, finite_floats), min_size=3, max_size=50))
def test_spearman_symmetry_and_bounds(pairs):
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    assume(len(set(x)) > 1 and len(set(y)) > 1)
    forward = spearman(x, y)
    backward = spearman(y, x)
    assert -1.0 <= forward.rho <= 1.0
    assert forward.rho == pytest.approx(backward.rho, abs=1e-9)


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_summarize_ordering(values):
    stats = summarize(values)
    assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
    assert stats.n == len(values)


# Tokenizer -----------------------------------------------------------------

@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40))
def test_tokenizer_total_and_deterministic(text):
    tokenizer = Tokenizer()
    pieces = tokenizer.tokenize(text)
    assert pieces == tokenizer.tokenize(text)
    for piece in pieces:
        assert piece  # no empty pieces


@given(
    st.lists(
        st.text(alphabet="abcdefghij", min_size=1, max_size=12),
        min_size=1,
        max_size=5,
    )
)
def test_tokenizer_alpha_roundtrip(words):
    """For plain lowercase alpha words short enough to avoid the per-word
    piece cap, concatenating pieces (minus the ## markers) recovers the
    normalized text."""
    tokenizer = Tokenizer()
    text = " ".join(words)
    pieces = tokenizer.tokenize(text)
    rebuilt = "".join(p[2:] if p.startswith("##") else p for p in pieces)
    assert rebuilt == text.replace(" ", "")
