"""Tests for HyFD-style functional-dependency discovery."""

import pytest

from repro.relational.fd import FunctionalDependency, satisfies
from repro.relational.fd_discovery import (
    discover_fds,
    discover_unary_fds,
    non_fd_column_pairs,
    partition_error,
    refines,
    stripped_partition,
)
from repro.relational.table import Table


def test_stripped_partition_strips_singletons(fd_table):
    partition = stripped_partition(fd_table, [1])  # country
    assert sorted(len(c) for c in partition) == [2, 3]  # USA x2, NL x3; Canada stripped


def test_stripped_partition_key_column(fd_table):
    assert stripped_partition(fd_table, [0]) == []  # city is unique


def test_partition_error(fd_table):
    partition = stripped_partition(fd_table, [1])
    assert partition_error(partition, fd_table.num_rows) == pytest.approx(3 / 6)
    assert partition_error([], 0) == 0.0


def test_refines_matches_satisfies(fd_table):
    for lhs in range(fd_table.num_columns):
        for rhs in range(fd_table.num_columns):
            if lhs == rhs:
                continue
            assert refines(fd_table, [lhs], [rhs]) == satisfies(
                fd_table, FunctionalDependency.unary(lhs, rhs)
            )


def test_discover_unary_fds_finds_planted(fd_table):
    found = discover_unary_fds(fd_table)
    pairs = {(fd.determinant[0], fd.dependent[0]) for fd in found}
    assert (1, 2) in pairs  # country -> continent
    # Every discovered FD actually holds.
    for fd in found:
        assert satisfies(fd_table, fd)


def test_discover_unary_excludes_keys(fd_table):
    found = discover_unary_fds(fd_table, exclude_trivial_keys=True)
    assert all(fd.determinant[0] != 0 for fd in found)  # city is a key
    with_keys = discover_unary_fds(fd_table, exclude_trivial_keys=False)
    assert any(fd.determinant[0] == 0 for fd in with_keys)


def test_discover_unary_no_false_positives():
    # department does not determine building here, but building -> department
    # does hold (each building maps to one department).
    table = Table.from_columns(
        [
            ("department", ["Sales", "Sales", "HR", "HR"]),
            ("building", ["North", "South", "East", "East"]),
        ]
    )
    found = {(fd.determinant[0], fd.dependent[0]) for fd in discover_unary_fds(table)}
    assert (0, 1) not in found
    assert (1, 0) in found


def test_discover_fds_minimality(fd_table):
    found = discover_fds(fd_table, max_determinant_size=2)
    # country -> continent is found at size 1, so (city,country) -> continent
    # must not be reported (not minimal).
    assert any(fd.determinant == (1,) and fd.dependent == (2,) for fd in found)
    assert not any(
        set(fd.determinant) == {0, 1} and fd.dependent == (2,) for fd in found
    )


def test_discover_fds_all_hold(fd_table):
    for fd in discover_fds(fd_table, max_determinant_size=2, exclude_trivial_keys=False):
        assert satisfies(fd_table, fd)


def test_discover_fds_bad_size(fd_table):
    with pytest.raises(ValueError):
        discover_fds(fd_table, max_determinant_size=0)


def test_non_fd_column_pairs_all_violate(fd_table):
    pairs = non_fd_column_pairs(fd_table, 10)
    assert pairs
    for lhs, rhs in pairs:
        assert not satisfies(fd_table, FunctionalDependency.unary(lhs, rhs))


def test_non_fd_column_pairs_deterministic(fd_table):
    a = non_fd_column_pairs(fd_table, 5, seed_parts=("x",))
    b = non_fd_column_pairs(fd_table, 5, seed_parts=("x",))
    assert a == b
