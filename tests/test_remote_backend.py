"""Remote encoder backend against the loopback service double.

Locks in the transport's three contracts:

1. **Numerics across the wire** — for every model family, loopback-remote
   results are *bit-identical* to the in-process local backend in exact
   mode and within :data:`PADDED_TOLERANCE` in padded mode.  The service
   rebuilds its encoder, interner, and weights from the shipped config,
   so this is a genuine two-process determinism claim.
2. **Fault tolerance** — injected timeouts, 5xx, and torn payloads are
   retried (with backoff accounted in :class:`TransportStats`) and still
   produce bit-identical results; out-of-order responses are reassembled
   by digest echo; *tampered* payloads are rejected, never retried into
   acceptance.
3. **Wiring** — registry/RuntimeConfig/executor integration: the remote
   backend registers as ``"remote"``, demands a URL at configuration
   time, isolates its embedding-cache namespace, and feeds the streaming
   executor a latency-aware chunk size.

Plus a Hypothesis round trip of the JSON wire encoding (unicode pieces,
empty sequences, single-token arrays).
"""

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import DatasetSizes, Observatory
from repro.errors import ModelError, RemoteEncodeError
from repro.models.backends import (
    PADDED_TOLERANCE,
    LocalBackend,
    RemoteBackend,
    TransportStats,
    available_backends,
    max_relative_error,
)
from repro.models.config import Serialization
from repro.models.registry import load_model
from repro.models.token_array import (
    Token,
    TokenArray,
    TokenRole,
    wire_from_jsonable,
    wire_to_jsonable,
)
from repro.relational.table import Table
from repro.runtime.planner import EmbeddingExecutor, RuntimeConfig
from repro.testing import LoopbackEncoderService
from tests.conftest import cached_model

WORDS = ("alpha", "bravo", "delta", "echo", "golf", "hotel", "india", "kilo")


@pytest.fixture(scope="module")
def service():
    with LoopbackEncoderService() as svc:
        yield svc


def fast_remote(svc, **kwargs) -> RemoteBackend:
    """A remote backend tuned for tests: tiny backoff, seeded jitter."""
    kwargs.setdefault("timeout", 10.0)
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("rng", random.Random(7))
    return RemoteBackend(svc.url, **kwargs)


def small_tables(n=4):
    tables = []
    for i in range(n):
        columns = [
            (
                WORDS[(i + c) % len(WORDS)],
                [
                    " ".join(WORDS[(i + c + r + w) % len(WORDS)] for w in range(1 + r % 2))
                    for r in range(2 + i % 3)
                ],
            )
            for c in range(1 + i % 2)
        ]
        tables.append(Table.from_columns(columns, table_id=f"remote-{i}"))
    return tables


def token_lists_for(model, tables):
    """Every family's own serialization — ROW_TEMPLATE flattens per-row."""
    if model.config.serialization == Serialization.ROW_TEMPLATE:
        return [ta for t in tables for ta in model._serializer.serialize(t)]
    return [model._serializer.serialize(model._effective_table(t)) for t in tables]


class TestLoopbackNumerics:
    def test_exact_bit_identical_for_every_model_family(self, service, all_model_names):
        tables = small_tables()
        for name in all_model_names:
            model = cached_model(name)
            if not hasattr(model, "encoder"):
                continue
            token_lists = token_lists_for(model, tables)
            local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
            remote = fast_remote(service).encode_batch(model.encoder, token_lists, 4)
            for local_arr, remote_arr in zip(local, remote):
                assert np.array_equal(local_arr, remote_arr), name

    def test_padded_within_tolerance_for_every_model_family(
        self, service, all_model_names
    ):
        tables = small_tables(6)
        for name in all_model_names:
            model = cached_model(name)
            if not hasattr(model, "encoder"):
                continue
            token_lists = token_lists_for(model, tables)
            singles = [model.encoder.encode(toks) for toks in token_lists]
            backend = fast_remote(service, exact=False, padding_tier=4)
            assert not backend.exact
            remote = backend.encode_batch(model.encoder, token_lists, 8)
            for single, rem in zip(singles, remote):
                assert rem.shape == single.shape
                assert max_relative_error(rem, single) <= PADDED_TOLERANCE, name

    def test_empty_sequences_answered_locally(self, service):
        model = cached_model("bert")
        token_lists = [TokenArray.empty(), model._serializer.serialize(small_tables(1)[0])]
        states = fast_remote(service).encode_batch(model.encoder, token_lists, 4)
        assert states[0].shape == (0, model.dim)
        assert states[1].shape[0] == len(token_lists[1])

    def test_async_entry_point_matches_sync(self, service):
        import asyncio

        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables())
        backend = fast_remote(service)
        sync = backend.encode_batch(model.encoder, token_lists, 4)
        afresh = asyncio.run(backend.aencode_batch(model.encoder, token_lists, 4))
        for a, b in zip(sync, afresh):
            assert np.array_equal(a, b)


class TestFaultInjection:
    @pytest.fixture()
    def bert_lists(self):
        model = cached_model("bert")
        return model, token_lists_for(model, small_tables())

    def baseline(self, model, token_lists):
        return LocalBackend().encode_batch(model.encoder, token_lists, 4)

    def test_timeout_mid_batch_retries_to_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service, timeout=0.3)
        service.inject("timeout", seconds=1.0)
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        stats = backend.stats_snapshot()
        assert stats.timeouts >= 1 and stats.retries >= 1 and stats.chunks == 1

    def test_5xx_then_success_exercises_backoff(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("http_500")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        stats = backend.stats_snapshot()
        assert stats.http_errors >= 1 and stats.retries >= 1

    def test_torn_payload_retries_to_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("torn")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        assert backend.stats_snapshot().retries >= 1

    def test_out_of_order_response_reassembled_bit_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("shuffle")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        # Reassembly is by digest echo, not a retry.
        assert backend.stats_snapshot().retries == 0

    def test_digest_tampered_response_rejected(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("tamper")
        with pytest.raises(RemoteEncodeError, match="digest"):
            backend.encode_batch(model.encoder, token_lists, 4)

    def test_retries_exhausted_raises(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service, retries=0)
        service.inject("http_500")
        with pytest.raises(RemoteEncodeError, match="after 1 attempt"):
            backend.encode_batch(model.encoder, token_lists, 4)

    def test_unreachable_service_raises_after_retries(self):
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables(1))
        backend = RemoteBackend(
            "http://127.0.0.1:9", timeout=0.5, retries=1, backoff_base=0.001
        )
        with pytest.raises(RemoteEncodeError):
            backend.encode_batch(model.encoder, token_lists, 4)
        assert backend.stats_snapshot().requests == 2


unicode_pieces = st.text(max_size=8)  # arbitrary unicode, empty included

token_strategy = st.builds(
    Token,
    piece=unicode_pieces,
    role=st.sampled_from(list(TokenRole)),
    row=st.integers(min_value=-1, max_value=40),
    col=st.integers(min_value=-1, max_value=40),
)


class TestJsonWireRoundTrip:
    @given(tokens=st.lists(token_strategy, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_json(self, tokens):
        ta = TokenArray.from_tokens(tokens)
        payload = json.loads(json.dumps(wire_to_jsonable(ta.to_wire())))
        rebuilt = TokenArray.from_wire(wire_from_jsonable(payload))
        assert rebuilt == ta

    @pytest.mark.parametrize(
        "tokens",
        [
            [],  # empty sequence
            [Token("τимур 🎉", TokenRole.VALUE, row=0, col=0)],  # single, unicode
            [Token("", TokenRole.SPECIAL)],  # empty piece string
        ],
    )
    def test_edge_sequences(self, tokens):
        ta = TokenArray.from_tokens(tokens)
        payload = json.loads(json.dumps(wire_to_jsonable(ta.to_wire())))
        assert TokenArray.from_wire(wire_from_jsonable(payload)) == ta

    def test_torn_jsonable_rejected(self):
        ta = TokenArray.from_tokens([Token("a", TokenRole.VALUE, row=0, col=0)])
        payload = wire_to_jsonable(ta.to_wire())
        torn = {**payload, "rows": payload["rows"][:2]}  # not a whole element
        with pytest.raises(ValueError, match="torn|base64"):
            wire_from_jsonable(torn)

    def test_missing_key_rejected(self):
        ta = TokenArray.from_tokens([Token("a", TokenRole.VALUE)])
        payload = wire_to_jsonable(ta.to_wire())
        del payload["digest"]
        with pytest.raises(ValueError, match="missing"):
            wire_from_jsonable(payload)


SIZES = DatasetSizes(
    wikitables_tables=3, sotab_tables=4, n_permutations=4, min_rows=4, max_rows=6
)
SWEEP_PROPS = ["row_order_insignificance", "sample_fidelity"]


class TestSweepThroughRemote:
    def remote_runtime(self, service, **kwargs):
        return RuntimeConfig(
            backend="remote",
            remote_url=service.url,
            remote_timeout=kwargs.pop("remote_timeout", 30.0),
            remote_retries=4,
            **kwargs,
        )

    def test_remote_sweep_bit_identical_to_local(self, service):
        local = Observatory(seed=0, sizes=SIZES).sweep(["bert"], SWEEP_PROPS)
        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], SWEEP_PROPS)
        assert "remote" in remote.backend
        for cell_l, cell_r in zip(local.cells, remote.cells):
            assert cell_l.result.to_dict() == cell_r.result.to_dict()
        assert remote.transport is not None and remote.transport.chunks > 0
        assert remote.transport.sequences > 0

    def test_remote_sweep_identical_under_faults(self, service):
        local = Observatory(seed=0, sizes=SIZES).sweep(["bert"], SWEEP_PROPS)
        service.inject("http_500")
        service.inject("torn")
        service.inject("shuffle")
        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], SWEEP_PROPS)
        for cell_l, cell_r in zip(local.cells, remote.cells):
            assert cell_l.result.to_dict() == cell_r.result.to_dict()
        assert remote.transport.retries >= 2  # 500 + torn each cost one

    def test_transport_surfaces_in_rendered_report(self, service):
        from repro.analysis.report import render_sweep

        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], ["row_order_insignificance"])
        text = render_sweep(remote)
        assert "Remote transport:" in text
        assert remote.to_dict()["transport"]["chunks"] > 0


class TestConfigWiring:
    def test_registered_backend(self):
        assert "remote" in available_backends()

    def test_runtime_config_requires_url(self, monkeypatch):
        monkeypatch.delenv("REPRO_REMOTE_URL", raising=False)
        with pytest.raises(ValueError, match="URL"):
            RuntimeConfig(backend="remote")

    def test_env_fallback(self, monkeypatch, service):
        monkeypatch.setenv("REPRO_REMOTE_URL", service.url)
        backend = RuntimeConfig(backend="remote").build_backend()
        assert isinstance(backend, RemoteBackend)
        assert backend.url == service.url

    def test_padded_mode_derives_from_exact(self, service):
        cfg = RuntimeConfig(backend="remote", remote_url=service.url, exact=False)
        backend = cfg.build_backend()
        assert not backend.exact
        assert backend.tolerance == PADDED_TOLERANCE

    def test_transport_knob_validation(self, service):
        with pytest.raises(ValueError):
            RuntimeConfig(remote_timeout=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(remote_retries=-1)

    def test_malformed_model_payload_raises_model_error(self):
        from repro.models.config import ModelConfig

        with pytest.raises(ModelError, match="malformed"):
            ModelConfig.from_jsonable({"name": "x", "dim": "64"})  # wrong type
        with pytest.raises(ModelError, match="malformed"):
            ModelConfig.from_jsonable({})  # missing required field
        with pytest.raises(ModelError, match="unknown"):
            ModelConfig.from_jsonable({"name": "x", "nope": 1})

    def test_service_answers_400_on_junk_model_not_torn_socket(self, service):
        # A malformed model payload is a client bug: the service must send
        # a real HTTP 400 (which the client raises immediately), not crash
        # the handler into a torn read that burns retries.
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables(1))

        class BadConfig:
            dim = model.config.dim

            @staticmethod
            def to_jsonable():
                return {"name": "x", "dim": "sixty-four"}

        class BadEncoder:
            config = BadConfig()

        backend = fast_remote(service)
        with pytest.raises(RemoteEncodeError, match="HTTP 400"):
            backend.encode_batch(BadEncoder(), token_lists, 4)
        assert backend.stats_snapshot().retries == 0

    def test_bad_urls_rejected(self):
        with pytest.raises(ModelError):
            RemoteBackend("https://secure.example")  # only http is spoken
        with pytest.raises(ModelError):
            RemoteBackend("not a url")

    def test_cache_namespace_isolated(self, service):
        model = load_model("bert")
        model.set_backend(fast_remote(service))
        assert EmbeddingExecutor(model)._cache_space == "bert|remote"
        model.set_backend(fast_remote(service, exact=False))
        assert EmbeddingExecutor(model)._cache_space == "bert|remote+padded"
        model.set_backend(LocalBackend())
        assert EmbeddingExecutor(model)._cache_space == "bert"


class TestChunkSizer:
    def test_default_until_first_round_trip(self, service):
        backend = fast_remote(service)
        assert backend.suggest_pipeline_chunk(8) == 8

    def test_suggestion_bounded_after_measurements(self, service):
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables())
        backend = fast_remote(service)
        backend.encode_batch(model.encoder, token_lists, 4)
        suggestion = backend.suggest_pipeline_chunk(8)
        assert 1 <= suggestion <= 256

    def test_slow_link_amortizes_latency(self, service):
        backend = fast_remote(service)
        # Synthetic measurements: 0.5s round trips carrying 4 sequences
        # — the sizer must stretch chunks to amortize the latency floor.
        for _ in range(3):
            backend._record_success(0.5, 4, 1000, 1000)
        assert backend.suggest_pipeline_chunk(8) > 8


class TestTransportStats:
    def test_merged_and_since(self):
        a = TransportStats(requests=3, chunks=2, retries=1, sequences=10,
                           round_trip_seconds=1.0, bytes_sent=100, bytes_received=200)
        b = TransportStats(requests=1, chunks=1, sequences=5,
                           round_trip_seconds=0.5, bytes_sent=50, bytes_received=80)
        merged = TransportStats.merged([a, b])
        assert merged.requests == 4 and merged.chunks == 3 and merged.sequences == 15
        assert merged.mean_round_trip == pytest.approx(0.5)
        delta = merged.since(a)
        assert delta.requests == 1 and delta.chunks == 1 and delta.bytes_sent == 50

    def test_to_dict_carries_mean(self):
        stats = TransportStats(chunks=2, round_trip_seconds=1.0)
        assert stats.to_dict()["mean_round_trip"] == pytest.approx(0.5)
