"""Remote encoder backend against the loopback service double.

Locks in the transport's three contracts:

1. **Numerics across the wire** — for every model family, loopback-remote
   results are *bit-identical* to the in-process local backend in exact
   mode and within :data:`PADDED_TOLERANCE` in padded mode.  The service
   rebuilds its encoder, interner, and weights from the shipped config,
   so this is a genuine two-process determinism claim.
2. **Fault tolerance** — injected timeouts, 5xx, and torn payloads are
   retried (with backoff accounted in :class:`TransportStats`) and still
   produce bit-identical results; out-of-order responses are reassembled
   by digest echo; *tampered* payloads are rejected, never retried into
   acceptance.
3. **Wiring** — registry/RuntimeConfig/executor integration: the remote
   backend registers as ``"remote"``, demands a URL at configuration
   time, isolates its embedding-cache namespace, and feeds the streaming
   executor a latency-aware chunk size.

Plus a Hypothesis round trip of the JSON wire encoding (unicode pieces,
empty sequences, single-token arrays).
"""

import json
import random
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import DatasetSizes, Observatory
from repro.errors import ModelError, RemoteEncodeError
from repro.models.backends import (
    FLOAT32_TOLERANCE,
    PADDED_TOLERANCE,
    LocalBackend,
    RemoteBackend,
    ReplicaStats,
    TransportConfig,
    TransportStats,
    available_backends,
    max_relative_error,
)
from repro.models.config import Serialization
from repro.models.registry import load_model
from repro.models.token_array import (
    Token,
    TokenArray,
    TokenRole,
    wire_from_jsonable,
    wire_to_jsonable,
)
from repro.relational.table import Table
from repro.runtime.planner import EmbeddingExecutor, RuntimeConfig
from repro.testing import FleetHarness, LoopbackEncoderService
from tests.conftest import cached_model

WORDS = ("alpha", "bravo", "delta", "echo", "golf", "hotel", "india", "kilo")


@pytest.fixture(scope="module")
def service():
    with LoopbackEncoderService() as svc:
        yield svc


def fast_remote(svc, **kwargs) -> RemoteBackend:
    """A remote backend tuned for tests: tiny backoff, seeded jitter."""
    kwargs.setdefault("timeout", 10.0)
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("rng", random.Random(7))
    return RemoteBackend(svc.url, **kwargs)


def small_tables(n=4):
    tables = []
    for i in range(n):
        columns = [
            (
                WORDS[(i + c) % len(WORDS)],
                [
                    " ".join(WORDS[(i + c + r + w) % len(WORDS)] for w in range(1 + r % 2))
                    for r in range(2 + i % 3)
                ],
            )
            for c in range(1 + i % 2)
        ]
        tables.append(Table.from_columns(columns, table_id=f"remote-{i}"))
    return tables


def token_lists_for(model, tables):
    """Every family's own serialization — ROW_TEMPLATE flattens per-row."""
    if model.config.serialization == Serialization.ROW_TEMPLATE:
        return [ta for t in tables for ta in model._serializer.serialize(t)]
    return [model._serializer.serialize(model._effective_table(t)) for t in tables]


class TestLoopbackNumerics:
    def test_exact_bit_identical_for_every_model_family(self, service, all_model_names):
        tables = small_tables()
        for name in all_model_names:
            model = cached_model(name)
            if not hasattr(model, "encoder"):
                continue
            token_lists = token_lists_for(model, tables)
            local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
            remote = fast_remote(service).encode_batch(model.encoder, token_lists, 4)
            for local_arr, remote_arr in zip(local, remote):
                assert np.array_equal(local_arr, remote_arr), name

    def test_padded_within_tolerance_for_every_model_family(
        self, service, all_model_names
    ):
        tables = small_tables(6)
        for name in all_model_names:
            model = cached_model(name)
            if not hasattr(model, "encoder"):
                continue
            token_lists = token_lists_for(model, tables)
            singles = [model.encoder.encode(toks) for toks in token_lists]
            backend = fast_remote(service, exact=False, padding_tier=4)
            assert not backend.exact
            remote = backend.encode_batch(model.encoder, token_lists, 8)
            for single, rem in zip(singles, remote):
                assert rem.shape == single.shape
                assert max_relative_error(rem, single) <= PADDED_TOLERANCE, name

    def test_empty_sequences_answered_locally(self, service):
        model = cached_model("bert")
        token_lists = [TokenArray.empty(), model._serializer.serialize(small_tables(1)[0])]
        states = fast_remote(service).encode_batch(model.encoder, token_lists, 4)
        assert states[0].shape == (0, model.dim)
        assert states[1].shape[0] == len(token_lists[1])

    def test_async_entry_point_matches_sync(self, service):
        import asyncio

        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables())
        backend = fast_remote(service)
        sync = backend.encode_batch(model.encoder, token_lists, 4)
        afresh = asyncio.run(backend.aencode_batch(model.encoder, token_lists, 4))
        for a, b in zip(sync, afresh):
            assert np.array_equal(a, b)


class TestFaultInjection:
    @pytest.fixture()
    def bert_lists(self):
        model = cached_model("bert")
        return model, token_lists_for(model, small_tables())

    def baseline(self, model, token_lists):
        return LocalBackend().encode_batch(model.encoder, token_lists, 4)

    def test_timeout_mid_batch_retries_to_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service, timeout=0.3)
        service.inject("timeout", seconds=1.0)
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        stats = backend.stats_snapshot()
        assert stats.timeouts >= 1 and stats.retries >= 1 and stats.chunks == 1

    def test_5xx_then_success_exercises_backoff(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("http_500")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        stats = backend.stats_snapshot()
        assert stats.http_errors >= 1 and stats.retries >= 1

    def test_torn_payload_retries_to_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("torn")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        assert backend.stats_snapshot().retries >= 1

    def test_out_of_order_response_reassembled_bit_identical(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("shuffle")
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for a, b in zip(self.baseline(model, token_lists), states):
            assert np.array_equal(a, b)
        # Reassembly is by digest echo, not a retry.
        assert backend.stats_snapshot().retries == 0

    def test_digest_tampered_response_rejected(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        service.inject("tamper")
        with pytest.raises(RemoteEncodeError, match="digest"):
            backend.encode_batch(model.encoder, token_lists, 4)

    def test_retries_exhausted_raises(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service, retries=0)
        service.inject("http_500")
        with pytest.raises(RemoteEncodeError, match="after 1 attempt"):
            backend.encode_batch(model.encoder, token_lists, 4)

    def test_unreachable_service_raises_after_retries(self):
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables(1))
        backend = RemoteBackend(
            "http://127.0.0.1:9", timeout=0.5, retries=1, backoff_base=0.001
        )
        with pytest.raises(RemoteEncodeError):
            backend.encode_batch(model.encoder, token_lists, 4)
        assert backend.stats_snapshot().requests == 2


unicode_pieces = st.text(max_size=8)  # arbitrary unicode, empty included

token_strategy = st.builds(
    Token,
    piece=unicode_pieces,
    role=st.sampled_from(list(TokenRole)),
    row=st.integers(min_value=-1, max_value=40),
    col=st.integers(min_value=-1, max_value=40),
)


class TestJsonWireRoundTrip:
    @given(tokens=st.lists(token_strategy, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_json(self, tokens):
        ta = TokenArray.from_tokens(tokens)
        payload = json.loads(json.dumps(wire_to_jsonable(ta.to_wire())))
        rebuilt = TokenArray.from_wire(wire_from_jsonable(payload))
        assert rebuilt == ta

    @pytest.mark.parametrize(
        "tokens",
        [
            [],  # empty sequence
            [Token("τимур 🎉", TokenRole.VALUE, row=0, col=0)],  # single, unicode
            [Token("", TokenRole.SPECIAL)],  # empty piece string
        ],
    )
    def test_edge_sequences(self, tokens):
        ta = TokenArray.from_tokens(tokens)
        payload = json.loads(json.dumps(wire_to_jsonable(ta.to_wire())))
        assert TokenArray.from_wire(wire_from_jsonable(payload)) == ta

    def test_torn_jsonable_rejected(self):
        ta = TokenArray.from_tokens([Token("a", TokenRole.VALUE, row=0, col=0)])
        payload = wire_to_jsonable(ta.to_wire())
        torn = {**payload, "rows": payload["rows"][:2]}  # not a whole element
        with pytest.raises(ValueError, match="torn|base64"):
            wire_from_jsonable(torn)

    def test_missing_key_rejected(self):
        ta = TokenArray.from_tokens([Token("a", TokenRole.VALUE)])
        payload = wire_to_jsonable(ta.to_wire())
        del payload["digest"]
        with pytest.raises(ValueError, match="missing"):
            wire_from_jsonable(payload)


SIZES = DatasetSizes(
    wikitables_tables=3, sotab_tables=4, n_permutations=4, min_rows=4, max_rows=6
)
SWEEP_PROPS = ["row_order_insignificance", "sample_fidelity"]


class TestSweepThroughRemote:
    def remote_runtime(self, service, **kwargs):
        return RuntimeConfig(
            backend="remote",
            transport=TransportConfig(
                urls=(service.url,),
                timeout=kwargs.pop("remote_timeout", 30.0),
                retries=4,
            ),
            **kwargs,
        )

    def test_remote_sweep_bit_identical_to_local(self, service):
        local = Observatory(seed=0, sizes=SIZES).sweep(["bert"], SWEEP_PROPS)
        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], SWEEP_PROPS)
        assert "remote" in remote.backend
        for cell_l, cell_r in zip(local.cells, remote.cells):
            assert cell_l.result.to_dict() == cell_r.result.to_dict()
        assert remote.transport is not None and remote.transport.chunks > 0
        assert remote.transport.sequences > 0

    def test_remote_sweep_identical_under_faults(self, service):
        local = Observatory(seed=0, sizes=SIZES).sweep(["bert"], SWEEP_PROPS)
        service.inject("http_500")
        service.inject("torn")
        service.inject("shuffle")
        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], SWEEP_PROPS)
        for cell_l, cell_r in zip(local.cells, remote.cells):
            assert cell_l.result.to_dict() == cell_r.result.to_dict()
        assert remote.transport.retries >= 2  # 500 + torn each cost one

    def test_transport_surfaces_in_rendered_report(self, service):
        from repro.analysis.report import render_sweep

        remote = Observatory(
            seed=0, sizes=SIZES, runtime=self.remote_runtime(service)
        ).sweep(["bert"], ["row_order_insignificance"])
        text = render_sweep(remote)
        assert "Remote transport:" in text
        assert remote.to_dict()["transport"]["chunks"] > 0


class TestConfigWiring:
    def test_registered_backend(self):
        assert "remote" in available_backends()

    def test_runtime_config_requires_url(self, monkeypatch):
        monkeypatch.delenv("REPRO_REMOTE_URL", raising=False)
        with pytest.raises(ValueError, match="URL"):
            RuntimeConfig(backend="remote")

    def test_env_fallback(self, monkeypatch, service):
        monkeypatch.setenv("REPRO_REMOTE_URL", service.url)
        backend = RuntimeConfig(backend="remote").build_backend()
        assert isinstance(backend, RemoteBackend)
        assert backend.url == service.url

    def test_padded_mode_derives_from_exact(self, service):
        cfg = RuntimeConfig(
            backend="remote",
            transport=TransportConfig(urls=(service.url,)),
            exact=False,
        )
        backend = cfg.build_backend()
        assert not backend.exact
        assert backend.tolerance == PADDED_TOLERANCE

    def test_transport_knob_validation(self, service):
        with pytest.raises(ValueError):
            RuntimeConfig(remote_timeout=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(remote_retries=-1)
        with pytest.raises(ValueError):
            TransportConfig(urls=(service.url,), timeout=0.0)
        with pytest.raises(ValueError):
            TransportConfig(urls=(service.url,), pool_size=0)
        with pytest.raises(ValueError):
            TransportConfig(urls=(service.url,), hedge_after=1.0)
        with pytest.raises(ValueError):
            TransportConfig(urls=(service.url, service.url))  # duplicates
        with pytest.raises(ValueError):
            TransportConfig(urls=())

    def test_legacy_kwargs_build_transport_and_warn(self, service):
        with pytest.warns(DeprecationWarning, match="TransportConfig"):
            cfg = RuntimeConfig(
                backend="remote",
                remote_url=service.url,
                remote_timeout=5.0,
                remote_retries=2,
            )
        assert cfg.transport == TransportConfig(
            urls=(service.url,), timeout=5.0, retries=2
        )
        backend = cfg.build_backend()
        assert backend.url == service.url
        assert backend.timeout == 5.0 and backend.retries == 2

    def test_legacy_config_survives_dataclasses_replace(self, service):
        # The shim folds the flat kwargs into transport exactly once and
        # clears them, so dataclasses.replace (the process-shard path)
        # re-runs __post_init__ without tripping the both-forms check.
        import dataclasses

        with pytest.warns(DeprecationWarning):
            cfg = RuntimeConfig(remote_url=service.url, remote_timeout=5.0)
        assert cfg.remote_url is None and cfg.remote_timeout is None
        copy = dataclasses.replace(cfg, execution="thread", max_workers=1)
        assert copy.transport == cfg.transport
        assert copy.transport.timeout == 5.0

    def test_legacy_tuning_without_url_uses_env_fleet(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_URL", f"{service.url}, http://other:1")
        with pytest.warns(DeprecationWarning):
            cfg = RuntimeConfig(remote_timeout=7.0, remote_retries=3)
        assert cfg.transport.urls == (service.url, "http://other:1")
        assert cfg.transport.timeout == 7.0 and cfg.transport.retries == 3

        monkeypatch.delenv("REPRO_REMOTE_URL")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="replica URLs"):
                RuntimeConfig(remote_timeout=7.0)

    def test_transport_and_legacy_kwargs_conflict(self, service):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                RuntimeConfig(
                    transport=TransportConfig(urls=(service.url,)),
                    remote_url=service.url,
                )

    def test_float32_tier_requires_non_exact_runtime(self, service):
        f32 = TransportConfig(urls=(service.url,), state_dtype="float32")
        with pytest.raises(ValueError, match="not exact"):
            RuntimeConfig(backend="remote", transport=f32)  # exact=True default
        cfg = RuntimeConfig(backend="remote", transport=f32, exact=False)
        assert cfg.build_backend().exact is False

    def test_malformed_model_payload_raises_model_error(self):
        from repro.models.config import ModelConfig

        with pytest.raises(ModelError, match="malformed"):
            ModelConfig.from_jsonable({"name": "x", "dim": "64"})  # wrong type
        with pytest.raises(ModelError, match="malformed"):
            ModelConfig.from_jsonable({})  # missing required field
        with pytest.raises(ModelError, match="unknown"):
            ModelConfig.from_jsonable({"name": "x", "nope": 1})

    def test_service_answers_400_on_junk_model_not_torn_socket(self, service):
        # A malformed model payload is a client bug: the service must send
        # a real HTTP 400 (which the client raises immediately), not crash
        # the handler into a torn read that burns retries.
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables(1))

        class BadConfig:
            dim = model.config.dim

            @staticmethod
            def to_jsonable():
                return {"name": "x", "dim": "sixty-four"}

        class BadEncoder:
            config = BadConfig()

        backend = fast_remote(service)
        with pytest.raises(RemoteEncodeError, match="HTTP 400"):
            backend.encode_batch(BadEncoder(), token_lists, 4)
        assert backend.stats_snapshot().retries == 0

    def test_bad_urls_rejected(self):
        with pytest.raises(ModelError):
            RemoteBackend("https://secure.example")  # only http is spoken
        with pytest.raises(ModelError):
            RemoteBackend("not a url")

    def test_cache_namespace_isolated(self, service):
        model = load_model("bert")
        model.set_backend(fast_remote(service))
        assert EmbeddingExecutor(model)._cache_space == "bert|remote"
        model.set_backend(fast_remote(service, exact=False))
        assert EmbeddingExecutor(model)._cache_space == "bert|remote+padded"
        model.set_backend(LocalBackend())
        assert EmbeddingExecutor(model)._cache_space == "bert"


class TestChunkSizer:
    def test_default_until_first_round_trip(self, service):
        backend = fast_remote(service)
        assert backend.suggest_pipeline_chunk(8) == 8

    def test_suggestion_bounded_after_measurements(self, service):
        model = cached_model("bert")
        token_lists = token_lists_for(model, small_tables())
        backend = fast_remote(service)
        backend.encode_batch(model.encoder, token_lists, 4)
        suggestion = backend.suggest_pipeline_chunk(8)
        assert 1 <= suggestion <= 256

    def test_slow_link_amortizes_latency(self, service):
        backend = fast_remote(service)
        # Synthetic measurements: 0.5s round trips carrying 4 sequences
        # — the sizer must stretch chunks to amortize the latency floor.
        for _ in range(3):
            backend._record_chunk(backend._replicas[0], 0.5, 4)
        assert backend.suggest_pipeline_chunk(8) > 8

    def test_sizer_follows_fastest_healthy_replica(self):
        with FleetHarness(2) as fleet:
            backend = RemoteBackend(config=TransportConfig(urls=fleet.urls))
            slow, fast = backend._replicas
            backend._record_chunk(slow, 2.0, 4)   # 0.5 s/seq straggler
            backend._record_chunk(fast, 0.04, 4)  # 10 ms/seq healthy peer
            # The suggestion must track the fast replica (the one routing
            # favors), not a fleet average the straggler poisons.
            assert backend.suggest_pipeline_chunk(8) >= 16


class TestTransportStats:
    def test_merged_and_since(self):
        a = TransportStats(requests=3, chunks=2, retries=1, sequences=10,
                           round_trip_seconds=1.0, bytes_sent=100, bytes_received=200)
        b = TransportStats(requests=1, chunks=1, sequences=5,
                           round_trip_seconds=0.5, bytes_sent=50, bytes_received=80)
        merged = TransportStats.merged([a, b])
        assert merged.requests == 4 and merged.chunks == 3 and merged.sequences == 15
        assert merged.mean_round_trip == pytest.approx(0.5)
        delta = merged.since(a)
        assert delta.requests == 1 and delta.chunks == 1 and delta.bytes_sent == 50

    def test_to_dict_carries_mean(self):
        stats = TransportStats(chunks=2, round_trip_seconds=1.0)
        assert stats.to_dict()["mean_round_trip"] == pytest.approx(0.5)

    def test_replica_breakdown_merges_and_subtracts(self):
        a = TransportStats(
            chunks=2,
            hedges=1,
            replicas={"http://a:1": ReplicaStats(requests=2, chunks=2,
                                                 round_trip_seconds=1.0)},
        )
        b = TransportStats(
            chunks=1,
            quarantines=1,
            replicas={
                "http://a:1": ReplicaStats(requests=1, errors=1, quarantines=1),
                "http://b:2": ReplicaStats(requests=1, chunks=1, hedges_won=1,
                                           round_trip_seconds=0.25),
            },
        )
        merged = TransportStats.merged([a, b])
        assert merged.chunks == 3 and merged.hedges == 1 and merged.quarantines == 1
        assert merged.replicas["http://a:1"].requests == 3
        assert merged.replicas["http://a:1"].errors == 1
        assert merged.replicas["http://b:2"].hedges_won == 1
        assert merged.replicas["http://b:2"].mean_round_trip == pytest.approx(0.25)
        delta = merged.since(a)
        assert delta.replicas["http://a:1"].requests == 1
        assert delta.replicas["http://b:2"].chunks == 1
        rendered = merged.to_dict()
        assert rendered["replicas"]["http://a:1"]["requests"] == 3

    def test_copy_is_deep_for_replicas(self):
        stats = TransportStats(replicas={"http://a:1": ReplicaStats(requests=1)})
        snap = stats.copy()
        stats.replicas["http://a:1"].requests += 1
        assert snap.replicas["http://a:1"].requests == 1


url_strategy = st.builds(
    lambda host, port: f"http://{host}:{port}",
    host=st.from_regex(r"[a-z][a-z0-9-]{0,10}", fullmatch=True),
    port=st.integers(min_value=1, max_value=65535),
)

transport_strategy = st.builds(
    TransportConfig,
    urls=st.lists(url_strategy, min_size=1, max_size=4, unique=True).map(tuple),
    timeout=st.floats(min_value=0.001, max_value=600.0, allow_nan=False),
    retries=st.integers(min_value=0, max_value=10),
    compression=st.sampled_from(["none", "gzip"]),
    state_dtype=st.sampled_from(["float64", "float32"]),
    hedge_after=st.one_of(
        st.none(),
        st.floats(
            min_value=0.0, max_value=1.0, exclude_min=True, exclude_max=True,
            allow_nan=False,
        ),
    ),
    pool_size=st.integers(min_value=1, max_value=32),
)


class TestTransportConfig:
    @given(config=transport_strategy)
    @settings(max_examples=80, deadline=None)
    def test_jsonable_round_trip(self, config):
        payload = json.loads(json.dumps(config.to_jsonable()))
        assert TransportConfig.from_jsonable(payload) == config

    def test_from_jsonable_rejects_junk(self):
        with pytest.raises(ValueError, match="dict"):
            TransportConfig.from_jsonable(["http://a:1"])
        with pytest.raises(ValueError, match="unknown"):
            TransportConfig.from_jsonable({"urls": ["http://a:1"], "nope": 1})
        with pytest.raises(ValueError, match="urls"):
            TransportConfig.from_jsonable({"timeout": 1.0})

    def test_url_normalization(self):
        single = TransportConfig(urls="http://a:1")
        assert single.urls == ("http://a:1",)
        as_list = TransportConfig(urls=["http://a:1", "http://b:2"])
        assert as_list.urls == ("http://a:1", "http://b:2")
        with pytest.raises(ValueError, match="URL"):
            TransportConfig(urls=("https://secure.example",))

    def test_runtime_config_coerces_jsonable_transport(self, service):
        cfg = RuntimeConfig(transport={"urls": [service.url]})
        assert cfg.transport == TransportConfig(urls=(service.url,))


class TestFleet:
    def fleet_backend(self, urls, **kwargs):
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("rng", random.Random(7))
        config_kwargs = {
            k: kwargs.pop(k)
            for k in ("timeout", "retries", "compression", "state_dtype",
                      "hedge_after", "pool_size")
            if k in kwargs
        }
        config_kwargs.setdefault("timeout", 10.0)
        config_kwargs.setdefault("retries", 3)
        return RemoteBackend(
            config=TransportConfig(urls=tuple(urls), **config_kwargs), **kwargs
        )

    @pytest.fixture()
    def bert_lists(self):
        model = cached_model("bert")
        return model, token_lists_for(model, small_tables(6))

    def test_keep_alive_connections_reused(self, service, bert_lists):
        model, token_lists = bert_lists
        backend = fast_remote(service)
        import asyncio

        async def run():
            await backend.aencode_batch(model.encoder, token_lists, 4)
            await backend.aencode_batch(model.encoder, token_lists, 4)

        asyncio.run(run())
        stats = backend.stats_snapshot()
        assert stats.connections_opened == 1
        assert stats.connections_reused >= 1

    def test_gzip_round_trip_bit_identical_and_smaller(self, bert_lists):
        model, token_lists = bert_lists
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        with LoopbackEncoderService() as svc:
            plain = self.fleet_backend([svc.url])
            plain_states = plain.encode_batch(model.encoder, token_lists, 4)
            gzipped = self.fleet_backend([svc.url], compression="gzip")
            gzip_states = gzipped.encode_batch(model.encoder, token_lists, 4)
        for base, a, b in zip(local, plain_states, gzip_states):
            assert np.array_equal(base, a)
            assert np.array_equal(base, b)  # compression is lossless
        assert gzipped.stats_snapshot().bytes_sent < plain.stats_snapshot().bytes_sent
        assert (
            gzipped.stats_snapshot().bytes_received
            < plain.stats_snapshot().bytes_received
        )

    def test_float32_tier_within_tolerance(self, service, bert_lists):
        model, token_lists = bert_lists
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        backend = self.fleet_backend([service.url], state_dtype="float32")
        assert backend.exact is False
        assert backend.tolerance == FLOAT32_TOLERANCE
        assert backend.cache_namespace == "remote+f32"
        states = backend.encode_batch(model.encoder, token_lists, 4)
        for base, got in zip(local, states):
            assert got.dtype == np.float64  # decoded back to float64
            assert max_relative_error(got, base) <= FLOAT32_TOLERANCE

    def test_exact_float64_still_bit_identical_alongside_f32(self, service, bert_lists):
        model, token_lists = bert_lists
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        exact = self.fleet_backend([service.url])
        assert exact.exact is True
        states = exact.encode_batch(model.encoder, token_lists, 4)
        for base, got in zip(local, states):
            assert np.array_equal(base, got)

    def test_sharding_routes_across_replicas(self, bert_lists):
        model, token_lists = bert_lists
        # 6 tables is too few to shard; replicate the workload so the
        # planner can split it (>= 2 * MIN_SHARD_SEQUENCES sequences).
        token_lists = token_lists * 4
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        with FleetHarness(2) as fleet:
            backend = self.fleet_backend(fleet.urls)
            states = backend.encode_batch(model.encoder, token_lists, 4)
            for base, got in zip(local, states):
                assert np.array_equal(base, got)
            stats = backend.stats_snapshot()
            assert stats.chunks == 2  # one shard per replica
            assert stats.sequences == len(token_lists)
            per_replica = [stats.replicas[url].chunks for url in fleet.urls]
            assert per_replica == [1, 1]

    def test_hedged_request_winner_loser_accounting(self, bert_lists):
        model, token_lists = bert_lists
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        with FleetHarness(2, slow_index=0, slow_delay=0.5) as fleet:
            urls = fleet.urls
            backend = self.fleet_backend(urls, hedge_after=0.5)
            # Prime the latency window so the hedge delay (a percentile
            # over it) is computable and small; routing still explores
            # replica 0 (the straggler) first.
            for _ in range(8):
                backend._rtt_samples.append(0.01)
            states = backend.encode_batch(model.encoder, token_lists, 4)
            stats = backend.stats_snapshot()
        # No duplicate or dropped cells: every sequence answered once,
        # bit-identical to local.
        assert len(states) == len(token_lists)
        for base, got in zip(local, states):
            assert np.array_equal(base, got)
        assert stats.hedges >= 1
        assert stats.hedges_won >= 1  # the fast replica's copy won
        assert stats.hedges_cancelled >= 1  # the straggler was cancelled
        # Winner-only chunk accounting: consumed chunks == logical chunks,
        # and every consumed sequence is counted exactly once.
        assert stats.chunks == 1
        assert stats.sequences == len(token_lists)
        assert stats.replicas[urls[1]].hedges_won >= 1
        assert stats.replicas[urls[0]].chunks == 0

    def test_quarantine_and_recovery_after_5xx_streak(self, bert_lists):
        model, token_lists = bert_lists
        local = LocalBackend().encode_batch(model.encoder, token_lists, 4)
        with FleetHarness(2) as fleet:
            backend = self.fleet_backend(
                fleet.urls, quarantine_seconds=0.3
            )
            for _ in range(3):
                fleet.inject(0, "http_500")
            # Three chunks: each first tries replica 0 (unexplored-first
            # routing), eats a 500, and reroutes to replica 1.  The third
            # failure trips the quarantine.
            for _ in range(3):
                states = backend.encode_batch(model.encoder, token_lists, 4)
                for base, got in zip(local, states):
                    assert np.array_equal(base, got)
            stats = backend.stats_snapshot()
            assert stats.quarantines == 1
            assert stats.replicas[fleet.urls[0]].errors == 3
            assert stats.replicas[fleet.urls[0]].quarantines == 1
            assert not backend._replicas[0].available()
            # While quarantined, chunks route straight to the healthy
            # replica — no retries burned.
            before = backend.stats_snapshot().retries
            backend.encode_batch(model.encoder, token_lists, 4)
            assert backend.stats_snapshot().retries == before
            # After the quarantine lapses the replica is probed again and
            # a success clears its failure streak.
            time.sleep(0.35)
            assert backend._replicas[0].available()
            states = backend.encode_batch(model.encoder, token_lists, 4)
            for base, got in zip(local, states):
                assert np.array_equal(base, got)
            assert backend._replicas[0].consecutive_failures == 0
            assert backend.stats_snapshot().replicas[fleet.urls[0]].chunks >= 1

    def test_fleet_harness_surface(self):
        with FleetHarness(3, slow_index=1, slow_delay=0.05) as fleet:
            assert len(set(fleet.urls)) == 3
            assert fleet.replicas[1].delay == 0.05
            assert fleet.replicas[0].delay == 0.0
            assert fleet.requests_served == 0
        with pytest.raises(ValueError):
            FleetHarness(0)
        with pytest.raises(ValueError):
            FleetHarness(2, slow_index=5)

    def test_fleet_sweep_identical_with_flaky_replica(self):
        local = Observatory(seed=0, sizes=SIZES).sweep(["bert"], SWEEP_PROPS)
        with FleetHarness(3, slow_index=2, slow_delay=0.05) as fleet:
            fleet.inject(0, "http_500")
            runtime = RuntimeConfig(
                backend="remote",
                transport=TransportConfig(
                    urls=fleet.urls, retries=4, hedge_after=0.9
                ),
            )
            remote = Observatory(seed=0, sizes=SIZES, runtime=runtime).sweep(
                ["bert"], SWEEP_PROPS
            )
        for cell_l, cell_r in zip(local.cells, remote.cells):
            assert cell_l.result.to_dict() == cell_r.result.to_dict()
        assert remote.transport is not None
        assert len(remote.transport.replicas) >= 2  # routing really spread

    def test_cli_transport_flags_build_config(self, service):
        from repro.cli import _build_parser, _transport_from_args

        args = _build_parser().parse_args(
            [
                "sweep",
                "--models", "bert",
                "--remote-url", "http://a:1",
                "--remote-url", "http://b:2",
                "--remote-compression", "gzip",
                "--remote-state-dtype", "float32",
                "--remote-hedge-after", "0.95",
                "--remote-pool-size", "2",
                "--remote-timeout", "5",
            ]
        )
        config = _transport_from_args(args)
        assert config == TransportConfig(
            urls=("http://a:1", "http://b:2"),
            timeout=5.0,
            compression="gzip",
            state_dtype="float32",
            hedge_after=0.95,
            pool_size=2,
        )
        plain = _build_parser().parse_args(["sweep", "--models", "bert"])
        assert _transport_from_args(plain) is None
