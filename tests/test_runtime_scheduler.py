"""Work-stealing scheduler tests: dispatch loop properties and oracles.

Three layers, cheapest first:

1. Pure-logic units — :func:`build_groups` corpus affinity,
   :func:`lpt_order`, and :class:`CostModel` prior resolution.
2. A Hypothesis suite driving :class:`GroupScheduler` with in-process
   fake (thread) workers, exploring worker counts, group shapes, and
   crash subsets without paying spawn cost: every group must complete
   exactly once, in reconstructable order, for *any* interleaving.
3. Spawned-process oracles — the full :class:`WorkStealingSweep` engine
   must stay bit-identical to ``execution="thread"`` AND to the retained
   static-shard engine (:class:`ProcessShardedSweep`), including under
   injected worker crashes (salvage) and stalls (straggler re-dispatch),
   and a poisoned cell must fail loudly naming itself.
"""

import json
import queue
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Observatory, RuntimeConfig
from repro.analysis.report import render_sweep
from repro.core.framework import DatasetSizes
from repro.errors import ObservatoryError
from repro.runtime.process_sweep import ProcessShardedSweep
from repro.runtime.scheduler import (
    CRASH_ENV,
    STALL_ENV,
    CostModel,
    GroupScheduler,
    WorkStealingSweep,
    _FanInResults,
    build_groups,
    load_cost_model,
    lpt_order,
)
from repro.runtime.sweep import WORKERS_ENV, order_cells

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
PROPS = ["row_order_insignificance", "sample_fidelity"]
MODELS = ["bert", "t5"]


def make_observatory(**runtime_kwargs) -> Observatory:
    return Observatory(seed=3, sizes=SIZES, runtime=RuntimeConfig(**runtime_kwargs))


def cell_dicts(sweep_cells):
    return {
        (c.model_name, c.property_name): c.result.to_dict() for c in sweep_cells
    }


# ----------------------------------------------------------------------
# Layer 1: groups, LPT, cost priors
# ----------------------------------------------------------------------


class TestBuildGroups:
    def test_corpus_affinity_and_order_preserved(self):
        cells = order_cells(
            [
                ("bert", "row_order_insignificance"),
                ("bert", "sample_fidelity"),
                ("bert", "heterogeneous_context"),
                ("t5", "row_order_insignificance"),
                ("t5", "functional_dependencies"),
            ]
        )
        groups = build_groups(cells)
        # Within a group: one model, one corpus.
        for group in groups:
            assert all(m == group.model_name for m, _ in group.cells)
        # Concatenating groups in group_id order reproduces the input —
        # the invariant result merging depends on.
        assert [c for g in groups for c in g.cells] == cells
        assert [g.group_id for g in groups] == list(range(len(groups)))

    def test_same_corpus_runs_fuse(self):
        # Both properties characterize wikitables: one group per model.
        cells = [
            ("bert", "row_order_insignificance"),
            ("bert", "sample_fidelity"),
            ("t5", "row_order_insignificance"),
            ("t5", "sample_fidelity"),
        ]
        groups = build_groups(cells)
        assert [len(g) for g in groups] == [2, 2]
        assert [g.corpus for g in groups] == ["wikitables", "wikitables"]

    def test_empty(self):
        assert build_groups([]) == []


class TestCostModel:
    def test_resolution_order(self):
        model = CostModel(
            cell_priors={("bert", "sample_fidelity"): 9.0},
            property_priors={"sample_fidelity": 4.0, "join_relationship": 2.0},
        )
        assert model.estimate_cell("bert", "sample_fidelity") == 9.0  # exact
        assert model.estimate_cell("t5", "sample_fidelity") == 4.0  # property mean
        assert model.estimate_cell("t5", "heterogeneous_context") == 3.0  # static
        assert model.estimate_cell("t5", "unknown_property") == 1.0  # fallback

    def test_from_records_builds_property_means(self):
        model = CostModel.from_records(
            [
                {"model": "bert", "property": "sample_fidelity", "seconds": 2.0},
                {"model": "t5", "property": "sample_fidelity", "seconds": 4.0},
                {"model": "bert", "property": "bad"},  # no seconds: ignored
            ]
        )
        assert model.estimate_cell("bert", "sample_fidelity") == 2.0
        assert model.estimate_cell("doduo", "sample_fidelity") == 3.0

    def test_lpt_puts_heavy_group_first_and_is_stable(self):
        groups = build_groups(
            order_cells(
                [
                    ("bert", "row_order_insignificance"),
                    ("bert", "heterogeneous_context"),
                    ("t5", "row_order_insignificance"),
                ]
            )
        )
        ordered = lpt_order(groups, CostModel.default())
        # heterogeneous_context (3.0) outweighs any single shuffle cell.
        assert ordered[0].corpus == "sotab"
        # Equal-cost groups keep group_id order (deterministic dispatch).
        ties = [g.group_id for g in ordered if g.corpus == "wikitables"]
        assert ties == sorted(ties)

    def test_from_bench_json_top_level_and_scheduler_section(self, tmp_path):
        top = tmp_path / "top.json"
        top.write_text(
            json.dumps(
                {
                    "cell_records": [
                        {"model": "bert", "property": "sample_fidelity", "seconds": 7.0}
                    ]
                }
            )
        )
        nested = tmp_path / "nested.json"
        nested.write_text(
            json.dumps(
                {
                    "scheduler": {
                        "cell_records": [
                            {
                                "model": "t5",
                                "property": "sample_fidelity",
                                "seconds": 5.0,
                            }
                        ]
                    }
                }
            )
        )
        assert CostModel.from_bench_json(str(top)).estimate_cell(
            "bert", "sample_fidelity"
        ) == 7.0
        assert CostModel.from_bench_json(str(nested)).estimate_cell(
            "t5", "sample_fidelity"
        ) == 5.0

    def test_bad_prior_files_fail_loudly(self, tmp_path):
        with pytest.raises(ObservatoryError, match="cost priors"):
            CostModel.from_bench_json(str(tmp_path / "missing.json"))
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema_version": 6}))
        with pytest.raises(ObservatoryError, match="cell_records"):
            CostModel.from_bench_json(str(empty))

    def test_load_cost_model_env_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_COST_PRIORS", raising=False)
        assert load_cost_model().source == "default"
        priors = tmp_path / "bench.json"
        priors.write_text(
            json.dumps(
                {
                    "cell_records": [
                        {"model": "bert", "property": "sample_fidelity", "seconds": 1.0}
                    ]
                }
            )
        )
        monkeypatch.setenv("REPRO_SWEEP_COST_PRIORS", str(priors))
        assert load_cost_model().source == str(priors)
        explicit = tmp_path / "explicit.json"
        explicit.write_text(priors.read_text())
        assert load_cost_model(str(explicit)).source == str(explicit)


# ----------------------------------------------------------------------
# Layer 2: dispatch-loop properties with fake (thread) workers
# ----------------------------------------------------------------------


class FakeWorker(threading.Thread):
    """In-process worker-handle: same wire protocol, no spawn cost.

    ``crash`` makes the thread die silently the first time it receives a
    group (``is_alive()`` goes False — exactly what the scheduler's
    liveness poll sees for a dead process).  ``delay`` simulates a
    straggler grinding each group.
    """

    def __init__(self, worker_id, results, *, crash=False, delay=0.0):
        super().__init__(daemon=True)
        self.worker_id = worker_id
        self.results = results
        self.inbox = queue.Queue()
        self.crash = crash
        self.delay = delay

    def run(self):
        self.results.put(("ready", self.worker_id))
        while True:
            message = self.inbox.get()
            if message[0] == "stop":
                return
            _, group_id, cells, _duplicate = message
            if self.crash:
                return  # simulated hard death mid-group
            if self.delay:
                time.sleep(self.delay)
            self.results.put(
                ("done", self.worker_id, group_id, self.delay, {"cells": list(cells)})
            )

    def send(self, message):
        self.inbox.put(message)

    def terminate(self):
        self.inbox.put(("stop",))  # cooperative: threads can't be killed


def run_fake(groups, workers, **scheduler_kwargs):
    results = workers[0].results  # the queue every worker was built with
    for w in workers:
        w.start()
    scheduler = GroupScheduler(
        groups, poll_interval=0.01, join_timeout=0.2, **scheduler_kwargs
    )
    return scheduler.run(workers, results)


def groups_from_spec(spec):
    """``spec`` is a list of cell counts; cells are (m<i>, p<j>) markers."""
    cells = [(f"m{i}", f"p{j}") for i, count in enumerate(spec) for j in range(count)]
    return build_groups(cells), cells


class TestGroupSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        spec=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=6),
        n_workers=st.integers(min_value=1, max_value=3),
        crash_mask=st.lists(st.booleans(), min_size=3, max_size=3),
    )
    def test_every_group_completes_exactly_once(self, spec, n_workers, crash_mask):
        # At least one worker must survive for the sweep to finish.
        crashes = [crash_mask[i] for i in range(n_workers)]
        if all(crashes):
            crashes[0] = False
        groups, cells = groups_from_spec(spec)
        results = queue.Queue()
        workers = [
            FakeWorker(i, results, crash=crashes[i]) for i in range(n_workers)
        ]
        run = run_fake(groups, workers, max_retries=len(groups) * n_workers)
        assert sorted(run.payloads) == [g.group_id for g in groups]
        merged = [
            cell for g in groups for cell in run.payloads[g.group_id]["cells"]
        ]
        assert merged == cells  # reconstructs the input order exactly
        assert run.telemetry.crashes <= sum(crashes)
        assert run.telemetry.salvaged_groups == run.telemetry.crashes

    def test_straggler_redispatch_first_result_wins(self):
        groups, cells = groups_from_spec([1, 1, 1])
        results = queue.Queue()
        # Worker 0 grinds 3s per group; worker 1 is instant and steals.
        workers = [
            FakeWorker(0, results, delay=3.0),
            FakeWorker(1, results),
        ]
        run = run_fake(groups, workers, steal_min_age=0.05, steal_age_factor=0.0)
        merged = [c for g in groups for c in run.payloads[g.group_id]["cells"]]
        assert merged == cells
        assert run.telemetry.redispatches >= 1
        assert run.telemetry.workers[1].steals >= 1
        abandoned_or_won = {e["outcome"] for e in run.telemetry.dispatch_log}
        assert "won" in abandoned_or_won

    def test_all_workers_dead_raises_naming_unfinished_cells(self):
        groups, _ = groups_from_spec([2])
        results = queue.Queue()
        workers = [FakeWorker(0, results, crash=True)]
        with pytest.raises(ObservatoryError, match="every sweep worker died"):
            run_fake(groups, workers, max_retries=5)

    def test_poisoned_group_exhausts_retry_budget(self):
        groups, _ = groups_from_spec([1])
        results = queue.Queue()
        workers = [FakeWorker(i, results, crash=True) for i in range(3)]
        with pytest.raises(ObservatoryError, match=r"poisoned.*m0/p0"):
            run_fake(groups, workers, max_retries=1)

    def test_empty_groups_short_circuit(self):
        run = GroupScheduler([]).run([], queue.Queue())
        assert run.payloads == {} and run.telemetry.groups == 0

    def test_no_workers_rejected(self):
        groups, _ = groups_from_spec([1])
        with pytest.raises(ObservatoryError, match="at least one worker"):
            GroupScheduler(groups).run([], queue.Queue())

    def test_telemetry_accounts_busy_and_groups(self):
        groups, _ = groups_from_spec([2, 1])
        results = queue.Queue()
        workers = [FakeWorker(0, results)]
        run = run_fake(groups, workers)
        stats = run.telemetry.workers[0]
        assert stats.groups == len(groups)
        assert stats.cells == 3
        assert not stats.crashed
        payload = run.telemetry.to_dict()
        assert payload["groups"] == len(groups)
        assert payload["workers"][0]["worker_id"] == 0


# ----------------------------------------------------------------------
# Layer 3: spawned-process oracles
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def thread_cells():
    sweep = make_observatory().sweep(MODELS, PROPS, max_workers=1, execution="thread")
    return cell_dicts(sweep.cells)


class TestProcessOracles:
    def test_bit_identical_to_thread_and_static_engines(self, thread_cells):
        observatory = make_observatory()
        runnable = order_cells([(m, p) for p in PROPS for m in MODELS])
        static = ProcessShardedSweep(observatory, max_workers=2).run(runnable)
        for workers in (1, 2):
            stealing = WorkStealingSweep(
                make_observatory(), max_workers=workers
            ).run(runnable)
            assert cell_dicts(stealing.cells) == thread_cells
            assert cell_dicts(stealing.cells) == cell_dicts(static.cells)
            # Same cache-aware execution order as the static oracle too.
            assert [(c.model_name, c.property_name) for c in stealing.cells] == [
                (c.model_name, c.property_name) for c in static.cells
            ]

    def test_crash_salvage_completes_the_sweep(self, thread_cells, monkeypatch):
        # The BrokenProcessPool regression: one worker dying used to lose
        # the whole sweep; the scheduler must salvage and finish.
        monkeypatch.setenv(CRASH_ENV, "worker:0")
        sweep = make_observatory().sweep(
            MODELS, PROPS, max_workers=2, execution="process"
        )
        assert cell_dicts(sweep.cells) == thread_cells
        assert sweep.scheduler is not None
        assert sweep.scheduler.crashes == 1
        assert sweep.scheduler.salvaged_groups >= 1
        assert any(w.crashed for w in sweep.scheduler.workers)
        assert "[crashed]" in render_sweep(sweep)

    def test_poisoned_cell_fails_naming_it(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "cell:bert/sample_fidelity")
        engine = WorkStealingSweep(
            make_observatory(), max_workers=1, max_retries=0
        )
        with pytest.raises(
            ObservatoryError, match=r"poisoned.*bert/sample_fidelity"
        ):
            engine.run([("bert", "sample_fidelity")])

    def test_straggler_redispatch_keeps_results_identical(
        self, thread_cells, monkeypatch
    ):
        monkeypatch.setenv(STALL_ENV, "0:30")
        engine = WorkStealingSweep(
            make_observatory(), max_workers=2, steal_min_age=0.2, steal_age_factor=1.0
        )
        outcome = engine.run(order_cells([(m, p) for p in PROPS for m in MODELS]))
        assert cell_dicts(outcome.cells) == thread_cells
        assert outcome.scheduler.redispatches >= 1


class TestFanInResults:
    """The per-worker result pipes behind the process transport.

    A shared multiprocessing.Queue sends through a feeder thread holding
    an interprocess write lock; a worker hard-dying inside that window
    leaks the lock and silently wedges every survivor's sends (observed
    as a full-suite hang).  Per-worker pipes bound the blast radius to
    the crasher's own channel, which the parent reads as EOF.
    """

    def test_fans_in_from_multiple_writers_in_fifo_order(self):
        import multiprocessing

        fan_in = _FanInResults()
        writers = []
        for _ in range(2):
            reader, writer = multiprocessing.Pipe(duplex=False)
            fan_in.register(reader)
            writers.append(writer)
        writers[0].send(("ready", 0))
        writers[0].send(("done", 0))
        writers[1].send(("ready", 1))
        got = [fan_in.get(timeout=1.0) for _ in range(3)]
        assert sorted(got) == [("done", 0), ("ready", 0), ("ready", 1)]
        # Per-writer FIFO: worker 0's ready precedes its done.
        assert got.index(("ready", 0)) < got.index(("done", 0))

    def test_timeout_raises_empty(self):
        import multiprocessing

        fan_in = _FanInResults()
        reader, _writer = multiprocessing.Pipe(duplex=False)
        fan_in.register(reader)
        with pytest.raises(queue.Empty):
            fan_in.get(timeout=0.01)

    def test_dead_writer_reads_as_eof_and_is_pruned(self):
        # A crashed worker closes its write end; the survivor's channel
        # keeps delivering — the exact hazard a shared queue fails.
        import multiprocessing

        fan_in = _FanInResults()
        dead_reader, dead_writer = multiprocessing.Pipe(duplex=False)
        live_reader, live_writer = multiprocessing.Pipe(duplex=False)
        fan_in.register(dead_reader)
        fan_in.register(live_reader)
        dead_writer.close()
        live_writer.send(("ready", 1))
        messages = []
        for _ in range(4):
            try:
                messages.append(fan_in.get(timeout=0.05))
            except queue.Empty:
                pass
        assert messages == [("ready", 1)]
        assert fan_in._connections == [live_reader]

    def test_no_registered_channels_behaves_as_empty(self):
        with pytest.raises(queue.Empty):
            _FanInResults().get(timeout=0.01)


class TestSchedulerSurface:
    def test_render_and_to_dict_carry_scheduler_telemetry(self, tmp_path):
        observatory = make_observatory(disk_cache_dir=str(tmp_path / "cache"))
        sweep = observatory.sweep(MODELS, PROPS, max_workers=2, execution="process")
        rendered = render_sweep(sweep)
        assert "Scheduler:" in rendered
        assert "work groups" in rendered
        assert "- worker 0:" in rendered
        payload = sweep.to_dict()["scheduler"]
        assert payload["groups"] >= 1
        assert {w["worker_id"] for w in payload["workers"]} == {0, 1}
        assert isinstance(payload["dispatch_log"], list)

    def test_workers_capped_at_group_count(self):
        # Both PROPS share the wikitables corpus: one group per model, so
        # a request for 4 workers spawns only 2 (extras could never pull).
        sweep = make_observatory().sweep(
            MODELS, PROPS, max_workers=4, execution="process"
        )
        assert sweep.workers == 2

    def test_thread_sweeps_report_no_scheduler(self):
        sweep = make_observatory().sweep(
            ["bert"], ["row_order_insignificance"], max_workers=1, execution="thread"
        )
        assert sweep.scheduler is None
        assert sweep.to_dict()["scheduler"] is None
        assert "Scheduler:" not in render_sweep(sweep)


class TestWorkersEnv:
    def test_env_sets_default_worker_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        sweep = make_observatory().sweep(
            ["bert"], ["row_order_insignificance"], execution="thread"
        )
        assert sweep.workers == 3

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        sweep = make_observatory().sweep(
            ["bert"], ["row_order_insignificance"], max_workers=2, execution="thread"
        )
        assert sweep.workers == 2

    def test_invalid_values_fail_loudly(self, monkeypatch):
        for bad in ("zero", "0", "-2"):
            monkeypatch.setenv(WORKERS_ENV, bad)
            with pytest.raises(ObservatoryError, match=WORKERS_ENV):
                make_observatory().sweep(
                    ["bert"], ["row_order_insignificance"], execution="thread"
                )
