"""Tests for value-overlap measures (Measure 3 building blocks)."""

import pytest

from repro.errors import MeasureError
from repro.relational.overlap import (
    OVERLAP_MEASURES,
    containment,
    jaccard,
    multiset_jaccard,
    weighted_containment,
)


def test_containment_basic():
    assert containment(["a", "b"], ["a", "b", "c"]) == 1.0
    assert containment(["a", "b"], ["a"]) == 0.5
    assert containment(["a"], ["b"]) == 0.0


def test_containment_asymmetric():
    q, c = ["a", "b", "c", "d"], ["a"]
    assert containment(q, c) != containment(c, q)


def test_containment_ignores_duplicates():
    assert containment(["a", "a", "b"], ["a", "c"]) == 0.5


def test_containment_empty_query_raises():
    with pytest.raises(MeasureError):
        containment([], ["a"])
    with pytest.raises(MeasureError):
        containment([None, ""], ["a"])


def test_jaccard_basic():
    assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
    assert jaccard(["a"], ["a"]) == 1.0


def test_jaccard_empty_both_raises():
    with pytest.raises(MeasureError):
        jaccard([], [])


def test_multiset_jaccard_counts_duplicates():
    # q = {a:2, b:1}, c = {a:1, b:2}; inter = 1 + 1 = 2; total = 6
    assert multiset_jaccard(["a", "a", "b"], ["a", "b", "b"]) == pytest.approx(2 / 6)


def test_multiset_jaccard_max_is_half():
    values = ["a", "b", "b", "c"]
    assert multiset_jaccard(values, values) == 0.5


def test_multiset_jaccard_disjoint():
    assert multiset_jaccard(["a"], ["b"]) == 0.0


def test_values_normalized_and_stringified():
    assert containment([1, 2], ["1", "2 "]) == 1.0
    assert jaccard([" a"], ["a"]) == 1.0


def test_none_and_blank_dropped():
    assert containment(["a", None, ""], ["a"]) == 1.0


def test_weighted_containment():
    q = {"a": 3, "b": 1}
    c = {"a": 2}
    assert weighted_containment(q, c) == pytest.approx(2 / 4)
    with pytest.raises(MeasureError):
        weighted_containment({}, c)


def test_registry_contains_paper_measures():
    assert set(OVERLAP_MEASURES) == {"containment", "jaccard", "multiset_jaccard"}
