"""Tests for the dataset generators (banks, corpus, five suites)."""

import pytest

from repro.data import banks
from repro.data.corpus import TableCorpus
from repro.data.entities import EntityCatalog, QUERY_DOMAINS
from repro.data.nextiajd import NextiaJDGenerator, Testbed, join_quality
from repro.data.sotab import NON_TEXTUAL_TYPES, SEMANTIC_TYPES, TEXTUAL_TYPES, SotabGenerator, is_textual_type
from repro.data.spider import SpiderGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import DatasetError
from repro.relational.fd import satisfies
from repro.relational.overlap import containment, jaccard, multiset_jaccard


# --- banks --------------------------------------------------------------

def test_banks_semantic_consistency():
    # country -> continent must be a function of the bank itself.
    continents = {}
    for country, continent, _, _ in banks.COUNTRIES:
        assert continents.setdefault(country, continent) == continent


def test_bank_vocabulary_nonempty_lowercase():
    vocab = banks.bank_vocabulary()
    assert len(vocab) > 100
    assert all(w == w.lower() for w in vocab)


def test_value_fabricators_deterministic():
    assert banks.random_dates(5, 1) == banks.random_dates(5, 1)
    assert banks.random_isbns(3, "a") == banks.random_isbns(3, "a")
    assert banks.random_names(4, 2) != banks.random_names(4, 3)


def test_sample_rows_from_bank_without_replacement():
    rows = banks.sample_rows_from_bank(banks.MOVIES, 100, "t", replace=False)
    assert len(rows) == len(banks.MOVIES)
    assert len({r[0] for r in rows}) == len(rows)


# --- corpus --------------------------------------------------------------

def test_corpus_basics(small_corpus):
    assert len(small_corpus) == 6
    assert small_corpus[0].num_rows >= 5
    assert len(small_corpus.table_ids()) == 6


def test_corpus_filters(small_corpus):
    filtered = small_corpus.with_min_rows(5)
    assert all(t.num_rows >= 5 for t in filtered)
    with pytest.raises(DatasetError):
        small_corpus.with_min_rows(10**6)
    assert len(small_corpus.take(2)) == 2
    with pytest.raises(DatasetError):
        small_corpus.take(0)


def test_corpus_rejects_empty():
    with pytest.raises(DatasetError):
        TableCorpus("empty", [])


# --- wikitables -----------------------------------------------------------

def test_wikitables_generation():
    corpus = WikiTablesGenerator(seed=1).generate(8, min_rows=5, max_rows=8)
    assert len(corpus) == 8
    domains = {t.table_id.split("-")[0] for t in corpus}
    assert len(domains) == 8  # one table per domain template
    for table in corpus:
        assert 3 <= table.num_columns <= 6
        assert table.caption
        assert table.entity_links  # entity-rich
        assert table.subject_column_index() is not None


def test_wikitables_deterministic():
    a = WikiTablesGenerator(seed=5).generate(4)
    b = WikiTablesGenerator(seed=5).generate(4)
    for ta, tb in zip(a, b):
        assert ta == tb


def test_wikitables_unknown_domain():
    with pytest.raises(DatasetError):
        WikiTablesGenerator().generate_table("astrology", 5)


def test_wikitables_entity_links_point_at_subject():
    corpus = WikiTablesGenerator(seed=2).generate(8)
    for table in corpus:
        subject = table.schema.subject_index()
        for (r, c), entity_id in table.entity_links.items():
            assert c == subject
            assert str(table.cell(r, c)) in entity_id


# --- spider ----------------------------------------------------------------

def test_spider_databases_shape():
    dbs = SpiderGenerator(seed=1).generate(3)
    assert len(dbs) == 3
    assert all(len(db.tables) == 4 for db in dbs)


def test_spider_fd_sets_verified():
    fd_cases, non_fd_cases = SpiderGenerator(seed=1).fd_evaluation_sets(3)
    assert fd_cases and non_fd_cases
    assert len(non_fd_cases) <= len(fd_cases)
    for case in fd_cases:
        assert case.holds
        assert satisfies(case.table, case.fd)
    for case in non_fd_cases:
        assert not case.holds
        assert not satisfies(case.table, case.fd)


def test_spider_fd_cases_have_groups():
    from repro.relational.fd import fd_groups
    fd_cases, _ = SpiderGenerator(seed=2).fd_evaluation_sets(2)
    for case in fd_cases:
        groups = fd_groups(case.table, case.fd)
        assert max(len(rows) for rows in groups.values()) >= 2


def test_spider_validation():
    with pytest.raises(DatasetError):
        SpiderGenerator().generate(0)
    with pytest.raises(DatasetError):
        SpiderGenerator().generate(1, rows_per_table=2)


# --- nextiajd ----------------------------------------------------------------

def test_join_quality_thresholds():
    assert join_quality(0.9, 1.0) == 1.0
    assert join_quality(0.6, 0.5) == 0.75
    assert join_quality(0.3, 0.5) == 0.5
    assert join_quality(0.15, 0.01) == 0.25
    assert join_quality(0.05, 1.0) == 0.0
    with pytest.raises(DatasetError):
        join_quality(1.5, 1.0)
    with pytest.raises(DatasetError):
        join_quality(0.5, -1.0)


def test_nextiajd_pairs_labelled_consistently():
    pairs = NextiaJDGenerator(seed=1).generate_pairs(12, Testbed.XS)
    assert len(pairs) == 12
    for pair in pairs:
        assert pair.is_joinable
        assert pair.containment == pytest.approx(
            containment(pair.query_values, pair.candidate_values)
        )
        assert pair.jaccard == pytest.approx(
            jaccard(pair.query_values, pair.candidate_values)
        )
        assert pair.multiset_jaccard == pytest.approx(
            multiset_jaccard(pair.query_values, pair.candidate_values)
        )
        assert 0 < pair.multiset_jaccard <= 0.5


def test_nextiajd_testbed_sizes():
    xs = NextiaJDGenerator(seed=2).generate_pairs(4, Testbed.XS)
    lo, hi = Testbed.XS.column_size_range
    for pair in xs:
        assert lo <= len(pair.query_values) <= hi


def test_nextiajd_deterministic():
    a = NextiaJDGenerator(seed=3).generate_pairs(5)
    b = NextiaJDGenerator(seed=3).generate_pairs(5)
    assert a == b


def test_nextiajd_large_table():
    table = NextiaJDGenerator(seed=1).generate_large_table(n_rows=100, n_columns=12)
    assert table.num_rows == 100
    assert table.num_columns == 12
    with pytest.raises(DatasetError):
        NextiaJDGenerator().generate_large_table(n_rows=1)


# --- sotab ----------------------------------------------------------------

def test_sotab_twenty_balanced_types():
    assert len(SEMANTIC_TYPES) == 20
    assert len(TEXTUAL_TYPES) == 10
    assert len(NON_TEXTUAL_TYPES) == 10


def test_sotab_generation_and_targets():
    corpus = SotabGenerator(seed=1).generate(20)
    assert len(corpus) == 20
    seen_types = set()
    for table in corpus:
        target = SotabGenerator.target_column_index(table)
        semantic = table.schema[target].semantic_type
        seen_types.add(semantic)
        assert semantic in SEMANTIC_TYPES
    assert len(seen_types) == 20  # sweeps all types


def test_sotab_headerless_fraction():
    corpus = SotabGenerator(seed=1).generate(20, headerless_fraction=0.5)
    headerless = sum(1 for t in corpus if all(not n for n in t.header))
    assert 5 <= headerless <= 15


def test_sotab_is_textual_type():
    assert is_textual_type("country")
    assert not is_textual_type("money")
    with pytest.raises(DatasetError):
        is_textual_type("astrology")


# --- entities ----------------------------------------------------------------

def test_entity_catalog_structure():
    catalog = EntityCatalog(seed=0, queries_per_domain=5)
    assert set(catalog.domains()) == set(QUERY_DOMAINS)
    assert len(catalog) >= 5 * len(QUERY_DOMAINS)
    for domain in catalog.domains():
        queries = catalog.query_indices(domain)
        assert len(queries) == 5
        for q in queries:
            assert catalog.entities[q].domain == domain


def test_entity_catalog_contexts_contain_mentions():
    catalog = EntityCatalog(seed=0, queries_per_domain=3)
    for entity in catalog.entities[:10]:
        values = {
            str(entity.context_table.cell(r, c))
            for (r, c) in entity.context_table.entity_links
        }
        assert entity.mention in values


def test_entity_catalog_unknown_domain():
    catalog = EntityCatalog(seed=0, queries_per_domain=2)
    with pytest.raises(DatasetError):
        catalog.query_indices("astrology")
    with pytest.raises(DatasetError):
        catalog.index_of("astrology:Mars")
