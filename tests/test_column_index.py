"""Property and unit tests for the persistent column index.

The headline contract — pruning-off queries are *bit-identical* (keys,
float scores, order) to the brute-force :class:`JoinDiscoveryIndex`
oracle — is asserted over hypothesis-generated corpora that include
duplicated rows (score ties) and adversarial magnitudes.  The oracle is
fed :meth:`ColumnIndex.quantize`-d embeddings, which is the documented
equivalence precondition (shards store float32).
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.downstream.join_discovery import JoinDiscoveryIndex
from repro.errors import ColumnIndexError
from repro.index import (
    PROBE_RECALL_FLOOR,
    PRUNE_MODES,
    ColumnIndex,
    default_min_candidates,
)

DIM = 5

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


def _usable(vector):
    """Quantized vector must clear the index's zero-norm floor."""
    return (
        np.linalg.norm(ColumnIndex.quantize(np.asarray(vector, dtype=np.float64)))
        >= 1e-6
    )


row_strategy = st.lists(finite_floats, min_size=DIM, max_size=DIM).filter(_usable)


@st.composite
def corpora(draw):
    """(rows, query): distinct base rows plus duplicated picks for ties."""
    base = draw(st.lists(row_strategy, min_size=1, max_size=12))
    # Duplicate some rows so stable tie-breaking is actually exercised.
    dupes = draw(
        st.lists(st.integers(min_value=0, max_value=len(base) - 1), max_size=6)
    )
    rows = [np.asarray(r, dtype=np.float64) for r in base]
    rows += [rows[i].copy() for i in dupes]
    query = np.asarray(draw(row_strategy), dtype=np.float64)
    return rows, query


def _build_pair(tmp_path, rows, shard_rows=4):
    """A ColumnIndex and the oracle over the same quantized corpus."""
    keys = [f"col{i}" for i in range(len(rows))]
    index = ColumnIndex.build(
        os.path.join(str(tmp_path), "idx"),
        zip(keys, rows),
        dim=DIM,
        shard_rows=shard_rows,
    )
    oracle = JoinDiscoveryIndex(DIM)
    for key, row in zip(keys, rows):
        oracle.add(key, ColumnIndex.quantize(row))
    return index, oracle


@settings(deadline=None, max_examples=30)
@given(data=corpora(), k_seed=st.integers(min_value=1, max_value=10**6))
def test_pruning_off_is_bit_identical_to_oracle(tmp_path_factory, data, k_seed):
    rows, query = data
    tmp = tmp_path_factory.mktemp("ci")
    index, oracle = _build_pair(tmp, rows)
    k = 1 + k_seed % len(rows)
    got = index.query(query, k, prune="off")
    want = oracle.lookup(query, k)
    # Tuple equality covers keys, order, AND exact float bit-equality.
    assert got == want


@settings(deadline=None, max_examples=20)
@given(data=corpora())
def test_bound_mode_matches_exhaustive_within_margin(tmp_path_factory, data):
    rows, query = data
    tmp = tmp_path_factory.mktemp("ci")
    index, oracle = _build_pair(tmp, rows)
    k = min(3, len(rows))
    exact = index.query(query, k, prune="off")
    bound = index.query(query, k, prune="bound")
    assert len(bound) == len(exact)
    # Identical result sets except where scores tie within the margin;
    # every bound-mode hit must score within 1e-8 of its exact peer.
    by_key = dict(oracle.lookup(query, len(rows)))
    for (got_key, got_score), (_, want_score) in zip(bound, exact):
        assert abs(by_key[got_key] - want_score) <= 1e-8
        assert abs(got_score - by_key[got_key]) <= 1e-8


@settings(deadline=None, max_examples=15)
@given(data=corpora(), split_seed=st.integers(min_value=0, max_value=10**6))
def test_append_then_query_equals_build_from_scratch(
    tmp_path_factory, data, split_seed
):
    rows, query = data
    tmp = tmp_path_factory.mktemp("ci")
    keys = [f"col{i}" for i in range(len(rows))]
    built = ColumnIndex.build(
        os.path.join(str(tmp), "built"), zip(keys, rows), dim=DIM
    )
    appended = ColumnIndex.create(os.path.join(str(tmp), "appended"), DIM)
    split = split_seed % (len(rows) + 1)
    appended.append_many(zip(keys[:split], rows[:split]), shard_rows=3)
    for key, row in zip(keys[split:], rows[split:]):
        appended.append(key, row)
    k = min(4, len(rows))
    assert appended.query(query, k) == built.query(query, k)


@settings(deadline=None, max_examples=10)
@given(data=corpora())
def test_pickle_and_reopen_round_trip_bit_identically(tmp_path_factory, data):
    rows, query = data
    tmp = tmp_path_factory.mktemp("ci")
    index, _ = _build_pair(tmp, rows)
    k = min(3, len(rows))
    want = index.query(query, k)
    clone = pickle.loads(pickle.dumps(index))
    assert clone.query(query, k) == want
    reopened = ColumnIndex.open(index.directory)
    assert reopened.query(query, k) == want


def _clustered_corpus(rng, n_clusters, per_cluster, dim=16):
    centers = rng.normal(size=(n_clusters, dim)) * 4.0
    rows, keys = [], []
    for c in range(n_clusters):
        points = centers[c] + rng.normal(size=(per_cluster, dim)) * 0.5
        rows.extend(points)
        keys.extend(f"c{c}_{i}" for i in range(per_cluster))
    return centers, keys, np.asarray(rows)


def test_probe_recall_meets_documented_floor(tmp_path):
    rng = np.random.default_rng(202)
    dim = 16
    centers, keys, rows = _clustered_corpus(rng, n_clusters=12, per_cluster=60, dim=dim)
    index = ColumnIndex.build(
        str(tmp_path / "idx"), zip(keys, rows), dim=dim
    )
    recalls = []
    for t in range(40):
        query = centers[t % len(centers)] + rng.normal(size=dim) * 0.5
        exact = {key for key, _ in index.query(query, 10, prune="off")}
        probe = {key for key, _ in index.query(query, 10, prune="probe")}
        recalls.append(len(exact & probe) / 10)
    assert float(np.mean(recalls)) >= PROBE_RECALL_FLOOR
    assert min(recalls) >= 0.5


def test_probe_widens_to_candidate_floor(tmp_path):
    rng = np.random.default_rng(7)
    keys = [f"k{i}" for i in range(30)]
    rows = rng.normal(size=(30, DIM))
    index = ColumnIndex.build(str(tmp_path / "idx"), zip(keys, rows), dim=DIM)
    # The scale-aware floor exceeds the corpus: probe degrades gracefully
    # to exhaustive and must therefore match the exact result set.
    assert default_min_candidates(30) >= 30
    query = rng.normal(size=DIM)
    exact = index.query(query, 5, prune="off")
    probe = index.query(query, 5, prune="probe")
    assert {k for k, _ in probe} == {k for k, _ in exact}


def test_explicit_probes_and_min_candidates(tmp_path):
    rng = np.random.default_rng(8)
    keys = [f"k{i}" for i in range(120)]
    rows = rng.normal(size=(120, DIM))
    index = ColumnIndex.build(str(tmp_path / "idx"), zip(keys, rows), dim=DIM)
    query = rng.normal(size=DIM)
    narrow = index.query(query, 3, prune="probe", probes=1, min_candidates=1)
    assert len(narrow) == 3
    wide = index.query(query, 3, prune="probe", min_candidates=120)
    assert wide == index.query(query, 3, prune="off")
    with pytest.raises(ColumnIndexError):
        index.query(query, 3, prune="probe", probes=0)
    with pytest.raises(ColumnIndexError):
        index.query(query, 3, prune="probe", min_candidates=0)


def test_validation_errors(tmp_path):
    index = ColumnIndex.create(str(tmp_path / "idx"), DIM)
    with pytest.raises(ColumnIndexError, match="empty"):
        index.query(np.ones(DIM), 1)
    with pytest.raises(ColumnIndexError, match="expected a"):
        index.append("short", np.ones(DIM - 1))
    with pytest.raises(ColumnIndexError, match="zero embedding"):
        index.append("zero", np.zeros(DIM))
    # Small enough to quantize to float32 zero: rejected, not indexed.
    with pytest.raises(ColumnIndexError, match="zero embedding"):
        index.append("tiny", np.full(DIM, 1e-300))
    index.append("ok", np.ones(DIM))
    with pytest.raises(ColumnIndexError, match="k must be"):
        index.query(np.ones(DIM), 2)
    with pytest.raises(ColumnIndexError, match="k must be"):
        index.query(np.ones(DIM), 0)
    with pytest.raises(ColumnIndexError, match="zero embedding"):
        index.query(np.zeros(DIM), 1)
    with pytest.raises(ColumnIndexError, match="prune"):
        index.query(np.ones(DIM), 1, prune="fast")
    with pytest.raises(ColumnIndexError, match="dim"):
        ColumnIndex(str(tmp_path / "idx"), dim=DIM + 1, create=True)
    with pytest.raises(ColumnIndexError, match="no column index"):
        ColumnIndex.open(str(tmp_path / "nowhere"))


def test_describe_and_exports(tmp_path):
    import repro

    assert repro.ColumnIndex is ColumnIndex
    assert PRUNE_MODES == ("off", "bound", "probe")
    index = ColumnIndex.create(str(tmp_path / "idx"), DIM)
    index.append_many((f"k{i}", np.eye(DIM)[i % DIM] + 1.0) for i in range(7))
    info = index.describe()
    assert info["rows"] == 7 == len(index)
    assert info["dim"] == DIM
    assert info["dropped_shards"] == 0
    assert set(info["prune_modes"]) == set(PRUNE_MODES)
    assert index.keys() == [f"k{i}" for i in range(7)]
    # No plan exists yet; a pruned query builds and persists one, and a
    # fresh handle reports it from disk without rebuilding.
    assert info["partitions"] is None
    index.query(np.ones(DIM), 1, prune="probe")
    partitions = index.describe()["partitions"]
    assert partitions is not None and partitions >= 1
    reopened = ColumnIndex.open(str(tmp_path / "idx"))
    assert reopened.describe()["partitions"] == partitions


def test_quantize_is_exact_for_float32_values():
    rng = np.random.default_rng(3)
    raw = rng.normal(size=8).astype(np.float32).astype(np.float64)
    assert np.array_equal(ColumnIndex.quantize(raw), raw)
