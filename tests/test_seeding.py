"""Tests for deterministic seeding and stable hashing."""

import numpy as np
import pytest

from repro.seeding import (
    hash_to_unit_interval,
    rng_for,
    shuffled,
    spawn_seeds,
    stable_hash,
    token_vector,
)


def test_stable_hash_deterministic():
    assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)


def test_stable_hash_distinguishes_types():
    assert stable_hash(1) != stable_hash("1")
    assert stable_hash(True) != stable_hash(1)
    assert stable_hash(None) != stable_hash("")


def test_stable_hash_separator_prevents_concatenation_collision():
    assert stable_hash("ab", "c") != stable_hash("a", "bc")


def test_stable_hash_range():
    value = stable_hash("anything", 42)
    assert 0 <= value < (1 << 63)


def test_stable_hash_rejects_unhashable():
    with pytest.raises(TypeError):
        stable_hash([1, 2])


def test_rng_for_reproducible_streams():
    a = rng_for("ns", "x").standard_normal(5)
    b = rng_for("ns", "x").standard_normal(5)
    assert np.allclose(a, b)


def test_rng_for_distinct_namespaces():
    a = rng_for("ns1", "x").standard_normal(5)
    b = rng_for("ns2", "x").standard_normal(5)
    assert not np.allclose(a, b)


def test_token_vector_shape_and_determinism():
    v1 = token_vector("hello", 32)
    v2 = token_vector("hello", 32)
    assert v1.shape == (32,)
    assert np.allclose(v1, v2)


def test_token_vector_differs_by_token_and_namespace():
    assert not np.allclose(token_vector("a", 16), token_vector("b", 16))
    assert not np.allclose(
        token_vector("a", 16, namespace="x"), token_vector("a", 16, namespace="y")
    )


def test_hash_to_unit_interval_bounds():
    values = [hash_to_unit_interval("k", i) for i in range(100)]
    assert all(0.0 <= v < 1.0 for v in values)
    # Spread sanity: not all identical.
    assert len({round(v, 6) for v in values}) > 90


def test_spawn_seeds_distinct():
    seeds = spawn_seeds(7, 10)
    assert len(set(seeds)) == 10


def test_spawn_seeds_negative_count():
    with pytest.raises(ValueError):
        spawn_seeds(1, -1)


def test_shuffled_is_permutation_and_deterministic():
    items = list(range(20))
    a = shuffled(items, "seed1")
    b = shuffled(items, "seed1")
    assert a == b
    assert sorted(a) == items
    assert shuffled(items, "seed2") != a
