"""Tests for row sampling and column chunking."""

import pytest

from repro.errors import DatasetError
from repro.relational.sampling import (
    chunk_values,
    distinct_samples,
    sample_column_values,
    sample_rows,
)
from repro.relational.table import Table


@pytest.fixture()
def table():
    return Table.from_columns(
        [("x", list(range(20))), ("y", [str(i) for i in range(20)])],
        table_id="sampling-test",
    )


def test_sample_rows_size(table):
    sampled = sample_rows(table, 0.5)
    assert sampled.num_rows == 10
    assert sampled.num_columns == 2


def test_sample_rows_preserves_order(table):
    sampled = sample_rows(table, 0.3)
    values = sampled.column_values(0)
    assert values == sorted(values)


def test_sample_rows_full_fraction(table):
    assert sample_rows(table, 1.0).num_rows == 20


def test_sample_rows_minimum(table):
    assert sample_rows(table, 0.001, minimum=3).num_rows == 3


def test_sample_rows_deterministic(table):
    a = sample_rows(table, 0.5, seed_parts=(1,))
    b = sample_rows(table, 0.5, seed_parts=(1,))
    c = sample_rows(table, 0.5, seed_parts=(2,))
    assert a.rows == b.rows
    assert a.rows != c.rows


def test_sample_rows_bad_fraction(table):
    with pytest.raises(DatasetError):
        sample_rows(table, 0.0)
    with pytest.raises(DatasetError):
        sample_rows(table, 1.5)


def test_sample_column_values_subset_in_order():
    values = list("abcdefghij")
    sample = sample_column_values(values, 0.4, seed_parts=("s",))
    assert len(sample) == 4
    indices = [values.index(v) for v in sample]
    assert indices == sorted(indices)


def test_sample_column_values_empty():
    assert sample_column_values([], 0.5) == []


def test_chunk_values_covers_everything():
    values = list(range(10))
    chunks = chunk_values(values, 3)
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert [v for chunk in chunks for v in chunk] == values


def test_chunk_values_bad_size():
    with pytest.raises(DatasetError):
        chunk_values([1], 0)


def test_distinct_samples_independent_and_deterministic():
    values = list(range(40))
    samples = distinct_samples(values, 0.25, 4, seed_parts=("d",))
    assert len(samples) == 4
    assert all(len(s) == 10 for s in samples)
    again = distinct_samples(values, 0.25, 4, seed_parts=("d",))
    assert samples == again
    assert len({tuple(s) for s in samples}) > 1  # not all identical


def test_distinct_samples_bad_count():
    with pytest.raises(DatasetError):
        distinct_samples([1, 2], 0.5, 0)
