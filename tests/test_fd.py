"""Tests for functional dependencies (definition, verification, groups)."""

import pytest

from repro.errors import TableError
from repro.relational.fd import (
    FunctionalDependency,
    fd_groups,
    group_value_pairs,
    satisfies,
    violation_pairs,
)
from repro.relational.table import Table


def test_fd_validation():
    with pytest.raises(ValueError):
        FunctionalDependency(determinant=(), dependent=(1,))
    with pytest.raises(ValueError):
        FunctionalDependency(determinant=(0,), dependent=(0,))


def test_unary_constructor():
    fd = FunctionalDependency.unary(1, 2)
    assert fd.determinant == (1,)
    assert fd.dependent == (2,)


def test_satisfies_true_fd(fd_table):
    assert satisfies(fd_table, FunctionalDependency.unary(1, 2))  # country -> continent


def test_satisfies_false_fd(fd_table):
    assert not satisfies(fd_table, FunctionalDependency.unary(1, 0))  # country -/-> city


def test_satisfies_multi_attribute(fd_table):
    fd = FunctionalDependency(determinant=(0, 1), dependent=(2,))
    assert satisfies(fd_table, fd)  # (city, country) -> continent


def test_satisfies_out_of_range(fd_table):
    with pytest.raises(TableError):
        satisfies(fd_table, FunctionalDependency.unary(0, 9))


def test_violation_pairs_witnesses(fd_table):
    witnesses = violation_pairs(fd_table, FunctionalDependency.unary(1, 0))
    assert witnesses  # country does not determine city
    for i, j in witnesses:
        assert str(fd_table.cell(i, 1)) == str(fd_table.cell(j, 1))
        assert str(fd_table.cell(i, 0)) != str(fd_table.cell(j, 0))


def test_violation_pairs_empty_for_true_fd(fd_table):
    assert violation_pairs(fd_table, FunctionalDependency.unary(1, 2)) == []


def test_fd_groups_partition(fd_table):
    groups = fd_groups(fd_table, FunctionalDependency.unary(1, 2))
    all_rows = sorted(r for rows in groups.values() for r in rows)
    assert all_rows == list(range(fd_table.num_rows))
    assert len(groups) == 3  # Netherlands, Canada, USA
    assert groups[("Netherlands",)] == [0, 1, 2]


def test_group_value_pairs_coordinates(fd_table):
    fd = FunctionalDependency.unary(1, 2)
    coords = group_value_pairs(fd_table, fd)
    assert len(coords) == 3
    total = sum(len(group) for group in coords)
    assert total == fd_table.num_rows
    for group in coords:
        for (r1, c1, r2, c2) in group:
            assert r1 == r2
            assert (c1, c2) == (1, 2)


def test_describe(fd_table):
    fd = FunctionalDependency.unary(1, 2)
    assert fd.describe(fd_table) == "country -> continent"


def test_none_values_compare_as_empty():
    table = Table.from_columns([("a", ["x", "x"]), ("b", [None, None])])
    assert satisfies(table, FunctionalDependency.unary(0, 1))
