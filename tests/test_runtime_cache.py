"""Tests for the embedding cache and content fingerprints."""

import numpy as np
import pytest

from repro.relational.table import Table
from repro.runtime.cache import EmbeddingCache
from repro.runtime.fingerprint import (
    coords_fingerprint,
    table_fingerprint,
    value_column_fingerprint,
)


@pytest.fixture()
def table() -> Table:
    return Table.from_columns(
        [
            ("player", ["Federer", "Nadal", "Djokovic", "Murray"]),
            ("titles", [103, 92, 94, 46]),
        ],
        caption="tennis",
        table_id="t1",
    )


class TestFingerprint:
    def test_stable_across_reconstruction(self, table):
        rebuilt = Table.from_columns(
            [
                ("player", ["Federer", "Nadal", "Djokovic", "Murray"]),
                ("titles", [103, 92, 94, 46]),
            ],
            caption="tennis",
            table_id="t1",
        )
        assert table_fingerprint(table) == table_fingerprint(rebuilt)

    def test_identity_permutation_hits(self, table):
        identity = table.reorder_rows(range(table.num_rows))
        assert table_fingerprint(identity) == table_fingerprint(table)
        identity_cols = table.reorder_columns(range(table.num_columns))
        assert table_fingerprint(identity_cols) == table_fingerprint(table)

    def test_row_permutation_misses(self, table):
        # Embeddings are order-sensitive, so a permuted variant must get a
        # distinct cache identity.
        shuffled = table.reorder_rows([1, 0, 3, 2])
        assert table_fingerprint(shuffled) != table_fingerprint(table)

    def test_column_permutation_misses(self, table):
        shuffled = table.reorder_columns([1, 0])
        assert table_fingerprint(shuffled) != table_fingerprint(table)

    def test_value_types_distinguished(self):
        assert value_column_fingerprint("x", [1, 2]) != value_column_fingerprint(
            "x", ["1", "2"]
        )
        assert value_column_fingerprint("x", [1, 2]) != value_column_fingerprint(
            "x", [1.0, 2.0]
        )

    def test_caption_and_header_matter(self, table):
        recaptioned = Table(table.schema, table.rows, caption="other", table_id="t1")
        assert table_fingerprint(recaptioned) != table_fingerprint(table)
        renamed = table.rename_column(0, "athlete")
        assert table_fingerprint(renamed) != table_fingerprint(table)

    def test_coords_fingerprint_order_insensitive(self):
        assert coords_fingerprint([(0, 1), (2, 3)]) == coords_fingerprint(
            [(2, 3), (0, 1), (0, 1)]
        )
        assert coords_fingerprint([(0, 1)]) != coords_fingerprint([(1, 0)])


class TestEmbeddingCache:
    def test_hit_miss_accounting(self):
        cache = EmbeddingCache(max_entries=8)
        key = ("bert", "column", "abc")
        assert cache.get(key) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.put(key, np.ones(4))
        value = cache.get(key)
        assert np.array_equal(value, np.ones(4))
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = EmbeddingCache(max_entries=2)
        cache.put(("m", "l", "a"), np.zeros(1))
        cache.put(("m", "l", "b"), np.zeros(1))
        cache.get(("m", "l", "a"))  # refresh a; b becomes LRU
        cache.put(("m", "l", "c"), np.zeros(1))
        assert cache.stats.evictions == 1
        assert cache.get(("m", "l", "b")) is None  # evicted
        assert cache.get(("m", "l", "a")) is not None

    def test_disk_tier_survives_memory_eviction(self, tmp_path):
        cache = EmbeddingCache(max_entries=1, disk_dir=str(tmp_path))
        cache.put(("m", "l", "a"), np.arange(3, dtype=np.float64))
        cache.put(("m", "l", "b"), np.arange(3, 6, dtype=np.float64))  # evicts a
        value = cache.get(("m", "l", "a"))  # served from disk
        assert np.array_equal(value, np.arange(3, dtype=np.float64))
        assert cache.stats.disk_hits == 1

    def test_disk_tier_shared_across_instances(self, tmp_path):
        first = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        first.put(("m", "l", "k"), np.full(2, 7.0))
        second = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        assert np.array_equal(second.get(("m", "l", "k")), np.full(2, 7.0))

    def test_dict_values_memory_only(self, tmp_path):
        cache = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        cache.put(("m", "cells/x", "k"), {(0, 0): np.zeros(2)})
        fresh = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        assert fresh.get(("m", "cells/x", "k")) is None

    def test_clear_keeps_disk(self, tmp_path):
        cache = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        cache.put(("m", "l", "k"), np.ones(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("m", "l", "k")) is not None  # disk tier

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EmbeddingCache(max_entries=0)

    def test_cached_arrays_are_frozen(self):
        cache = EmbeddingCache(max_entries=4)
        cache.put(("m", "l", "k"), np.ones(3))
        value = cache.get(("m", "l", "k"))
        with pytest.raises(ValueError):
            value[0] = 99.0  # mutating a shared cache entry must fail loudly

    def test_dict_entries_returned_as_copies(self):
        cache = EmbeddingCache(max_entries=4)
        cache.put(("m", "cells/x", "k"), {(0, 0): np.zeros(2)})
        first = cache.get(("m", "cells/x", "k"))
        first[(9, 9)] = np.ones(2)  # caller-side additions stay caller-side
        assert (9, 9) not in cache.get(("m", "cells/x", "k"))

    def test_disk_entries_scoped_by_schema_version(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_module

        first = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        first.put(("m", "l", "k"), np.ones(2))
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 999)
        bumped = EmbeddingCache(max_entries=4, disk_dir=str(tmp_path))
        assert bumped.get(("m", "l", "k")) is None  # old entries invalidated
