"""Tests for P3-P8 runners."""

import numpy as np
import pytest

from repro.core.properties import (
    ContextConfig,
    ContextSetting,
    EntityStability,
    EntityStabilityConfig,
    FDConfig,
    FunctionalDependencies,
    HeterogeneousContext,
    JoinRelationship,
    JoinRelationshipConfig,
    PerturbationConfig,
    PerturbationRobustness,
    SampleFidelity,
    SampleFidelityConfig,
)
from repro.core.properties.p8_heterogeneous_context import context_projection
from repro.data.drspider import PerturbationSuite
from repro.data.entities import EntityCatalog
from repro.data.nextiajd import NextiaJDGenerator
from repro.data.sotab import SotabGenerator
from repro.data.spider import SpiderGenerator
from repro.errors import PropertyConfigError
from tests.conftest import cached_model


@pytest.fixture(scope="module")
def join_pairs():
    return NextiaJDGenerator(seed=9).generate_pairs(10)


@pytest.fixture(scope="module")
def fd_sets():
    return SpiderGenerator(seed=9).fd_evaluation_sets(2)


@pytest.fixture(scope="module")
def sotab_corpus():
    return SotabGenerator(seed=9).generate(8)


@pytest.fixture(scope="module")
def catalog():
    return EntityCatalog(seed=9, queries_per_domain=4)


# --- P3 -------------------------------------------------------------------

def test_p3_produces_spearman_scalars(join_pairs):
    result = JoinRelationship().run(cached_model("bert"), join_pairs)
    for measure in ("containment", "jaccard", "multiset_jaccard"):
        assert f"spearman/{measure}" in result.scalars
        assert -1.0 <= result.scalars[f"spearman/{measure}"] <= 1.0
        assert 0.0 <= result.scalars[f"p_value/{measure}"] <= 1.0
    assert result.distributions["cosine"].n == len(join_pairs)


def test_p3_empty_pairs_rejected():
    with pytest.raises(PropertyConfigError):
        JoinRelationship().run(cached_model("bert"), [])


def test_p3_config_validation():
    with pytest.raises(PropertyConfigError):
        JoinRelationshipConfig(overlap_measures=("nonsense",))
    with pytest.raises(PropertyConfigError):
        JoinRelationshipConfig(overlap_measures=())


def test_p3_keep_series(join_pairs):
    config = JoinRelationshipConfig(keep_series=True)
    result = JoinRelationship().run(cached_model("bert"), join_pairs, config)
    assert len(result.series["overlap/containment"]) == len(join_pairs)
    assert len(result.series["cosine"]) == len(join_pairs)


# --- P4 -------------------------------------------------------------------

def test_p4_outputs(fd_sets):
    result = FunctionalDependencies().run(cached_model("bert"), fd_sets)
    assert result.scalars["mean_s2/fd"] >= 0
    assert result.scalars["mean_s2/non_fd"] >= 0
    assert "fd/s2" in result.distributions
    assert "non_fd/s2" in result.distributions
    assert result.metadata["norm"] == "L2"


def test_p4_l1_option(fd_sets):
    result = FunctionalDependencies().run(
        cached_model("bert"), fd_sets, FDConfig(norm=1)
    )
    assert result.metadata["norm"] == "L1"


def test_p4_config_validation():
    with pytest.raises(PropertyConfigError):
        FDConfig(norm=3)
    with pytest.raises(PropertyConfigError):
        FDConfig(min_group_size=1)


def test_p4_empty_cases_rejected():
    with pytest.raises(PropertyConfigError):
        FunctionalDependencies().run(cached_model("bert"), ([], []))


def test_p4_case_variance_zero_for_constant_translations(fd_sets):
    """A model mapping every cell to the same vector has S^2 = 0."""
    class ConstantModel:
        name, dim = "constant", 4
        def supports(self, level):
            return True
        def embed_cells(self, table, coords):
            return {c: np.ones(4) for c in coords}

    fd_cases, _ = fd_sets
    s2 = FunctionalDependencies.case_variance(ConstantModel(), fd_cases[0])
    assert s2 == pytest.approx(0.0, abs=1e-18)


# --- P5 -------------------------------------------------------------------

def test_p5_outputs(small_corpus):
    config = SampleFidelityConfig(ratios=(0.5,), n_samples=2)
    result = SampleFidelity().run(cached_model("bert"), small_corpus.take(2), config)
    stats = result.distributions["ratio_0.5/fidelity"]
    assert 0.0 < stats.median <= 1.0
    assert "ratio_0.5/mcv" in result.distributions


def test_p5_fidelity_increases_with_ratio(small_corpus):
    config = SampleFidelityConfig(ratios=(0.25, 0.75), n_samples=2)
    result = SampleFidelity().run(cached_model("bert"), small_corpus.take(3), config)
    assert (
        result.distributions["ratio_0.75/fidelity"].median
        >= result.distributions["ratio_0.25/fidelity"].median
    )


def test_p5_config_validation():
    with pytest.raises(PropertyConfigError):
        SampleFidelityConfig(ratios=())
    with pytest.raises(PropertyConfigError):
        SampleFidelityConfig(ratios=(1.5,))
    with pytest.raises(PropertyConfigError):
        SampleFidelityConfig(n_samples=0)


# --- P6 -------------------------------------------------------------------

def test_p6_pairwise_stability(catalog):
    runner = EntityStability()
    result = runner.run(
        (cached_model("bert"), cached_model("t5")),
        catalog,
        EntityStabilityConfig(k=5),
    )
    assert result.model_name == "bert|t5"
    for domain in catalog.domains():
        value = result.scalars[f"stability/{domain}"]
        assert 0.0 <= value <= 1.0
    assert 0.0 <= result.scalars["stability/overall"] <= 1.0


def test_p6_self_stability_is_one(catalog):
    result = EntityStability().run(
        (cached_model("bert"), cached_model("bert")),
        catalog,
        EntityStabilityConfig(k=5),
    )
    assert result.scalars["stability/overall"] == 1.0


def test_p6_rejects_entityless_model(catalog):
    with pytest.raises(PropertyConfigError):
        EntityStability().run(
            (cached_model("bert"), cached_model("tabert")), catalog
        )


def test_p6_unknown_domain(catalog):
    with pytest.raises(PropertyConfigError):
        EntityStability().run(
            (cached_model("bert"), cached_model("t5")),
            catalog,
            EntityStabilityConfig(k=3, domains=("astrology",)),
        )


def test_p6_pairwise_matrix(catalog):
    models = [cached_model("bert"), cached_model("t5")]
    matrix = EntityStability.pairwise_matrix(
        models, catalog, "movies", EntityStabilityConfig(k=5)
    )
    assert matrix.shape == (2, 2)
    assert np.allclose(np.diag(matrix), 1.0)
    assert matrix[0, 1] == matrix[1, 0]


# --- P7 -------------------------------------------------------------------

def test_p7_outputs(small_corpus):
    suite = PerturbationSuite(small_corpus)
    result = PerturbationRobustness().run(cached_model("bert"), suite)
    assert "schema-synonym/cosine" in result.distributions
    assert "mean/schema-synonym" in result.scalars
    assert result.distributions["schema-synonym/cosine"].maximum <= 1.0


def test_p7_doduo_exactly_invariant(small_corpus):
    """DODUO ignores schemas: all similarities are exactly 1."""
    suite = PerturbationSuite(small_corpus)
    result = PerturbationRobustness().run(cached_model("doduo"), suite)
    stats = result.distributions["schema-synonym/cosine"]
    assert stats.minimum == pytest.approx(1.0, abs=1e-9)
    assert stats.maximum == pytest.approx(1.0, abs=1e-9)


def test_p7_config_validation():
    with pytest.raises(PropertyConfigError):
        PerturbationConfig(kinds=())


# --- P8 -------------------------------------------------------------------

def test_p8_outputs(sotab_corpus):
    result = HeterogeneousContext().run(cached_model("bert"), sotab_corpus)
    families = {k.split("/")[0] for k in result.distributions}
    assert families == {"textual", "non_textual"}
    for stats in result.distributions.values():
        assert -1.0 <= stats.minimum <= stats.maximum <= 1.0


def test_p8_context_projection_entire_table(sotab_corpus):
    table = sotab_corpus[0]
    projected, inner = context_projection(table, 1, ContextSetting.ENTIRE_TABLE)
    assert projected is table and inner == 1


def test_p8_context_projection_neighbors(sotab_corpus):
    table = sotab_corpus[0]
    projected, inner = context_projection(table, 0, ContextSetting.NEIGHBORING_COLUMNS)
    assert projected.num_columns == 2  # leftmost column has one neighbour
    assert projected.header[inner] == table.header[0]
    middle, inner_mid = context_projection(table, 1, ContextSetting.NEIGHBORING_COLUMNS)
    assert middle.num_columns == 3
    assert middle.header[inner_mid] == table.header[1]


def test_p8_context_projection_subject(sotab_corpus):
    table = sotab_corpus[0]
    target = table.num_columns - 1
    projected, inner = context_projection(table, target, ContextSetting.SUBJECT_COLUMN)
    assert projected.num_columns == 2
    assert projected.header[inner] == table.header[target]


def test_p8_config_validation():
    with pytest.raises(PropertyConfigError):
        ContextConfig(settings=())
