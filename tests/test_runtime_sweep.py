"""Tests for Observatory.sweep, skip recording, and runtime determinism.

The suite passes under either sweep engine: CI runs it once with the
default thread engine and once with ``REPRO_SWEEP_EXECUTION=process``, so
every assertion here holds for both (engine-specific behaviour lives in
``tests/test_runtime_process_sweep.py``).
"""

import os

import pytest

from repro import Observatory, RuntimeConfig
from repro.analysis.report import render_sweep, sweep_matrix
from repro.core.framework import DatasetSizes
from repro.core.results import ModelCharacterizations, SkippedCell
from repro.errors import ObservatoryError
from repro.runtime.cache import CacheStats

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
PROPS = ["row_order_insignificance", "sample_fidelity"]


def make_observatory(**runtime_kwargs) -> Observatory:
    return Observatory(seed=3, sizes=SIZES, runtime=RuntimeConfig(**runtime_kwargs))


@pytest.fixture(scope="module")
def sweep():
    return make_observatory().sweep(["bert", "taptap"], PROPS, max_workers=1)


class TestSweep:
    def test_cells_and_skips(self, sweep):
        ran = {(c.model_name, c.property_name) for c in sweep.cells}
        assert ("bert", "row_order_insignificance") in ran
        assert ("bert", "sample_fidelity") in ran
        # taptap only embeds rows: P1 runs (row level), P5 cannot.
        assert ("taptap", "row_order_insignificance") in ran
        skipped = {(s.model_name, s.property_name) for s in sweep.skipped}
        assert ("taptap", "sample_fidelity") in skipped
        reason = next(s.reason for s in sweep.skipped)
        assert "column" in reason

    def test_lookup_and_structure(self, sweep):
        result = sweep.get("bert", "sample_fidelity")
        assert result is not None and result.model_name == "bert"
        assert sweep.get("bert", "nope") is None
        assert sweep.model_names[0] == "bert"
        assert sweep.property_names == PROPS
        as_dict = sweep.to_dict()
        assert len(as_dict["cells"]) == len(sweep.cells)
        assert as_dict["cache"]["hits"] == sweep.cache_stats.hits
        assert as_dict["execution"] == os.environ.get(
            "REPRO_SWEEP_EXECUTION", "thread"
        )
        assert "SweepResult" in repr(sweep)

    def test_cache_stats_is_typed(self, sweep):
        # SweepResult.cache_stats is a real CacheStats, not Optional[object]:
        # counters and derived rates are part of the structured result.
        assert isinstance(sweep.cache_stats, CacheStats)
        assert sweep.cache_stats.requests == (
            sweep.cache_stats.hits + sweep.cache_stats.misses
        )
        assert set(sweep.cache_stats.to_dict()) >= {
            "hits",
            "misses",
            "disk_evictions",
            "disk_drops",
            "hit_rate",
        }

    def test_entity_stability_recorded_not_run(self):
        sweep = make_observatory().sweep(
            ["bert"], ["entity_stability"], max_workers=1
        )
        assert not sweep.cells
        assert sweep.skipped[0].reason.startswith("pairwise property")

    def test_empty_inputs_rejected(self):
        obs = make_observatory()
        with pytest.raises(ObservatoryError):
            obs.sweep([], PROPS)
        with pytest.raises(ObservatoryError):
            obs.sweep(["bert"], [])

    def test_deterministic_across_worker_counts(self):
        outcomes = []
        for workers in (1, 3):
            sweep = make_observatory().sweep(["bert", "t5"], PROPS, max_workers=workers)
            outcomes.append(
                {
                    (c.model_name, c.property_name): c.result.to_dict()
                    for c in sweep.cells
                }
            )
        assert outcomes[0] == outcomes[1]

    def test_matches_sequential_uncached_characterize(self):
        sweep = make_observatory().sweep(["bert"], PROPS, max_workers=2)
        baseline = make_observatory(enabled=False)
        for prop in PROPS:
            expected = baseline.characterize("bert", prop).to_dict()
            assert sweep.get("bert", prop).to_dict() == expected

    def test_cache_effective_within_sweep(self, sweep):
        assert sweep.cache_stats is not None
        assert sweep.cache_stats.requests > 0
        # A second sweep over the same matrix is served from cache.
        obs = make_observatory()
        obs.sweep(["bert"], PROPS, max_workers=1)
        misses = obs.cache.stats.misses
        obs.sweep(["bert"], PROPS, max_workers=1)
        assert obs.cache.stats.misses == misses


class TestRendering:
    def test_render_sweep(self, sweep):
        text = render_sweep(sweep)
        assert "| model |" in text and "bert" in text
        assert "Skipped cells:" in text
        assert "hit rate" in text

    def test_sweep_matrix_values(self, sweep):
        matrix = sweep_matrix(sweep)
        assert matrix["bert"]["sample_fidelity"] is not None
        assert matrix["taptap"]["sample_fidelity"] is None


class TestCharacterizeModels:
    def test_records_skips(self):
        obs = make_observatory()
        results = obs.characterize_models(["bert", "taptap"], "sample_fidelity")
        assert isinstance(results, ModelCharacterizations)
        assert [r.model_name for r in results] == ["bert"]  # list behavior intact
        assert results.skipped == [
            SkippedCell("taptap", "sample_fidelity", "model exposes no column embeddings")
        ]
        assert "1 skipped" in repr(results)

    def test_no_skips_for_supported_models(self):
        obs = make_observatory()
        results = obs.characterize_models(["bert"], "row_order_insignificance")
        assert len(results) == 1 and results.skipped == []


def test_dataset_sizes_row_bounds_validated():
    with pytest.raises(ValueError):
        DatasetSizes(min_rows=15)  # lone bound would fight generator defaults
    with pytest.raises(ValueError):
        DatasetSizes(max_rows=4)
    with pytest.raises(ValueError):
        DatasetSizes(min_rows=9, max_rows=4)
    assert DatasetSizes(min_rows=15, max_rows=20).row_range_kwargs() == {
        "min_rows": 15,
        "max_rows": 20,
    }
    assert DatasetSizes().row_range_kwargs() == {}


def test_disk_cache_reused_across_observatories(tmp_path):
    disk = str(tmp_path / "emb")
    first = Observatory(
        seed=3, sizes=SIZES, runtime=RuntimeConfig(disk_cache_dir=disk)
    )
    first.characterize("bert", "row_order_insignificance")
    second = Observatory(
        seed=3, sizes=SIZES, runtime=RuntimeConfig(disk_cache_dir=disk)
    )
    result = second.characterize("bert", "row_order_insignificance")
    assert second.cache.stats.disk_hits > 0
    expected = first.characterize("bert", "row_order_insignificance")
    assert result.to_dict() == expected.to_dict()
