"""Crash-injection tests for column-index persistence.

Mirrors the disk-cache crash-safety suite: every scenario must leave the
index either fully recovered or smaller-but-correct — a reopened index
never serves wrong neighbours.  Correctness after recovery is always
asserted against a brute-force oracle rebuilt over the *surviving* keys.
"""

import glob
import json
import os
import pickle
import time

import numpy as np
import pytest

from repro.downstream.join_discovery import JoinDiscoveryIndex
from repro.errors import ColumnIndexError
from repro.index import ColumnIndex
from repro.index.store import LOCK_NAME, MANIFEST_NAME

DIM = 6
N = 40


@pytest.fixture()
def corpus():
    rng = np.random.default_rng(99)
    keys = [f"col{i}" for i in range(N)]
    rows = rng.normal(size=(N, DIM))
    return keys, rows


def build(tmp_path, keys, rows, shard_rows=10):
    return ColumnIndex.build(
        str(tmp_path / "idx"), zip(keys, rows), dim=DIM, shard_rows=shard_rows
    )


def shard_matrices(directory):
    return sorted(
        p
        for p in glob.glob(os.path.join(directory, "shard-*.npy"))
        if not p.endswith(".norms.npy")
    )


def assert_matches_oracle(index, keys, rows, query, k):
    """Recovered index == oracle over exactly the keys it still serves."""
    alive = set(index.keys())
    oracle = JoinDiscoveryIndex(DIM)
    for key, row in zip(keys, rows):
        if key in alive:
            oracle.add(key, ColumnIndex.quantize(row))
    assert index.query(query, k, prune="off") == oracle.lookup(query, k)


def test_torn_shard_is_dropped_never_served(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    query = rows[0] + 0.1
    victim = shard_matrices(index.directory)[1]
    with open(victim, "rb") as handle:
        payload = handle.read()
    with open(victim, "wb") as handle:
        handle.write(payload[: len(payload) // 2])

    reopened = ColumnIndex.open(index.directory)
    assert reopened.dropped_shards == 1
    assert len(reopened) == N - 10
    # The torn shard held keys col10..col19: none may ever be returned.
    torn = {f"col{i}" for i in range(10, 20)}
    assert not torn & set(reopened.keys())
    assert_matches_oracle(reopened, keys, rows, query, k=8)
    assert not os.path.exists(victim)


def test_bitflip_same_size_is_caught_by_digest(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    victim = shard_matrices(index.directory)[2]
    with open(victim, "r+b") as handle:
        handle.seek(256)
        byte = handle.read(1)
        handle.seek(256)
        handle.write(bytes([byte[0] ^ 0xFF]))

    reopened = ColumnIndex.open(index.directory)
    assert reopened.dropped_shards == 1
    assert len(reopened) == N - 10
    assert_matches_oracle(reopened, keys, rows, rows[3], k=5)


def test_missing_manifest_rebuilds_from_directory_scan(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    want = index.query(rows[7], 9, prune="off")
    os.unlink(os.path.join(index.directory, MANIFEST_NAME))

    reopened = ColumnIndex.open(index.directory)
    assert len(reopened) == N
    assert reopened.keys() == keys  # shard stems sort by sequence number
    assert reopened.query(rows[7], 9, prune="off") == want


def test_garbage_manifest_rebuilds(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    want = index.query(rows[2], 6, prune="off")
    with open(os.path.join(index.directory, MANIFEST_NAME), "w") as handle:
        handle.write("{not json at all")

    reopened = ColumnIndex.open(index.directory)
    assert len(reopened) == N
    assert reopened.query(rows[2], 6, prune="off") == want


def test_manifest_rebuild_skips_torn_shard(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    victim = shard_matrices(index.directory)[0]
    with open(victim, "wb") as handle:
        handle.write(b"\x93NUMPY garbage")
    os.unlink(os.path.join(index.directory, MANIFEST_NAME))

    reopened = ColumnIndex.open(index.directory)
    assert len(reopened) == N - 10
    assert not {f"col{i}" for i in range(10)} & set(reopened.keys())
    assert_matches_oracle(reopened, keys, rows, rows[25], k=7)


def test_missing_keys_sidecar_drops_shard(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    victim = shard_matrices(index.directory)[3].replace(".npy", ".keys.json")
    os.unlink(victim)

    reopened = ColumnIndex.open(index.directory)
    assert reopened.dropped_shards == 1
    assert len(reopened) == N - 10
    assert_matches_oracle(reopened, keys, rows, rows[0], k=4)


def test_stale_lock_is_reclaimed(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    lock = os.path.join(index.directory, LOCK_NAME)
    with open(lock, "w") as handle:
        handle.write("424242")
    past = time.time() - 3600
    os.utime(lock, (past, past))

    index.append("late", np.ones(DIM))  # must not deadlock
    assert len(index) == N + 1
    assert not os.path.exists(lock)


def test_stale_temp_swept_fresh_temp_kept(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    stale = os.path.join(index.directory, ".tmp-deadbeef")
    fresh = os.path.join(index.directory, ".tmp-cafebabe")
    for path in (stale, fresh):
        with open(path, "wb") as handle:
            handle.write(b"partial write")
    past = time.time() - 3600
    os.utime(stale, (past, past))

    ColumnIndex.open(index.directory)
    assert not os.path.exists(stale)
    assert os.path.exists(fresh)  # a live appender may still own it


def test_orphan_shard_files_swept_after_crash(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    # A crashed appender renamed its files but died before the manifest
    # published them: orphaned shard files the manifest never references.
    orphan = os.path.join(index.directory, "shard-000099-deadbeef.npy")
    np.save(orphan, np.ones((3, DIM), dtype=np.float32))
    past = time.time() - 3600
    os.utime(orphan, (past, past))

    reopened = ColumnIndex.open(index.directory)
    assert not os.path.exists(orphan)
    assert len(reopened) == N


def test_corrupt_partition_plan_rebuilds_transparently(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    exact = index.query(rows[5], 5, prune="off")
    index.query(rows[5], 5, prune="bound")  # persists the plan
    plans = glob.glob(os.path.join(index.directory, "partitions-*.npz"))
    assert plans
    with open(plans[0], "wb") as handle:
        handle.write(b"not an npz")

    reopened = ColumnIndex.open(index.directory)
    bound = reopened.query(rows[5], 5, prune="bound")
    assert [key for key, _ in bound] == [key for key, _ in exact]


def test_stale_generation_partition_plan_is_swept(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    index.query(rows[1], 3, prune="probe")  # persists plan for current gen
    old_plans = glob.glob(os.path.join(index.directory, "partitions-*.npz"))
    index.append("extra", np.ones(DIM))  # bumps generation

    reopened = ColumnIndex.open(index.directory)
    for plan in old_plans:
        assert not os.path.exists(plan)
    # Pruned queries over the new generation still work (fresh plan).
    got = reopened.query(rows[1], 3, prune="bound")
    assert [key for key, _ in got] == [
        key for key, _ in reopened.query(rows[1], 3, prune="off")
    ]


def test_unpickled_index_replays_verification(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    blob = pickle.dumps(index)
    victim = shard_matrices(index.directory)[1]
    with open(victim, "wb") as handle:
        handle.write(b"torn after pickling")

    clone = pickle.loads(blob)
    assert clone.dropped_shards == 1
    assert len(clone) == N - 10
    assert_matches_oracle(clone, keys, rows, rows[30], k=6)


def test_keys_tamper_with_wrong_count_is_dropped(tmp_path, corpus):
    keys, rows = corpus
    index = build(tmp_path, keys, rows)
    victim = shard_matrices(index.directory)[0].replace(".npy", ".keys.json")
    with open(victim, "w") as handle:
        json.dump({"keys": ["only-one"]}, handle)

    reopened = ColumnIndex.open(index.directory)
    assert reopened.dropped_shards == 1
    assert "only-one" not in set(reopened.keys())
    assert_matches_oracle(reopened, keys, rows, rows[12], k=5)


def test_empty_directory_requires_create(tmp_path):
    with pytest.raises(ColumnIndexError, match="no column index"):
        ColumnIndex.open(str(tmp_path / "void"))
    with pytest.raises(ColumnIndexError, match="positive dim"):
        ColumnIndex(str(tmp_path / "void"), create=True)
