"""Tests for the embedding planner/executor and batched model paths."""

import numpy as np
import pytest

from repro.core.levels import EmbeddingLevel
from repro.relational.table import Table
from repro.runtime.cache import EmbeddingCache
from repro.runtime.planner import EmbeddingExecutor, RuntimeConfig, as_executor
from tests.conftest import cached_model


@pytest.fixture()
def tables():
    out = []
    for i in range(5):
        n = 3 + i % 3
        out.append(
            Table.from_columns(
                [
                    ("name", [f"item {j * 3 + i}" for j in range(n)]),
                    ("price", [j + 10 * i for j in range(n)]),
                ],
                table_id=f"planner-{i}",
            )
        )
    return out


LEVELS = (EmbeddingLevel.COLUMN, EmbeddingLevel.ROW, EmbeddingLevel.TABLE)


class TestBundledLevels:
    def test_bundle_matches_dedicated_methods(self, bert, tables):
        for table in tables:
            bundle = bert.embed_levels(table, LEVELS)
            assert np.array_equal(bundle[EmbeddingLevel.COLUMN], bert.embed_columns(table))
            assert np.array_equal(bundle[EmbeddingLevel.ROW], bert.embed_rows(table))
            assert np.array_equal(bundle[EmbeddingLevel.TABLE], bert.embed_table(table))

    def test_batch_matches_dedicated_methods(self, tables):
        # Cover stacked serializations and the CLS-anchor aggregate.
        for name in ("bert", "doduo", "tabert"):
            model = cached_model(name)
            bundles = model.embed_levels_batch(
                tables, [(EmbeddingLevel.COLUMN,)] * len(tables), batch_size=4
            )
            for table, bundle in zip(tables, bundles):
                assert np.array_equal(
                    bundle[EmbeddingLevel.COLUMN], model.embed_columns(table)
                )

    def test_encode_batch_bit_identical(self, bert, tables):
        token_lists = [
            bert._serializer.serialize(bert._effective_table(t)) for t in tables
        ]
        # Duplicate lists so same-length groups actually form batches.
        token_lists = token_lists + token_lists
        single = [bert.encoder.encode(toks) for toks in token_lists]
        batched = bert.encoder.encode_batch(token_lists, batch_size=4)
        for a, b in zip(single, batched):
            assert np.array_equal(a, b)

    def test_value_columns_batch_matches_single(self, bert, tables):
        requests = []
        for table in tables:
            for col in range(table.num_columns):
                requests.append((table.header[col], table.column_values(col)))
        batch = bert.embed_value_columns_batch(requests, batch_size=4)
        for (header, values), emb in zip(requests, batch):
            assert np.array_equal(emb, bert.embed_value_column(header, values))

    def test_row_template_model_batches_via_fallback(self, taptap, tables):
        bundles = taptap.embed_levels_batch(
            tables[:2], [(EmbeddingLevel.ROW,)] * 2
        )
        for table, bundle in zip(tables, bundles):
            assert np.array_equal(bundle[EmbeddingLevel.ROW], taptap.embed_rows(table))

    def test_row_template_bundle_honors_requested_levels(self, tables):
        from repro.errors import ModelError, UnsupportedLevelError
        from repro.models.base import SurrogateModel
        from repro.models.config import ModelConfig, Serialization
        from repro.models.zoo.taptap import CONFIG

        # A ROW_TEMPLATE config that *claims* table support: the bundle
        # must fail like embed_table does, never return a wrong level.
        claiming = SurrogateModel(
            ModelConfig(
                name="rt-claims-table",
                serialization=Serialization.ROW_TEMPLATE,
                levels=frozenset({EmbeddingLevel.ROW, EmbeddingLevel.TABLE}),
            )
        )
        with pytest.raises(ModelError):
            claiming.embed_levels(tables[0], (EmbeddingLevel.TABLE,))
        # And the honest taptap config rejects it at the support check.
        with pytest.raises(UnsupportedLevelError):
            SurrogateModel(CONFIG).embed_levels(tables[0], (EmbeddingLevel.TABLE,))


class TestExecutor:
    def test_passthrough_surface(self, bert, tables):
        executor = as_executor(bert)
        assert executor.name == bert.name and executor.dim == bert.dim
        assert executor.supports(EmbeddingLevel.COLUMN)
        assert as_executor(executor) is executor
        table = tables[0]
        assert np.array_equal(executor.embed_columns(table), bert.embed_columns(table))
        assert np.array_equal(executor.embed_rows(table), bert.embed_rows(table))
        assert np.array_equal(executor.embed_table(table), bert.embed_table(table))

    def test_deduplicates_identical_tables(self, bert, tables):
        cache = EmbeddingCache(max_entries=64)
        executor = EmbeddingExecutor(bert, cache=cache)
        table = tables[0]
        clone = Table.from_columns(
            [
                (table.header[c], table.column_values(c))
                for c in range(table.num_columns)
            ],
            table_id=table.table_id,
        )
        bundles = executor.embed_levels_many([table, clone, table], LEVELS)
        # One unique fingerprint: three misses (one per level) on first
        # sight, everything else served from the same slot.
        assert cache.stats.puts == len(LEVELS)
        for level in LEVELS:
            assert np.array_equal(bundles[0][level], bundles[2][level])

    def test_cache_hits_across_calls(self, bert, tables):
        cache = EmbeddingCache(max_entries=64)
        executor = EmbeddingExecutor(bert, cache=cache)
        executor.embed_levels_many(tables, LEVELS)
        misses_after_first = cache.stats.misses
        again = executor.embed_levels_many(tables, LEVELS)
        assert cache.stats.misses == misses_after_first  # pure hits
        assert cache.stats.hits >= len(tables) * len(LEVELS)
        for table, bundle in zip(tables, again):
            assert np.array_equal(bundle[EmbeddingLevel.COLUMN], bert.embed_columns(table))

    def test_cached_results_identical_to_uncached(self, bert, tables):
        cached = EmbeddingExecutor(bert, cache=EmbeddingCache(max_entries=64))
        naive = EmbeddingExecutor(bert, naive=True)
        for _ in range(2):  # second pass exercises hits
            a = cached.embed_levels_many(tables, LEVELS)
            b = naive.embed_levels_many(tables, LEVELS)
            for bundle_a, bundle_b in zip(a, b):
                for level in LEVELS:
                    assert np.array_equal(bundle_a[level], bundle_b[level])

    def test_value_columns_dedup_and_cache(self, bert):
        cache = EmbeddingCache(max_entries=64)
        executor = EmbeddingExecutor(bert, cache=cache)
        requests = [("h", [1, 2, 3]), ("h", [1, 2, 3]), ("g", ["a", "b"])]
        first = executor.embed_value_columns(requests)
        assert np.array_equal(first[0], first[1])
        assert cache.stats.puts == 2  # two unique requests
        executor.embed_value_columns(requests)
        assert cache.stats.hits >= 2

    def test_embed_cells_and_entities_cached(self, bert, tables):
        cache = EmbeddingCache(max_entries=64)
        executor = EmbeddingExecutor(bert, cache=cache)
        table = tables[0]
        coords = [(0, 0), (1, 1)]
        first = executor.embed_cells(table, coords)
        second = executor.embed_cells(table, coords)
        assert set(first) == set(second)
        assert cache.stats.hits >= 1

    def test_unknown_level_rejected(self, bert, tables):
        executor = as_executor(bert)
        with pytest.raises(ValueError):
            executor.embed_levels_many(tables[:1], (EmbeddingLevel.CELL,))

    def test_generic_model_fallback(self, tables):
        class Minimal:
            """Duck-typed model without any batch capability."""

            name = "minimal"
            dim = 4

            def supports(self, level):
                return level == EmbeddingLevel.COLUMN

            def supported_levels(self):
                return frozenset({EmbeddingLevel.COLUMN})

            def embed_columns(self, table):
                return np.ones((table.num_columns, 4))

        executor = EmbeddingExecutor(Minimal(), cache=EmbeddingCache(max_entries=8))
        bundles = executor.embed_levels_many(tables[:2], (EmbeddingLevel.COLUMN,))
        assert bundles[0][EmbeddingLevel.COLUMN].shape == (2, 4)


class TestRuntimeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(batch_size=0)
        with pytest.raises(ValueError):
            RuntimeConfig(cache_entries=0)
        with pytest.raises(ValueError):
            RuntimeConfig(max_workers=0)

    def test_build_cache_respects_enabled(self, tmp_path):
        assert RuntimeConfig(enabled=False).build_cache() is None
        cache = RuntimeConfig(disk_cache_dir=str(tmp_path / "c")).build_cache()
        assert isinstance(cache, EmbeddingCache)
        assert (tmp_path / "c").is_dir()


def test_tokenizer_memoization_transparent(bert):
    tokenizer = bert.tokenizer
    cold = tokenizer._tokenize_uncached("Grand Slam titles 2019")
    warm = tokenizer.tokenize("Grand Slam titles 2019")
    again = tokenizer.tokenize("Grand Slam titles 2019")
    assert cold == warm == again
    assert warm is not again  # callers get fresh lists, not the cached one
