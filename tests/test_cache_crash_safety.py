"""Crash-safety tests for the disk cache tier.

Simulates torn writes, corrupted payloads, broken indexes, leftover temp
files, and abandoned locks, and asserts the cache always recovers by
dropping the bad entry and recomputing — never by returning wrong
embeddings or raising out of a property runner.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import Observatory, RuntimeConfig
from repro.core.framework import DatasetSizes
from repro.runtime.disk import INDEX_NAME, LOCK_NAME, DiskTier


def entry_paths(directory):
    return [
        os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.endswith(".npy") and not name.startswith(".tmp-")
    ]


@pytest.fixture()
def tier(tmp_path):
    return DiskTier(str(tmp_path))


class TestCorruptPayloads:
    def test_garbage_payload_dropped_not_served(self, tmp_path, tier):
        tier.put("k", np.arange(4.0))
        with open(entry_paths(str(tmp_path))[0], "wb") as handle:
            handle.write(b"this is not a npy file")
        assert tier.get("k") is None
        assert tier.drops == 1
        assert entry_paths(str(tmp_path)) == []  # file and index entry gone
        assert tier.put("k", np.arange(4.0))  # recompute path works
        assert np.array_equal(tier.get("k"), np.arange(4.0))

    def test_truncated_payload_dropped(self, tmp_path, tier):
        tier.put("k", np.arange(64.0))
        path = entry_paths(str(tmp_path))[0]
        with open(path, "r+b") as handle:
            handle.truncate(20)  # torn mid-write
        assert tier.get("k") is None
        assert tier.drops == 1

    def test_size_mismatch_with_index_dropped(self, tmp_path, tier):
        # A payload swapped for a *loadable* file of the wrong size must
        # not be served: the index records the bytes written.
        tier.put("k", np.arange(64.0))
        np.save(entry_paths(str(tmp_path))[0], np.arange(4.0))
        assert tier.get("k") is None
        assert tier.drops == 1

    def test_missing_payload_is_a_miss(self, tmp_path, tier):
        tier.put("k", np.ones(3))
        os.unlink(entry_paths(str(tmp_path))[0])
        assert tier.get("k") is None


class TestBrokenIndex:
    def test_garbage_index_rebuilt_from_directory(self, tmp_path, tier):
        tier.put("k", np.full(5, 7.0))
        with open(tmp_path / INDEX_NAME, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        fresh = DiskTier(str(tmp_path))
        assert np.array_equal(fresh.get("k"), np.full(5, 7.0))

    def test_torn_index_write_rebuilt(self, tmp_path, tier):
        tier.put("k", np.ones(6))
        payload = (tmp_path / INDEX_NAME).read_text(encoding="utf-8")
        (tmp_path / INDEX_NAME).write_text(payload[: len(payload) // 2])
        assert np.array_equal(DiskTier(str(tmp_path)).get("k"), np.ones(6))

    def test_version_mismatch_rebuilt(self, tmp_path, tier):
        tier.put("k", np.ones(2))
        with open(tmp_path / INDEX_NAME, "w", encoding="utf-8") as handle:
            json.dump({"index_version": 999, "entries": {}}, handle)
        assert DiskTier(str(tmp_path)).get("k") is not None

    def test_index_listing_missing_file_recovers(self, tmp_path, tier):
        tier.put("gone", np.ones(4))
        tier.put("kept", np.full(4, 2.0))
        for path in entry_paths(str(tmp_path)):
            os.unlink(path)  # crash lost the payloads, index survived
        fresh = DiskTier(str(tmp_path))
        assert fresh.get("gone") is None
        assert fresh.get("kept") is None  # miss, not wrong data / raise
        assert fresh.put("kept", np.full(4, 2.0))
        assert np.array_equal(fresh.get("kept"), np.full(4, 2.0))


class TestTempFilesAndLocks:
    def test_fresh_temp_file_left_alone(self, tmp_path, tier):
        # A concurrent writer's in-flight temp must not be swept.
        tier.put("seed", np.ones(2))
        temp = tmp_path / ".tmp-inflight.npy"
        temp.write_bytes(b"partial")
        os.unlink(tmp_path / INDEX_NAME)  # force a rebuild scan
        tier.put("k", np.ones(2))
        assert temp.exists()

    def test_stale_temp_file_swept_on_rebuild(self, tmp_path):
        tier = DiskTier(str(tmp_path), stale_lock_age=0.05)
        tier.put("seed", np.ones(2))
        os.unlink(tmp_path / INDEX_NAME)  # lost index forces a rebuild scan
        temp = tmp_path / ".tmp-crashed.npy"
        temp.write_bytes(b"partial")
        past = time.time() - 60
        os.utime(temp, (past, past))
        tier.put("k", np.ones(2))  # rebuild sweeps the long-dead temp
        assert not temp.exists()
        assert np.array_equal(tier.get("k"), np.ones(2))

    def test_stale_lock_reclaimed(self, tmp_path):
        tier = DiskTier(str(tmp_path), stale_lock_age=0.05, lock_timeout=5.0)
        lock = tmp_path / LOCK_NAME
        lock.write_text("99999")  # crashed holder
        past = time.time() - 60
        os.utime(lock, (past, past))
        assert tier.put("k", np.ones(2))
        assert not lock.exists()

    def test_wedged_fresh_lock_reclaimed_after_timeout(self, tmp_path):
        tier = DiskTier(str(tmp_path), stale_lock_age=60.0, lock_timeout=0.1)
        (tmp_path / LOCK_NAME).write_text("99999")  # holder never returns
        started = time.time()
        assert tier.put("k", np.ones(2))
        assert time.time() - started >= 0.1


class TestPropertyRunnerRecovery:
    SIZES = DatasetSizes(
        wikitables_tables=3,
        n_permutations=4,
        min_rows=4,
        max_rows=6,
    )

    def make(self, disk):
        return Observatory(
            seed=3, sizes=self.SIZES, runtime=RuntimeConfig(disk_cache_dir=disk)
        )

    def test_corrupted_cache_recomputes_identical_results(self, tmp_path):
        disk = str(tmp_path / "emb")
        baseline = self.make(None).characterize("bert", "row_order_insignificance")
        self.make(disk).characterize("bert", "row_order_insignificance")
        for path in entry_paths(disk):  # corrupt every cached embedding
            with open(path, "r+b") as handle:
                handle.truncate(8)
        recovered = self.make(disk)
        result = recovered.characterize("bert", "row_order_insignificance")
        assert result.to_dict() == baseline.to_dict()  # never wrong numbers
        assert recovered.cache.stats.disk_drops > 0
        # ...and the corrupt entries were replaced with good ones.
        again = self.make(disk)
        rerun = again.characterize("bert", "row_order_insignificance")
        assert rerun.to_dict() == baseline.to_dict()
        assert again.cache.stats.disk_hits > 0

    def test_corrupted_index_recomputes_identical_results(self, tmp_path):
        disk = str(tmp_path / "emb")
        first = self.make(disk).characterize("bert", "row_order_insignificance")
        with open(os.path.join(disk, INDEX_NAME), "w", encoding="utf-8") as handle:
            handle.write("garbage{{{")
        result = self.make(disk).characterize("bert", "row_order_insignificance")
        assert result.to_dict() == first.to_dict()
