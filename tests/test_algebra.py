"""Tests for the relational-algebra operators."""

import pytest

from repro.errors import TableError
from repro.relational.algebra import (
    distinct,
    group_by,
    hash_join,
    project,
    select,
    select_eq,
    semi_join,
    sort_by,
    union,
)
from repro.relational.table import Table


@pytest.fixture()
def players():
    return Table.from_columns(
        [
            ("player", ["Federer", "Nadal", "Djokovic", "Murray"]),
            ("country", ["Switzerland", "Spain", "Serbia", "United Kingdom"]),
            ("titles", [103, 92, 94, 46]),
        ],
        table_id="players",
    )


@pytest.fixture()
def countries():
    return Table.from_columns(
        [
            ("country", ["Switzerland", "Spain", "Serbia", "France"]),
            ("continent", ["Europe", "Europe", "Europe", "Europe"]),
        ],
        table_id="countries",
    )


def test_select(players):
    out = select(players, lambda row: row[2] > 90)
    assert out.num_rows == 3
    assert players.num_rows == 4  # pure


def test_select_eq(players):
    out = select_eq(players, "country", "Spain")
    assert out.num_rows == 1
    assert out.cell(0, 0) == "Nadal"


def test_project(players):
    out = project(players, ["titles", "player"])
    assert out.header == ["titles", "player"]
    assert out.cell(0, 0) == 103


def test_distinct():
    table = Table.from_columns([("x", ["a", "b", "a", "a"])])
    assert distinct(table).num_rows == 2


def test_union(players):
    doubled = union(players, players)
    assert doubled.num_rows == players.num_rows  # set semantics
    with pytest.raises(TableError):
        union(players, project(players, ["player"]))


def test_inner_join(players, countries):
    joined = hash_join(players, countries, "country", "country")
    assert joined.num_rows == 3  # Murray has no match
    assert joined.header == ["player", "country", "titles", "continent"]
    row = {joined.cell(r, 0): joined.cell(r, 3) for r in range(joined.num_rows)}
    assert row["Federer"] == "Europe"


def test_left_join_pads(players, countries):
    joined = hash_join(players, countries, "country", "country", how="left")
    assert joined.num_rows == 4
    murray = [r for r in range(4) if joined.cell(r, 0) == "Murray"][0]
    assert joined.cell(murray, 3) is None


def test_join_duplicate_matches(countries):
    cities = Table.from_columns(
        [("city", ["Geneva", "Zurich", "Madrid"]),
         ("country", ["Switzerland", "Switzerland", "Spain"])],
    )
    joined = hash_join(cities, countries, "country", "country")
    assert joined.num_rows == 3


def test_join_name_clash_suffixed(players):
    other = Table.from_columns(
        [("player", ["Federer"]), ("titles", [20])], table_id="other"
    )
    joined = hash_join(players, other, "player", "player")
    assert "titles_right" in joined.header


def test_join_invalid_how(players, countries):
    with pytest.raises(TableError):
        hash_join(players, countries, "country", "country", how="outer")


def test_semi_join(players, countries):
    out = semi_join(players, countries, "country", "country")
    assert out.num_rows == 3
    assert out.header == players.header


def test_group_by_count_and_avg(players, countries):
    joined = hash_join(players, countries, "country", "country")
    grouped = group_by(
        joined,
        ["continent"],
        {"players": ("player", "count"), "avg_titles": ("titles", "avg")},
    )
    assert grouped.num_rows == 1
    assert grouped.cell(0, 1) == 3
    assert grouped.cell(0, 2) == pytest.approx((103 + 92 + 94) / 3)


def test_group_by_min_max_sum(players):
    grouped = group_by(
        players,
        ["country"],
        {"best": ("titles", "max"), "total": ("titles", "sum")},
    )
    assert grouped.num_rows == 4
    assert grouped.header == ["country", "best", "total"]


def test_group_by_unknown_aggregator(players):
    with pytest.raises(TableError):
        group_by(players, ["country"], {"x": ("titles", "median")})


def test_sort_by(players):
    out = sort_by(players, "player")
    assert out.cell(0, 0) == "Djokovic"
    reverse = sort_by(players, "player", descending=True)
    assert reverse.cell(0, 0) == "Nadal"


def test_join_discovered_candidates_actually_join():
    """Close the P3 loop: a high-containment pair joins with high coverage."""
    from repro.data.nextiajd import NextiaJDGenerator

    pairs = NextiaJDGenerator(seed=4).generate_pairs(6)
    best = max(pairs, key=lambda p: p.containment)
    left = Table.from_columns([("key", list(best.query_values))])
    right = Table.from_columns([("key", list(dict.fromkeys(best.candidate_values)))])
    joined = hash_join(left, right, "key", "key")
    coverage = joined.num_rows / left.num_rows
    assert coverage == pytest.approx(
        sum(1 for v in best.query_values if v in set(best.candidate_values))
        / len(best.query_values)
    )
