"""Tests for Spearman's rank correlation (cross-checked against scipy)."""

import pytest

from repro.core.measures.correlation import rankdata, spearman
from repro.errors import MeasureError
from repro.seeding import rng_for

scipy_stats = pytest.importorskip("scipy.stats")


def test_rankdata_simple():
    assert list(rankdata([30, 10, 20])) == [3.0, 1.0, 2.0]


def test_rankdata_ties_get_midranks():
    assert list(rankdata([1, 2, 2, 3])) == [1.0, 2.5, 2.5, 4.0]


def test_perfect_monotone():
    x = [1, 2, 3, 4, 5]
    assert spearman(x, [2, 4, 6, 8, 10]).rho == pytest.approx(1.0)
    assert spearman(x, [10, 8, 6, 4, 2]).rho == pytest.approx(-1.0)
    # Any monotone transform preserves rho = 1.
    assert spearman(x, [v ** 3 for v in x]).rho == pytest.approx(1.0)


def test_matches_scipy_without_ties():
    rng = rng_for("spearman-test", 1)
    x = rng.standard_normal(200)
    y = 0.5 * x + rng.standard_normal(200)
    ours = spearman(x, y)
    theirs = scipy_stats.spearmanr(x, y)
    assert ours.rho == pytest.approx(theirs.statistic, abs=1e-12)
    assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-3)


def test_matches_scipy_with_ties():
    rng = rng_for("spearman-test", 2)
    x = rng.integers(0, 5, size=300).astype(float)
    y = x + rng.integers(0, 3, size=300)
    ours = spearman(x, y)
    theirs = scipy_stats.spearmanr(x, y)
    assert ours.rho == pytest.approx(theirs.statistic, abs=1e-12)
    assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-3)


def test_independent_samples_near_zero():
    rng = rng_for("spearman-test", 3)
    result = spearman(rng.standard_normal(2000), rng.standard_normal(2000))
    assert abs(result.rho) < 0.06
    assert not result.significant


def test_significance_flag():
    x = list(range(100))
    y = [v + 0.1 for v in x]
    assert spearman(x, y).significant


def test_input_validation():
    with pytest.raises(MeasureError):
        spearman([1, 2], [1, 2])  # too short
    with pytest.raises(MeasureError):
        spearman([1, 2, 3], [1, 2])  # length mismatch
    with pytest.raises(MeasureError):
        spearman([1, 1, 1], [1, 2, 3])  # constant variable


def test_rho_bounds():
    rng = rng_for("spearman-test", 4)
    for i in range(10):
        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        result = spearman(x, y)
        assert -1.0 <= result.rho <= 1.0
        assert 0.0 <= result.p_value <= 1.0
