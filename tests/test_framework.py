"""Tests for the Observatory facade, results, and the property registry."""

import pytest

from repro import Observatory
from repro.core.framework import DatasetSizes
from repro.core.properties.base import PropertyRunner
from repro.core.registry import (
    PAPER_ORDER,
    available_properties,
    load_property,
    register_property,
    unregister_property,
)
from repro.core.results import PropertyResult, results_table, scalars_table
from repro.errors import PropertyConfigError


@pytest.fixture(scope="module")
def obs():
    return Observatory(
        seed=1,
        sizes=DatasetSizes(
            wikitables_tables=4,
            spider_databases=2,
            nextiajd_pairs=6,
            sotab_tables=6,
            n_permutations=4,
        ),
    )


def test_registry_has_eight_properties():
    names = available_properties()
    assert len([n for n in names if n in PAPER_ORDER]) == 8
    assert names[0] == "row_order_insignificance"


def test_load_unknown_property():
    with pytest.raises(PropertyConfigError):
        load_property("telepathy")


def test_register_custom_property():
    class Custom(PropertyRunner):
        name = "custom-test-prop"
        def run(self, model, data, **kwargs):
            return PropertyResult(self.name, getattr(model, "name", "m"))

    register_property("custom-test-prop", Custom)
    try:
        assert "custom-test-prop" in available_properties()
        runner = load_property("custom-test-prop")
        assert runner.run(None, None).property_name == "custom-test-prop"
        with pytest.raises(PropertyConfigError):
            register_property("custom-test-prop", Custom)
    finally:
        unregister_property("custom-test-prop")


def test_characterize_defaults(obs):
    result = obs.characterize("bert", "row_order_insignificance")
    assert result.model_name == "bert"
    assert "column/cosine" in result.distributions


def test_characterize_join(obs):
    result = obs.characterize("bert", "join_relationship")
    assert "spearman/multiset_jaccard" in result.scalars


def test_characterize_entity_stability_needs_partner(obs):
    with pytest.raises(PropertyConfigError):
        obs.characterize("bert", "entity_stability")
    result = obs.characterize("bert", "entity_stability", partner_model="t5")
    assert result.model_name == "bert|t5"


def test_characterize_models_skips_unsupported(obs):
    results = obs.characterize_models(
        ["bert", "taptap"], "sample_fidelity"
    )
    assert [r.model_name for r in results] == ["bert"]


def test_model_and_dataset_caching(obs):
    assert obs.model("bert") is obs.model("bert")
    assert obs.wikitables() is obs.wikitables()
    assert obs.sotab() is obs.sotab()


def test_properties_listing(obs):
    assert obs.properties() == available_properties()


def test_result_add_and_lookup():
    result = PropertyResult("p", "m")
    result.add_distribution("x", [1.0, 2.0, 3.0], keep_series=True)
    assert result.distribution("x").median == 2.0
    assert result.series["x"] == [1.0, 2.0, 3.0]
    with pytest.raises(KeyError):
        result.distribution("missing")
    as_dict = result.to_dict()
    assert as_dict["property"] == "p"
    assert "x" in as_dict["distributions"]


def test_results_table_rendering():
    a = PropertyResult("p", "bert")
    a.add_distribution("k", [0.1, 0.2, 0.3])
    b = PropertyResult("p", "t5")
    text = results_table([a, b], "k", title="demo")
    assert "| model |" in text and "bert" in text
    assert "| t5 | - | - | - |" in text


def test_scalars_table_rendering():
    a = PropertyResult("p", "bert", scalars={"s": 0.5})
    text = scalars_table([a], ["s", "missing"])
    assert "0.500" in text and "-" in text
