"""Bit-identity and round-trip suite for the columnar token plane.

Three contracts:

1. **Round-trip** — ``List[Token] ↔ TokenArray`` is lossless for any token
   stream Hypothesis can produce, including anchor detection
   (``is_anchor``), truncation slicing, and the pickle/wire format that
   re-interns piece strings on the receiving side.
2. **Bit-identity** — every production path over ``TokenArray`` (fused
   embedding gather, attention masks, encoding through both backends,
   all seven aggregation reductions) equals the frozen PR 3 per-token
   implementations (:mod:`repro.models.reference_plane`) to the last ulp
   for every serializer × model family; the padded backend stays within
   its pre-existing :data:`PADDED_TOLERANCE`.
3. **No quadratic intermediates** — aggregation never allocates the old
   dense ``(n_levels, n_tokens)`` weight matrices.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.models.token_array as token_array
from repro.models import aggregate, reference_plane
from repro.models.backends import PADDED_TOLERANCE, LocalBackend, PaddedBackend
from repro.models.backends.padded import max_relative_error
from repro.models.config import Serialization
from repro.models.registry import available_models
from repro.models.serializers import (
    ColumnWiseSerializer,
    RowTemplateSerializer,
    RowWiseSerializer,
)
from repro.models.token_array import (
    INTERNER,
    ROLE_ORDER,
    ROLE_TO_ID,
    Token,
    TokenArray,
    TokenArrayBuilder,
    TokenInterner,
    TokenRole,
)
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import CLS, SEP
from tests.conftest import cached_model

# ----------------------------------------------------------------------
# Hypothesis round-trip: Token list <-> TokenArray
# ----------------------------------------------------------------------

_PIECES = st.sampled_from(
    [CLS, SEP, "alpha", "bravo", "##lta", "12", "value", "[ROW]", "[CELL]"]
)

_TOKENS = st.builds(
    Token,
    piece=_PIECES,
    role=st.sampled_from(list(TokenRole)),
    row=st.integers(min_value=-1, max_value=6),
    col=st.integers(min_value=-1, max_value=6),
)

_TOKEN_LISTS = st.lists(_TOKENS, min_size=0, max_size=40)


@settings(deadline=None, max_examples=60)
@given(tokens=_TOKEN_LISTS)
def test_round_trip_tokens_to_array_and_back(tokens):
    ta = TokenArray.from_tokens(tokens)
    assert len(ta) == len(tokens)
    assert ta.tokens() == tokens
    # Indexing materializes the same views iteration does.
    for i in range(len(tokens)):
        assert ta[i] == tokens[i]
    # Equality against the raw list (compat surface).
    assert ta == tokens


@settings(deadline=None, max_examples=60)
@given(tokens=_TOKEN_LISTS, data=st.data())
def test_round_trip_truncation_slicing(tokens, data):
    ta = TokenArray.from_tokens(tokens)
    budget = data.draw(st.integers(min_value=0, max_value=len(tokens) + 3))
    sliced = ta[:budget]
    assert isinstance(sliced, TokenArray)
    assert sliced.tokens() == tokens[:budget]


@settings(deadline=None, max_examples=60)
@given(tokens=_TOKEN_LISTS)
def test_round_trip_anchor_detection(tokens):
    ta = TokenArray.from_tokens(tokens)
    mask = ta.is_anchor
    assert mask.dtype == bool and mask.shape == (len(tokens),)
    assert mask.tolist() == [t.is_anchor for t in tokens]


@settings(deadline=None, max_examples=40)
@given(tokens=_TOKEN_LISTS)
def test_round_trip_pickle_wire_format(tokens):
    ta = TokenArray.from_tokens(tokens)
    clone = pickle.loads(pickle.dumps(ta))
    assert clone.tokens() == tokens
    assert clone.digest() == ta.digest()


@settings(deadline=None, max_examples=40)
@given(tokens=_TOKEN_LISTS)
def test_wire_format_survives_a_fresh_interner(tokens):
    """Simulates crossing a process boundary: the receiving side has a
    different (fresh) interner, so local piece ids differ — the logical
    token stream and the canonical digest must not."""
    ta = TokenArray.from_tokens(tokens)
    wire = ta.to_wire()
    expected = ta.tokens()
    expected_digest = ta.digest()
    original = token_array.INTERNER
    token_array.INTERNER = TokenInterner()
    try:
        rebuilt = TokenArray.from_wire(wire)
        assert rebuilt.tokens() == expected
        assert rebuilt.digest() == expected_digest
    finally:
        token_array.INTERNER = original


def test_wire_format_canonical_across_intern_orders():
    """A receiver whose interner assigned the same pieces in a different
    relative order (any process that serialized other tables first) must
    accept the payload and agree on the digest — the canonical form sorts
    by piece *string*, never by process-local id."""
    tokens = [
        Token("zeta-order-test", TokenRole.VALUE, row=0, col=0),
        Token("alpha-order-test", TokenRole.VALUE, row=0, col=1),
        Token("zeta-order-test", TokenRole.VALUE, row=1, col=0),
    ]
    ta = TokenArray.from_tokens(tokens)  # interns zeta before alpha
    wire = ta.to_wire()
    expected_digest = ta.digest()
    original = token_array.INTERNER
    token_array.INTERNER = TokenInterner()
    try:
        # Receiver saw alpha first: relative id order is reversed.
        token_array.INTERNER.intern("alpha-order-test")
        rebuilt = TokenArray.from_wire(wire)
        assert rebuilt.tokens() == tokens
        assert rebuilt.digest() == expected_digest
    finally:
        token_array.INTERNER = original


def test_wire_format_digest_check_rejects_tampering():
    ta = TokenArray.from_tokens(
        [Token("alpha", TokenRole.VALUE, row=0, col=0), Token(SEP, TokenRole.SPECIAL)]
    )
    wire = ta.to_wire()
    wire["rows"] = np.array([1, -1], dtype=np.int32)
    with pytest.raises(ValueError, match="digest"):
        TokenArray.from_wire(wire)


def test_interner_ids_are_stable_and_shared():
    a = INTERNER.intern("stable-piece-test")
    b = INTERNER.intern("stable-piece-test")
    assert a == b
    assert INTERNER.piece(a) == "stable-piece-test"
    assert INTERNER.id_of("stable-piece-test") == a
    assert INTERNER.id_of("\x00never-interned\x00") == -1


def test_content_matrix_rows_match_legacy_content_vectors():
    """The fused gather reads the exact float64 vectors the per-piece
    cache held: token_vector + anisotropy * global direction."""
    from repro.seeding import token_vector

    dim = 16
    for piece in ("alpha", "bravo", CLS):
        pid = INTERNER.intern(piece)
        expected = token_vector(piece, dim) + token_array.CONTENT_ANISOTROPY * INTERNER.global_direction(dim)
        assert np.array_equal(INTERNER.content_matrix(dim)[pid], expected)


# ----------------------------------------------------------------------
# Serializer equivalence: columnar emit == legacy object emit
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tokenizer():
    return Tokenizer()


@pytest.fixture(scope="module")
def sample_table():
    return Table.from_columns(
        [
            ("name", ["Alice Smith", "Bob Jones", "Carol White", None]),
            ("age", [30, 41, 28, 55]),
            ("city", ["Paris", "Lima", "Oslo", "Rome"]),
        ],
        caption="people of note",
        table_id="token-array-test",
    )


def serializer_variants(tokenizer):
    return [
        RowWiseSerializer(tokenizer, 512),
        RowWiseSerializer(tokenizer, 512, include_caption=True),
        RowWiseSerializer(tokenizer, 512, include_header=False),
        RowWiseSerializer(tokenizer, 48),  # hard truncation
        ColumnWiseSerializer(tokenizer, 512),
        ColumnWiseSerializer(tokenizer, 512, include_header=True),
        ColumnWiseSerializer(tokenizer, 40),
    ]


def test_serializers_columnar_equals_object_path(tokenizer, sample_table):
    for serializer in serializer_variants(tokenizer):
        columnar = serializer.serialize(sample_table)
        assert isinstance(columnar, TokenArray)
        assert columnar.tokens() == serializer.serialize_tokens(sample_table)


def test_row_template_columnar_equals_object_path(tokenizer, sample_table):
    serializer = RowTemplateSerializer(tokenizer, 64)
    arrays = serializer.serialize(sample_table)
    objects = serializer.serialize_tokens(sample_table)
    assert len(arrays) == len(objects) == sample_table.num_rows
    for ta, tokens in zip(arrays, objects):
        assert ta.tokens() == tokens


def test_empty_table_serializes_to_empty_value_plane(tokenizer):
    from repro.relational.schema import TableSchema

    empty = Table(TableSchema.from_names(["a", "b"]), [])
    ta = RowWiseSerializer(tokenizer, 64).serialize(empty)
    assert isinstance(ta, TokenArray)
    assert not (ta.role_ids == token_array.ROLE_VALUE).any()


# ----------------------------------------------------------------------
# Encoder bit-identity: every serializer x model family x backend
# ----------------------------------------------------------------------


def family_tables():
    return [
        Table.from_columns(
            [("name", ["Alice", "Bob", "Carol"]), ("age", [30, 41, 28])],
            caption="people",
            table_id="fam-0",
        ),
        Table.from_columns(
            [("country", ["France", "Peru"]), ("capital", ["Paris", "Lima"]),
             ("population", [67, 34])],
            table_id="fam-1",
        ),
    ]


@pytest.mark.parametrize("name", available_models())
def test_encode_bit_identical_to_reference_per_family(name):
    model = cached_model(name)
    serializer = model._serializer
    for table in family_tables():
        effective = model._effective_table(table)
        if model.config.serialization == Serialization.ROW_TEMPLATE:
            sequences = serializer.serialize(effective)
            legacy = serializer.serialize_tokens(effective)
        else:
            sequences = [serializer.serialize(effective)]
            legacy = [serializer.serialize_tokens(effective)]
        for ta, tokens in zip(sequences, legacy):
            assert ta.tokens() == tokens
            assert np.array_equal(
                model.encoder.embed_tokens(ta),
                reference_plane.embed_tokens_reference(model.encoder, tokens),
            )
            assert np.array_equal(
                model.encoder.attention_mask(ta),
                reference_plane.attention_mask_reference(model.encoder, tokens),
            )
            assert np.array_equal(
                model.encoder.attention_bias(ta),
                reference_plane.attention_bias_reference(model.encoder, tokens),
            )
            assert np.array_equal(
                model.encoder.encode(ta),
                reference_plane.encode_reference(model.encoder, tokens),
            )


@pytest.mark.parametrize("name", ["bert", "tapas", "t5", "doduo"])
def test_backends_on_token_arrays(name):
    """Exact backend bit-identical to the reference forward; padded within
    its pre-existing tolerance — on columnar inputs end-to-end."""
    model = cached_model(name)
    if model.config.serialization == Serialization.ROW_TEMPLATE:
        pytest.skip("no flat sequence for row-template models")
    token_lists = [
        model._serializer.serialize(model._effective_table(t))
        for t in family_tables() * 2
    ]
    reference = [
        reference_plane.encode_reference(model.encoder, ta.tokens())
        for ta in token_lists
    ]
    exact = LocalBackend().encode_batch(model.encoder, token_lists, batch_size=2)
    for got, want in zip(exact, reference):
        assert np.array_equal(got, want)
    padded = PaddedBackend(tier_width=16).encode_batch(
        model.encoder, token_lists, batch_size=4
    )
    for got, want in zip(padded, reference):
        assert max_relative_error(got, want) <= PADDED_TOLERANCE


def test_attention_bias_memoized_by_length():
    from repro.models.config import ModelConfig, PositionKind
    from repro.models.encoder import Encoder

    encoder = Encoder(
        ModelConfig(
            name="bias-memo-test",
            dim=16,
            n_layers=1,
            n_heads=2,
            position_kind=PositionKind.RELATIVE,
            relative_tau=4.0,
        )
    )
    a = encoder.bias_for_length(24)
    b = encoder.bias_for_length(24)
    assert a is b  # same cached object
    assert not a.flags.writeable
    idx = np.arange(24, dtype=np.float64)
    expected = -np.abs(idx[:, None] - idx[None, :]) / encoder.config.relative_tau
    assert np.array_equal(a, expected)


# ----------------------------------------------------------------------
# Aggregation bit-identity + the no-quadratic-intermediates guard
# ----------------------------------------------------------------------


def aggregation_fixture(name="tapas"):
    model = cached_model(name)
    table = family_tables()[0]
    ta = model._serializer.serialize(model._effective_table(table))
    states = np.random.default_rng(7).standard_normal((len(ta), model.dim))
    return table, ta, states


@pytest.mark.parametrize("header_weight", [0.0, 0.5, 1.0, 3.0])
def test_aggregate_columns_rows_table_bit_identical(header_weight):
    table, ta, states = aggregation_fixture()
    tokens = ta.tokens()
    assert np.array_equal(
        aggregate.column_embeddings(ta, states, table.num_columns, header_weight=header_weight),
        reference_plane.column_embeddings_reference(
            tokens, states, table.num_columns, header_weight=header_weight
        ),
    )
    assert np.array_equal(
        aggregate.row_embeddings(ta, states, table.num_rows),
        reference_plane.row_embeddings_reference(tokens, states, table.num_rows),
    )
    assert np.array_equal(
        aggregate.table_embedding(ta, states, header_weight=header_weight),
        reference_plane.table_embedding_reference(
            tokens, states, header_weight=header_weight
        ),
    )
    assert aggregate.embedded_row_count(ta) == reference_plane.embedded_row_count_reference(tokens)


def test_aggregate_anchor_and_cells_and_entities_bit_identical():
    table, ta, states = aggregation_fixture("doduo")
    tokens = ta.tokens()
    assert np.array_equal(
        aggregate.column_embeddings(ta, states, table.num_columns, use_cls_anchor=True),
        reference_plane.column_embeddings_reference(
            tokens, states, table.num_columns, use_cls_anchor=True
        ),
    )
    coords = [(0, 0), (1, 1), (2, 0), (9, 9)]
    got = aggregate.cell_embeddings(ta, states, coords)
    want = reference_plane.cell_embeddings_reference(tokens, states, coords)
    assert set(got) == set(want)
    for coord in got:
        assert np.array_equal(got[coord], want[coord])
    for row, col in [(0, 0), (2, 1), (7, 7)]:
        a = aggregate.cell_embedding(ta, states, row, col)
        b = reference_plane.cell_embedding_reference(tokens, states, row, col)
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a, b)
        a = aggregate.entity_embedding(ta, states, row, col, metadata_weight=0.5)
        b = reference_plane.entity_embedding_reference(
            tokens, states, row, col, metadata_weight=0.5
        )
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a, b)


@settings(deadline=None, max_examples=30)
@given(tokens=st.lists(_TOKENS, min_size=1, max_size=30), data=st.data())
def test_aggregate_bit_identical_on_hypothesis_streams(tokens, data):
    ta = TokenArray.from_tokens(tokens)
    dim = 3
    states = np.random.default_rng(len(tokens)).standard_normal((len(tokens), dim))
    n_columns = data.draw(st.integers(min_value=1, max_value=8))
    header_weight = data.draw(st.sampled_from([0.0, 0.5, 1.0, 2.0]))
    assert np.array_equal(
        aggregate.column_embeddings(ta, states, n_columns, header_weight=header_weight),
        reference_plane.column_embeddings_reference(
            tokens, states, n_columns, header_weight=header_weight
        ),
    )
    n_rows = data.draw(st.integers(min_value=1, max_value=8))
    assert np.array_equal(
        aggregate.row_embeddings(ta, states, n_rows),
        reference_plane.row_embeddings_reference(tokens, states, n_rows),
    )
    assert aggregate.embedded_row_count(ta) == reference_plane.embedded_row_count_reference(tokens)


def test_no_quadratic_weight_intermediates():
    """column_embeddings must not allocate the old (n_columns, n_tokens)
    dense weight matrix; transient memory stays linear in tokens."""
    import tracemalloc

    n_tokens, n_columns, dim = 4000, 600, 4
    tokens = TokenArray(
        np.zeros(n_tokens, dtype=np.int32),
        np.full(n_tokens, token_array.ROLE_VALUE, dtype=np.uint8),
        np.arange(n_tokens, dtype=np.int32) % 50,
        np.arange(n_tokens, dtype=np.int32) % n_columns,
    )
    states = np.ones((n_tokens, dim))
    dense_bytes = n_columns * n_tokens * 8  # what the old path allocated
    tracemalloc.start()
    aggregate.column_embeddings(tokens, states, n_columns)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert peak < dense_bytes / 4, (
        f"aggregation peak {peak}B suggests a dense (levels x tokens) "
        f"intermediate (~{dense_bytes}B) is back"
    )


def test_role_order_covers_every_role():
    assert set(ROLE_ORDER) == set(TokenRole)
    assert [ROLE_TO_ID[r] for r in ROLE_ORDER] == [0, 1, 2, 3]


class TestWireHardening:
    """Malformed wire payloads fail loudly, never alias or wrap (PR 5)."""

    def _wire(self):
        tokens = [
            Token("alpha", TokenRole.HEADER, row=-1, col=0),
            Token("bravo", TokenRole.VALUE, row=0, col=0),
            Token("alpha", TokenRole.VALUE, row=1, col=0),
        ]
        return TokenArray.from_tokens(tokens), TokenArray.from_tokens(tokens).to_wire()

    def test_digest_is_mandatory_for_transport(self):
        ta, wire = self._wire()
        del wire["digest"]
        with pytest.raises(ValueError, match="digest"):
            TokenArray.from_wire(wire)
        # Explicit legacy opt-out still validates content, skips integrity.
        assert TokenArray.from_wire(wire, require_digest=False) == ta

    def test_missing_content_key_named(self):
        _, wire = self._wire()
        del wire["rows"]
        with pytest.raises(ValueError, match="rows"):
            TokenArray.from_wire(wire)

    @pytest.mark.parametrize("bad", [-1, 99])
    def test_piece_index_bounds_checked(self, bad):
        _, wire = self._wire()
        index = np.asarray(wire["piece_index"]).copy()
        index[0] = bad
        wire["piece_index"] = index
        with pytest.raises(ValueError, match="piece_index"):
            TokenArray.from_wire(wire)

    def test_role_ids_bounds_checked(self):
        _, wire = self._wire()
        roles = np.asarray(wire["role_ids"]).astype(np.int64)
        roles[0] = len(ROLE_ORDER)
        wire["role_ids"] = roles
        with pytest.raises(ValueError, match="role_ids"):
            TokenArray.from_wire(wire)

    @pytest.mark.parametrize("key", ["rows", "cols"])
    def test_provenance_floor_checked(self, key):
        _, wire = self._wire()
        arr = np.asarray(wire[key]).copy()
        arr[0] = -2  # only -1 means "no provenance"
        wire[key] = arr
        with pytest.raises(ValueError, match=key):
            TokenArray.from_wire(wire)

    def test_non_integer_field_rejected(self):
        _, wire = self._wire()
        wire["rows"] = np.asarray([0.5, 1.0, 1.5])
        with pytest.raises(ValueError, match="integers"):
            TokenArray.from_wire(wire)


class TestIndexRangeValidation:
    """Out-of-range values raise instead of wrapping (PR 5 regression)."""

    def test_role_id_256_does_not_wrap_to_role_0(self):
        with pytest.raises(ValueError, match="uint8"):
            TokenArray([0], [256], [0], [0])

    def test_piece_id_past_int32_does_not_wrap(self):
        with pytest.raises(ValueError, match="int32"):
            TokenArray([2**40], [0], [0], [0])

    def test_builder_goes_through_the_same_validation(self):
        builder = TokenArrayBuilder()
        builder.append_id(0, 300)  # role id out of uint8 range
        with pytest.raises(ValueError, match="uint8"):
            builder.build()

    def test_in_range_values_unchanged(self):
        ta = TokenArray([0, 1], [3, 0], [-1, 5], [2, -1])
        assert ta.role_ids.dtype == np.uint8
        assert ta.rows.tolist() == [-1, 5]


class TestReviewHardening:
    """PR 5 review findings: pre-intern digest check, negative-id floor."""

    def test_negative_piece_id_rejected_even_preconverted(self):
        # The int32 fast path used to skip validation entirely; -1 would
        # gather the most recently interned piece's content vector.
        with pytest.raises(ValueError, match="below 0"):
            TokenArray([-1], [0], [0], [0])
        with pytest.raises(ValueError, match="below 0"):
            TokenArray(np.array([-1], dtype=np.int32), [0], [0], [0])

    def test_rejected_payload_never_touches_the_interner(self):
        junk = ["junk-а-🎲", "junk-b-🎲", "junk-c-🎲"]
        wire = {
            "pieces": junk,
            "piece_index": np.array([0, 1, 2], dtype=np.int32),
            "role_ids": np.array([0, 0, 0], dtype=np.uint8),
            "rows": np.array([-1, -1, -1], dtype=np.int32),
            "cols": np.array([-1, -1, -1], dtype=np.int32),
            "digest": "0" * 64,
        }
        before = len(INTERNER)
        with pytest.raises(ValueError, match="digest"):
            TokenArray.from_wire(wire)
        # A rejected payload must not grow process-wide interner state
        # (a service fed junk would otherwise leak memory per request).
        assert len(INTERNER) == before
        assert all(INTERNER.id_of(piece) == -1 for piece in junk)

    def test_payload_side_digest_matches_interner_side(self):
        # from_wire now verifies the digest before interning; the two
        # canonicalizations (payload-side vs digest()) must agree even
        # when the payload's piece list is unsorted.
        tokens = [
            Token("zulu", TokenRole.VALUE, row=0, col=0),
            Token("alpha", TokenRole.VALUE, row=1, col=0),
            Token("zulu", TokenRole.HEADER, row=-1, col=0),
        ]
        ta = TokenArray.from_tokens(tokens)
        wire = ta.to_wire()
        rebuilt = TokenArray.from_wire(wire)
        assert rebuilt == ta
        assert rebuilt.digest() == wire["digest"]
