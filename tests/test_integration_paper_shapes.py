"""Integration tests: the paper's qualitative findings must hold.

These run the real pipeline end to end on small corpora and assert the
*shape* of each headline result — who wins, orderings, crossovers — not
absolute values (see EXPERIMENTS.md for the paper-vs-measured record).
Marked as one module so a slow-run budget stays predictable.
"""

import pytest

from repro import Observatory
from repro.core.framework import DatasetSizes

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def obs():
    return Observatory(
        seed=0,
        sizes=DatasetSizes(
            wikitables_tables=8,
            spider_databases=3,
            nextiajd_pairs=30,
            sotab_tables=12,
            n_permutations=6,
        ),
    )


@pytest.fixture(scope="module")
def row_order(obs):
    return {
        name: obs.characterize(name, "row_order_insignificance")
        for name in ("bert", "t5", "tapas", "tabert", "doduo")
    }


def test_row_order_lms_robust(row_order):
    """Figure 5: BERT/T5/TAPAS/TaBERT column embeddings are robust (Q1 high)."""
    for name in ("bert", "t5", "tapas", "tabert"):
        assert row_order[name].distributions["column/cosine"].q1 > 0.95, name


def test_row_order_doduo_most_sensitive(row_order):
    """Figure 5: DODUO shows the largest spread under row shuffling."""
    doduo_q1 = row_order["doduo"].distributions["column/cosine"].q1
    for name in ("bert", "t5", "tapas", "tabert"):
        assert doduo_q1 < row_order[name].distributions["column/cosine"].q1


def test_row_order_t5_highest_mcv_at_high_cosine(row_order):
    """Figure 5/6: T5 combines top-band cosine with the largest MCV."""
    t5_mcv = row_order["t5"].distributions["column/mcv"].q3
    for name in ("bert", "tapas", "tabert"):
        assert t5_mcv > row_order[name].distributions["column/mcv"].q3
    assert row_order["t5"].distributions["column/cosine"].q1 > 0.97


def test_table_embeddings_most_stable(row_order):
    """Figure 5 bottom: table embeddings vary least under row shuffles."""
    for name in ("bert", "t5", "tapas"):
        result = row_order[name]
        assert (
            result.distributions["table/cosine"].median
            >= result.distributions["column/cosine"].median - 1e-6
        )


def test_column_order_perturbs_more_than_row_order(obs, row_order):
    """Figure 7: column shuffling causes more variation than row shuffling."""
    for name in ("roberta", "doduo"):
        col = obs.characterize(name, "column_order_insignificance")
        row = obs.characterize(name, "row_order_insignificance")
        assert (
            col.distributions["column/cosine"].median
            < row.distributions["column/cosine"].median
        )


def test_join_multiset_jaccard_most_correlated(obs):
    """Table 3: multiset Jaccard correlates best with embedding cosine."""
    for name in ("bert", "tapas"):
        result = obs.characterize(name, "join_relationship")
        mj = result.scalars["spearman/multiset_jaccard"]
        assert mj > result.scalars["spearman/containment"]
        assert mj > result.scalars["spearman/jaccard"]
        assert mj > 0.3


def test_fd_no_model_separates_cleanly(obs):
    """Figure 10: FD and non-FD variance distributions overlap."""
    for name in ("bert", "tapas"):
        result = obs.characterize(name, "functional_dependencies")
        fd = result.distributions["fd/s2"]
        non_fd = result.distributions["non_fd/s2"]
        assert fd.maximum > non_fd.minimum, name  # ranges overlap
    # For the vanilla LM even the interquartile ranges overlap.
    bert = obs.characterize("bert", "functional_dependencies")
    assert bert.distributions["fd/s2"].q3 > bert.distributions["non_fd/s2"].q1


def test_fd_doduo_magnitudes_dominate(obs):
    """Table 4: DODUO's raw-stream variances dwarf the layer-normed models."""
    doduo = obs.characterize("doduo", "functional_dependencies")
    bert = obs.characterize("bert", "functional_dependencies")
    assert doduo.scalars["mean_s2/fd"] > 10 * bert.scalars["mean_s2/fd"]


def test_sample_fidelity_orderings(obs):
    """Figure 11: fidelity rises with ratio; DODUO lags; TaBERT robust."""
    results = {
        name: obs.characterize(name, "sample_fidelity")
        for name in ("bert", "tabert", "doduo")
    }
    for result in results.values():
        assert (
            result.distributions["ratio_0.75/fidelity"].median
            >= result.distributions["ratio_0.25/fidelity"].median
        )
    at_25 = {
        name: r.distributions["ratio_0.25/fidelity"].median
        for name, r in results.items()
    }
    assert at_25["doduo"] < at_25["bert"]
    assert at_25["tabert"] > 0.9


def test_entity_stability_domain_dependence(obs):
    """Figure 12: stability varies by domain and lies in [0, 1]."""
    result = obs.characterize("bert", "entity_stability", partner_model="tapas")
    values = [v for k, v in result.scalars.items() if k.startswith("stability/")]
    assert all(0.0 <= v <= 1.0 for v in values)
    domain_values = [
        v for k, v in result.scalars.items()
        if k.startswith("stability/") and not k.endswith("overall")
    ]
    assert max(domain_values) - min(domain_values) > 0.01  # domain matters


def test_perturbation_robustness_orderings(obs):
    """Figure 13: DODUO invariant; TaBERT worst; BERT among the best."""
    results = {
        name: obs.characterize(name, "perturbation_robustness")
        for name in ("bert", "tabert", "doduo")
    }
    key = "schema-abbreviation/cosine"
    assert results["doduo"].distributions[key].minimum == pytest.approx(1.0, abs=1e-9)
    assert (
        results["tabert"].distributions[key].median
        < results["bert"].distributions[key].median
    )


def test_heterogeneous_context_extremes(obs):
    """Table 5: TaBERT context-insensitive, DODUO most sensitive."""
    tabert = obs.characterize("tabert", "heterogeneous_context")
    doduo = obs.characterize("doduo", "heterogeneous_context")
    bert = obs.characterize("bert", "heterogeneous_context")
    key = "non_textual/entire_table"
    assert tabert.distributions[key].median > 0.95
    assert doduo.distributions[key].median < bert.distributions[key].median
    assert doduo.distributions[key].median < tabert.distributions[key].median
