"""Tests for the Section 6 downstream harnesses."""

import numpy as np
import pytest

from repro.data.drspider import PerturbationKind
from repro.data.nextiajd import NextiaJDGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.downstream.column_type_prediction import (
    ColumnTypePredictor,
    permutation_stability,
)
from repro.downstream.join_discovery import JoinDiscoveryIndex, evaluate_join_discovery
from repro.downstream.table_qa import (
    CellSelectionQA,
    evaluate_qa_robustness,
    make_qa_examples,
)
from repro.errors import DatasetError
from tests.conftest import cached_model


@pytest.fixture(scope="module")
def corpus():
    return WikiTablesGenerator(seed=11).generate(8, min_rows=5, max_rows=7)


# --- column type prediction ------------------------------------------------

def test_predictor_fit_and_predict(corpus):
    predictor = ColumnTypePredictor(cached_model("bert")).fit(corpus)
    assert predictor.classes
    predictions = predictor.predict_table(corpus[0])
    assert len(predictions) == corpus[0].num_columns
    assert all(p in predictor.classes for p in predictions)


def test_predictor_learns_training_columns(corpus):
    """On its own training tables the nearest-centroid probe should get a
    large majority of the column types right."""
    predictor = ColumnTypePredictor(cached_model("bert")).fit(corpus)
    correct = 0
    total = 0
    for table in corpus:
        predictions = predictor.predict_table(table)
        for col, predicted in zip(table.schema, predictions):
            total += 1
            if predicted == col.semantic_type:
                correct += 1
    assert correct / total > 0.7


def test_predictor_unfitted_raises(corpus):
    with pytest.raises(DatasetError):
        ColumnTypePredictor(cached_model("bert")).predict_table(corpus[0])


def test_permutation_stability_report(corpus):
    predictor = ColumnTypePredictor(cached_model("doduo")).fit(corpus)
    report = permutation_stability(
        predictor, corpus.take(4), n_permutations=4
    )
    assert report.n_tables == 4
    assert set(report.fraction_at_least) == {1, 2, 3}
    values = [report.fraction_at_least[k] for k in (1, 2, 3)]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert values == sorted(values, reverse=True)  # monotone in k
    assert ">= 1 changed" in report.summary()


def test_permutation_stability_validation(corpus):
    predictor = ColumnTypePredictor(cached_model("bert")).fit(corpus)
    with pytest.raises(DatasetError):
        permutation_stability(predictor, corpus, n_permutations=0)


# --- join discovery ----------------------------------------------------------

def test_index_add_and_lookup():
    index = JoinDiscoveryIndex(4)
    index.add("a", np.array([1.0, 0, 0, 0]))
    index.add("b", np.array([0, 1.0, 0, 0]))
    results = index.lookup(np.array([0.9, 0.1, 0, 0]), 1)
    assert results[0][0] == "a"
    assert len(index) == 2


def test_index_validation():
    index = JoinDiscoveryIndex(2)
    with pytest.raises(DatasetError):
        index.add("z", np.zeros(2))
    with pytest.raises(DatasetError):
        index.add("z", np.ones(3))
    with pytest.raises(DatasetError):
        index.lookup(np.ones(2), 1)  # empty index
    index.add("a", np.ones(2))
    with pytest.raises(DatasetError):
        index.lookup(np.ones(2), 5)


def test_evaluate_join_discovery_report():
    pairs = NextiaJDGenerator(seed=12).generate_pairs(8)
    report = evaluate_join_discovery(
        cached_model("bert"), pairs, k=3, sample_fraction=0.2
    )
    assert 0.0 <= report.precision_full <= 1.0
    assert 0.0 <= report.recall_sampled <= 1.0
    assert report.index_time_full > 0
    assert "precision" in report.summary()
    # Sampling must make indexing cheaper (fewer tokens to embed).
    assert report.index_time_sampled < report.index_time_full


def test_evaluate_join_discovery_empty():
    with pytest.raises(DatasetError):
        evaluate_join_discovery(cached_model("bert"), [])


def test_index_add_is_amortized_constant():
    """Regression: ``add`` used to invalidate the stacked matrix on every
    insert, making N adds + interleaved lookups O(N^2) stacking work.
    Geometric growth bounds reallocations at O(log N) for any add/lookup
    interleaving."""
    rng = np.random.default_rng(5)
    index = JoinDiscoveryIndex(8)
    n = 1000
    for i in range(n):
        index.add(f"k{i}", rng.normal(size=8))
        if i % 100 == 0:
            index.lookup(rng.normal(size=8), 1)  # interleaved queries
    assert len(index) == n
    # Doubling from 8: at most log2(1000/8)+1 ~ 8 reallocations.
    assert index.growths <= int(np.ceil(np.log2(n / 8))) + 1
    results = index.lookup(rng.normal(size=8), 3)
    assert len(results) == 3


def test_index_growth_preserves_lookup_results():
    rng = np.random.default_rng(6)
    rows = rng.normal(size=(37, 5))
    grown = JoinDiscoveryIndex(5)
    for i, row in enumerate(rows):
        grown.add(f"k{i}", row)
    query = rng.normal(size=5)
    scores = dict(grown.lookup(query, 37))
    # Reference: normalize and score directly (the pre-growth semantics).
    matrix = np.stack([row / np.linalg.norm(row) for row in rows])
    want = matrix @ (query / np.linalg.norm(query))
    for i in range(37):
        assert scores[f"k{i}"] == want[i]  # bit-identical


def test_evaluate_join_discovery_hits_embedding_cache():
    from repro import Observatory

    pairs = NextiaJDGenerator(seed=12).generate_pairs(6)
    executor = Observatory(seed=0).executor("bert")
    first = evaluate_join_discovery(executor, pairs, k=3, sample_fraction=0.2)
    hits_after_first = executor.cache_stats.hits
    second = evaluate_join_discovery(executor, pairs, k=3, sample_fraction=0.2)
    # Every column embedding of the repeat evaluation is a cache hit.
    assert executor.cache_stats.hits >= hits_after_first + 4 * len(pairs)
    assert (first.precision_full, first.recall_full) == (
        second.precision_full,
        second.recall_full,
    )
    assert (first.precision_sampled, first.recall_sampled) == (
        second.precision_sampled,
        second.recall_sampled,
    )


def test_evaluate_join_discovery_engine_parity(tmp_path):
    """The index engine with pruning off reproduces the exact engine's
    metrics whenever both see float32-quantized embeddings."""
    pairs = NextiaJDGenerator(seed=12).generate_pairs(8)
    model = cached_model("t5")
    exact = evaluate_join_discovery(model, pairs, k=3, quantize=True)
    indexed = evaluate_join_discovery(
        model,
        pairs,
        k=3,
        quantize=True,
        engine="index",
        prune="off",
        index_dir=str(tmp_path),
    )
    assert indexed.engine == "index"
    assert (exact.precision_full, exact.recall_full) == (
        indexed.precision_full,
        indexed.recall_full,
    )
    assert (exact.precision_sampled, exact.recall_sampled) == (
        indexed.precision_sampled,
        indexed.recall_sampled,
    )
    # The persistent index landed under index_dir (both variants).
    import os

    assert os.path.exists(tmp_path / "full" / "manifest.json")
    assert os.path.exists(tmp_path / "sampled" / "manifest.json")


def test_evaluate_join_discovery_pruned_engines_run():
    pairs = NextiaJDGenerator(seed=12).generate_pairs(6)
    for prune in ("bound", "probe"):
        report = evaluate_join_discovery(
            cached_model("t5"), pairs, k=2, engine="index", prune=prune
        )
        assert report.prune == prune
        assert 0.0 <= report.precision_full <= 1.0


def test_evaluate_join_discovery_bad_engine():
    pairs = NextiaJDGenerator(seed=12).generate_pairs(4)
    with pytest.raises(DatasetError, match="engine"):
        evaluate_join_discovery(cached_model("bert"), pairs, engine="annoy")


# --- table QA -----------------------------------------------------------------

def test_make_qa_examples(corpus):
    examples = make_qa_examples(corpus, per_table=2, seed=1)
    assert examples
    for table_id, table_examples in examples.items():
        assert len(table_examples) <= 2
        for ex in table_examples:
            assert ex.table_id == table_id
            assert "What is the" in ex.question


def test_qa_answers_within_bounds(corpus):
    qa = CellSelectionQA(cached_model("bert"))
    examples = make_qa_examples(corpus, per_table=1, seed=1)
    table = corpus[0]
    example = examples[table.table_id][0]
    row, col = qa.answer(table, example)
    assert 0 <= row < table.num_rows
    assert 0 <= col < table.num_columns


def test_qa_accuracy_reasonable(corpus):
    """Exact lookups over clean tables should beat random guessing easily."""
    qa = CellSelectionQA(cached_model("bert"))
    examples = make_qa_examples(corpus, per_table=2, seed=2)
    accuracy = qa.accuracy(corpus, examples)
    # Random guessing would be ~ 1 / (rows * cols) ~= 3%.
    assert accuracy > 0.3


def test_qa_robustness_report(corpus):
    report = evaluate_qa_robustness(
        cached_model("tapas"),
        corpus.take(4),
        per_table=2,
        kinds=(PerturbationKind.SCHEMA_ABBREVIATION,),
    )
    assert 0.0 <= report.accuracy_original <= 1.0
    assert "schema-abbreviation" in report.accuracy_perturbed
    assert "drop" in report.summary()
    # Perturbing the schema can only hurt or tie a header-matching QA.
    assert (
        report.accuracy_perturbed["schema-abbreviation"]
        <= report.accuracy_original + 1e-9
    )
