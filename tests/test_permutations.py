"""Tests for distinct-permutation sampling."""

import math

import pytest

from repro.relational.permutations import (
    derangement_fraction,
    permutation_count,
    sample_permutations,
    swap_distance,
)


def test_permutation_count():
    assert permutation_count(0) == 1
    assert permutation_count(5) == 120
    with pytest.raises(ValueError):
        permutation_count(-1)


def test_small_space_enumerated_exactly():
    perms = sample_permutations(3, 100)
    assert len(perms) == math.factorial(3)
    assert perms[0] == (0, 1, 2)
    assert len(set(perms)) == 6


def test_identity_first():
    perms = sample_permutations(6, 10)
    assert perms[0] == tuple(range(6))


def test_identity_excluded_when_requested():
    perms = sample_permutations(3, 100, include_identity=False)
    assert tuple(range(3)) not in perms
    assert len(perms) == 5


def test_large_space_sampled_distinct():
    perms = sample_permutations(30, 50, seed_parts=("t",))
    assert len(perms) == 50
    assert len(set(perms)) == 50
    assert all(sorted(p) == list(range(30)) for p in perms)


def test_deterministic_given_seed_parts():
    a = sample_permutations(10, 20, seed_parts=("x",))
    b = sample_permutations(10, 20, seed_parts=("x",))
    c = sample_permutations(10, 20, seed_parts=("y",))
    assert a == b
    assert a != c


def test_trivial_sizes():
    assert sample_permutations(0, 5) == [()]
    assert sample_permutations(1, 5) == [(0,)]


def test_invalid_args():
    with pytest.raises(ValueError):
        sample_permutations(3, 0)
    with pytest.raises(ValueError):
        sample_permutations(-1, 5)


def test_cap_respected():
    perms = sample_permutations(4, 10)
    assert len(perms) == 10  # 4! = 24 > 10


def test_derangement_fraction_bounds():
    perms = sample_permutations(6, 50)
    fraction = derangement_fraction(perms)
    assert 0.0 <= fraction <= 1.0
    assert derangement_fraction([]) == 0.0


def test_swap_distance():
    assert swap_distance((0, 1, 2)) == 0
    assert swap_distance((1, 0, 2)) == 1
    assert swap_distance((1, 2, 0)) == 2
