"""Tests for CSV import/export."""

import pytest

from repro.data.loaders import (
    load_csv,
    load_directory,
    save_csv,
    table_from_csv_text,
    table_to_csv_text,
)
from repro.errors import DatasetError
from repro.relational.values import DataType

CSV = """player,country,titles
Roger Federer,Switzerland,103
Rafael Nadal,Spain,92
"""


def test_parse_with_header_and_types():
    table = table_from_csv_text(CSV, table_id="t")
    assert table.header == ["player", "country", "titles"]
    assert table.num_rows == 2
    assert table.cell(0, 2) == 103  # parsed to int
    assert table.schema[2].data_type == DataType.INTEGER


def test_parse_without_value_parsing():
    table = table_from_csv_text(CSV, parse_values=False)
    assert table.cell(0, 2) == "103"


def test_parse_headerless():
    table = table_from_csv_text("a,1\nb,2\n", has_header=False)
    assert table.header == ["", ""]
    assert table.num_rows == 2


def test_parse_custom_delimiter():
    table = table_from_csv_text("x;y\n1;2\n", delimiter=";")
    assert table.header == ["x", "y"]


def test_parse_errors():
    with pytest.raises(DatasetError):
        table_from_csv_text("")
    with pytest.raises(DatasetError):
        table_from_csv_text("a,b\n1\n")  # ragged
    with pytest.raises(DatasetError):
        table_from_csv_text("a,b\n")  # header only


def test_round_trip(tmp_path, tennis_table):
    path = tmp_path / "tennis.csv"
    save_csv(tennis_table, path)
    loaded = load_csv(path)
    assert loaded.header == tennis_table.header
    assert loaded.num_rows == tennis_table.num_rows
    assert loaded.cell(2, 0) == tennis_table.cell(2, 0)
    assert loaded.cell(1, 2) == tennis_table.cell(1, 2)
    assert loaded.table_id == "tennis"


def test_round_trip_none_becomes_empty():
    from repro.relational.table import Table

    table = Table.from_columns([("x", ["a", None]), ("y", [1, 2])])
    reloaded = table_from_csv_text(table_to_csv_text(table))
    assert reloaded.num_rows == 2
    assert reloaded.cell(1, 0) in (None, "")
    assert reloaded.cell(1, 1) == 2


def test_load_missing_file(tmp_path):
    with pytest.raises(DatasetError):
        load_csv(tmp_path / "missing.csv")


def test_load_directory(tmp_path, tennis_table, fd_table):
    save_csv(tennis_table, tmp_path / "a.csv")
    save_csv(fd_table, tmp_path / "b.csv")
    tables = load_directory(tmp_path)
    assert [t.table_id for t in tables] == ["a", "b"]
    assert load_directory(tmp_path, limit=1)[0].table_id == "a"
    with pytest.raises(DatasetError):
        load_directory(tmp_path / "nope")
    with pytest.raises(DatasetError):
        load_directory(tmp_path, pattern="*.tsv")


def test_loaded_table_is_embeddable(tmp_path, tennis_table, bert):
    """The practitioner path: CSV in, Observatory measure out."""
    save_csv(tennis_table, tmp_path / "mine.csv")
    table = load_csv(tmp_path / "mine.csv")
    embeddings = bert.embed_columns(table)
    assert embeddings.shape == (table.num_columns, bert.dim)
