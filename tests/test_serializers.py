"""Tests for table serialization and input-limit truncation."""

import pytest

from repro.models.serializers import (
    ColumnWiseSerializer,
    RowTemplateSerializer,
    RowWiseSerializer,
    Token,
    TokenRole,
)
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import CLS, SEP


@pytest.fixture(scope="module")
def tokenizer():
    return Tokenizer()


@pytest.fixture()
def table():
    return Table.from_columns(
        [
            ("name", ["Alice Smith", "Bob Jones", "Carol White"]),
            ("age", [30, 41, 28]),
        ],
        caption="people",
        table_id="ser-test",
    )


def test_row_wise_layout(tokenizer, table):
    serializer = RowWiseSerializer(tokenizer, 512)
    tokens = serializer.serialize(table)
    assert tokens[0].piece == CLS
    headers = [t for t in tokens if t.role == TokenRole.HEADER]
    assert {t.col for t in headers} == {0, 1}
    values = [t for t in tokens if t.role == TokenRole.VALUE]
    assert {t.row for t in values} == {0, 1, 2}
    assert {t.col for t in values} == {0, 1}


def test_row_wise_provenance_matches_cells(tokenizer, table):
    serializer = RowWiseSerializer(tokenizer, 512)
    tokens = serializer.serialize(table)
    cell_pieces = [t.piece for t in tokens if t.row == 1 and t.col == 0 and t.role == TokenRole.VALUE]
    assert cell_pieces == tokenizer.tokenize("Bob Jones")


def test_row_wise_caption(tokenizer, table):
    serializer = RowWiseSerializer(tokenizer, 512, include_caption=True)
    tokens = serializer.serialize(table)
    assert any(t.role == TokenRole.CAPTION for t in tokens)


def test_row_wise_without_header(tokenizer, table):
    serializer = RowWiseSerializer(tokenizer, 512, include_header=False)
    tokens = serializer.serialize(table)
    assert not any(t.role == TokenRole.HEADER for t in tokens)


def test_fit_rows_binary_search(tokenizer):
    long_table = Table.from_columns(
        [("text", [f"some fairly long value number {i}" for i in range(100)])]
    )
    serializer = RowWiseSerializer(tokenizer, 128)
    fit = serializer.fit_rows(long_table)
    assert 0 < fit < 100
    assert len(serializer.serialize_rows(long_table, fit)) <= 128
    assert len(serializer.serialize_rows(long_table, fit + 1)) > 128


def test_serialize_respects_budget(tokenizer):
    long_table = Table.from_columns(
        [("text", [f"value {i} with several words inside" for i in range(200)])]
    )
    serializer = RowWiseSerializer(tokenizer, 96)
    tokens = serializer.serialize(long_table)
    assert len(tokens) <= 96


def test_serialize_hard_truncation_single_huge_row(tokenizer):
    huge = Table.from_columns([("text", [" ".join(f"word{i}" for i in range(500))])])
    serializer = RowWiseSerializer(tokenizer, 64)
    tokens = serializer.serialize(huge)
    assert len(tokens) == 64


def test_empty_table_serialization(tokenizer):
    from repro.relational.schema import TableSchema
    empty = Table(TableSchema.from_names(["a"]), [])
    serializer = RowWiseSerializer(tokenizer, 64)
    tokens = serializer.serialize(empty)
    assert tokens  # header block still present
    assert not any(t.role == TokenRole.VALUE for t in tokens)


def test_column_wise_cls_anchors(tokenizer, table):
    serializer = ColumnWiseSerializer(tokenizer, 512)
    tokens = serializer.serialize(table)
    anchors = [t for t in tokens if t.is_anchor]
    assert [t.col for t in anchors] == [0, 1]
    # values-only by default (DODUO)
    assert not any(t.role == TokenRole.HEADER for t in tokens)


def test_column_wise_column_blocks_ordered(tokenizer, table):
    serializer = ColumnWiseSerializer(tokenizer, 512)
    tokens = serializer.serialize(table)
    cols = [t.col for t in tokens if t.role == TokenRole.VALUE]
    assert cols == sorted(cols)


def test_column_wise_budget(tokenizer):
    long_table = Table.from_columns(
        [("a", [f"value {i}" for i in range(200)]), ("b", list(range(200)))]
    )
    serializer = ColumnWiseSerializer(tokenizer, 100)
    assert len(serializer.serialize(long_table)) <= 100


def test_row_template_per_row(tokenizer, table):
    serializer = RowTemplateSerializer(tokenizer, 128)
    sequences = serializer.serialize(table)
    assert len(sequences) == 3
    for r, seq in enumerate(sequences):
        rows = {t.row for t in seq}
        assert rows == {r}
        assert any(t.role == TokenRole.HEADER for t in seq)
        assert any(t.role == TokenRole.VALUE for t in seq)


def test_row_template_out_of_range(tokenizer, table):
    serializer = RowTemplateSerializer(tokenizer, 128)
    from repro.errors import SerializationError
    with pytest.raises(SerializationError):
        serializer.serialize_row(table, 99)


def test_token_is_anchor_logic():
    assert Token(CLS, TokenRole.SPECIAL, col=2).is_anchor
    assert not Token(CLS, TokenRole.SPECIAL).is_anchor
    assert not Token(SEP, TokenRole.SPECIAL, col=2).is_anchor
