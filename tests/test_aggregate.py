"""Tests for token-to-level aggregation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import aggregate
from repro.models.serializers import Token, TokenRole
from repro.text.vocab import CLS


def build_tokens():
    """2 columns x 2 rows with headers; distinct state per token."""
    tokens = [
        Token(CLS, TokenRole.SPECIAL),
        Token("h0", TokenRole.HEADER, col=0),
        Token("h1", TokenRole.HEADER, col=1),
        Token("v00", TokenRole.VALUE, row=0, col=0),
        Token("v01", TokenRole.VALUE, row=0, col=1),
        Token("v10", TokenRole.VALUE, row=1, col=0),
        Token("v11", TokenRole.VALUE, row=1, col=1),
    ]
    states = np.arange(len(tokens) * 2, dtype=float).reshape(len(tokens), 2)
    return tokens, states


def test_column_embeddings_mean_pooling():
    tokens, states = build_tokens()
    cols = aggregate.column_embeddings(tokens, states, 2, header_weight=1.0)
    expected_col0 = (states[1] + states[3] + states[5]) / 3
    assert np.allclose(cols[0], expected_col0)


def test_column_embeddings_header_weight():
    tokens, states = build_tokens()
    cols = aggregate.column_embeddings(tokens, states, 2, header_weight=3.0)
    expected = (3 * states[1] + states[3] + states[5]) / 5
    assert np.allclose(cols[0], expected)


def test_column_embeddings_values_only():
    tokens, states = build_tokens()
    cols = aggregate.column_embeddings(tokens, states, 2, header_weight=0.0)
    assert np.allclose(cols[1], (states[4] + states[6]) / 2)


def test_column_embeddings_cls_anchor():
    tokens = [
        Token(CLS, TokenRole.SPECIAL, col=0),
        Token("v", TokenRole.VALUE, row=0, col=0),
        Token(CLS, TokenRole.SPECIAL, col=1),
        Token("w", TokenRole.VALUE, row=0, col=1),
    ]
    states = np.array([[1.0, 0], [9, 9], [0, 2.0], [9, 9]])
    cols = aggregate.column_embeddings(tokens, states, 2, use_cls_anchor=True)
    assert np.allclose(cols[0], [1.0, 0])
    assert np.allclose(cols[1], [0, 2.0])


def test_missing_column_gets_zero_vector():
    tokens, states = build_tokens()
    cols = aggregate.column_embeddings(tokens, states, 3)
    assert np.allclose(cols[2], 0.0)


def test_row_embeddings():
    tokens, states = build_tokens()
    rows = aggregate.row_embeddings(tokens, states, 2)
    assert np.allclose(rows[0], (states[3] + states[4]) / 2)
    assert np.allclose(rows[1], (states[5] + states[6]) / 2)


def test_embedded_row_count():
    tokens, _ = build_tokens()
    assert aggregate.embedded_row_count(tokens) == 2


def test_table_embedding_weights_headers():
    tokens, states = build_tokens()
    table_emb = aggregate.table_embedding(tokens, states, header_weight=0.0)
    assert np.allclose(table_emb, states[3:].mean(axis=0))


def test_table_embedding_empty_raises():
    with pytest.raises(ModelError):
        aggregate.table_embedding([Token(CLS, TokenRole.SPECIAL)], np.ones((1, 2)))


def test_cell_embedding():
    tokens, states = build_tokens()
    cell = aggregate.cell_embedding(tokens, states, 1, 1)
    assert np.allclose(cell, states[6])
    assert aggregate.cell_embedding(tokens, states, 5, 5) is None


def test_cell_embeddings_batch():
    tokens, states = build_tokens()
    out = aggregate.cell_embeddings(tokens, states, [(0, 0), (1, 1), (9, 9)])
    assert set(out) == {(0, 0), (1, 1)}
    assert np.allclose(out[(0, 0)], states[3])


def test_entity_embedding_includes_header_metadata():
    tokens, states = build_tokens()
    entity = aggregate.entity_embedding(tokens, states, 0, 0, metadata_weight=1.0)
    assert np.allclose(entity, (states[3] + states[1]) / 2)
    none_entity = aggregate.entity_embedding(tokens, states, 9, 9)
    assert none_entity is None
