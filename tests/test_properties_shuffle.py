"""Tests for P1 (row order) and P2 (column order) runners."""

import pytest

from repro.core.levels import EmbeddingLevel
from repro.core.properties import (
    ColumnOrderInsignificance,
    RowOrderInsignificance,
    ShuffleConfig,
)
from repro.errors import PropertyConfigError
from tests.conftest import cached_model


@pytest.fixture(scope="module")
def p1_result(small_corpus):
    runner = RowOrderInsignificance()
    return runner.run(
        cached_model("bert"), small_corpus, ShuffleConfig(n_permutations=5)
    )


def test_p1_produces_all_levels(p1_result):
    keys = set(p1_result.distributions)
    assert {"column/cosine", "column/mcv", "row/cosine", "row/mcv",
            "table/cosine", "table/mcv"} <= keys


def test_p1_cosine_bounds(p1_result):
    for key, stats in p1_result.distributions.items():
        if key.endswith("cosine"):
            assert -1.0 <= stats.minimum <= stats.maximum <= 1.0


def test_p1_mcv_nonnegative(p1_result):
    for key, stats in p1_result.distributions.items():
        if key.endswith("mcv"):
            assert stats.minimum >= 0.0


def test_p1_sample_counts(p1_result, small_corpus):
    # Per table: num_columns items x (n_permutations - 1) cosine samples.
    expected = sum(t.num_columns * 4 for t in small_corpus)
    assert p1_result.distributions["column/cosine"].n == expected


def test_p1_metadata(p1_result, small_corpus):
    assert p1_result.metadata["axis"] == "row"
    assert p1_result.metadata["n_tables"] == len(small_corpus)


def test_p1_level_filtering(small_corpus):
    runner = RowOrderInsignificance()
    result = runner.run(
        cached_model("doduo"), small_corpus, ShuffleConfig(n_permutations=4)
    )
    # DODUO exposes only column-level embeddings among the shuffle levels.
    assert set(result.distributions) == {"column/cosine", "column/mcv"}


def test_p1_rejects_unsupported_model(small_corpus):
    runner = RowOrderInsignificance()
    with pytest.raises(PropertyConfigError):
        runner.run(
            cached_model("taptap"),
            small_corpus,
            ShuffleConfig(n_permutations=4, levels=(EmbeddingLevel.COLUMN,)),
        )


def test_p2_column_alignment(small_corpus):
    runner = ColumnOrderInsignificance()
    result = runner.run(
        cached_model("bert"), small_corpus, ShuffleConfig(n_permutations=5)
    )
    assert result.metadata["axis"] == "column"
    assert "column/cosine" in result.distributions
    # Column shuffles should perturb at least as much as row shuffles for
    # a position-sensitive model (paper Section 5.2).
    p1 = RowOrderInsignificance().run(
        cached_model("bert"), small_corpus, ShuffleConfig(n_permutations=5)
    )
    assert (
        result.distributions["column/cosine"].median
        <= p1.distributions["column/cosine"].median + 0.01
    )


def test_shuffle_config_validation():
    with pytest.raises(PropertyConfigError):
        ShuffleConfig(n_permutations=1)
    with pytest.raises(PropertyConfigError):
        ShuffleConfig(levels=(EmbeddingLevel.CELL,))


def test_keep_series(small_corpus):
    runner = RowOrderInsignificance()
    result = runner.run(
        cached_model("bert"),
        small_corpus.take(2),
        ShuffleConfig(n_permutations=4, keep_series=True),
    )
    assert "column/cosine" in result.series
    assert len(result.series["column/cosine"]) == result.distributions["column/cosine"].n


def test_identity_reference_is_unshuffled(small_corpus):
    """The cosine references the identity permutation, so a permutation-
    blind model scores exactly 1 everywhere."""
    runner = RowOrderInsignificance()
    result = runner.run(
        cached_model("taptap"),
        small_corpus.take(2),
        ShuffleConfig(n_permutations=4, levels=(EmbeddingLevel.ROW,)),
    )
    assert result.distributions["row/cosine"].minimum == pytest.approx(1.0, abs=1e-9)
