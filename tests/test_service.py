"""Always-on characterization service tests.

Covers the four planes of :mod:`repro.service` at the smallest sizes
that still exercise real concurrency:

- the shared HTTP plane (routing, gzip negotiation, chunked streaming,
  typed error mapping, the preserved 404 wording);
- the loopback-encoder rebase (module entrypoint still runs, fault
  hooks preserved — the deep fault semantics stay covered by
  ``test_remote_backend.py`` against the same rebased double);
- the request plane: N concurrent clients get cell-for-cell parity with
  a one-shot in-process sweep, exact repeats hit the result cache,
  identical concurrent submissions deduplicate onto one job, and a full
  admission queue answers a typed 429 (never a hang);
- per-cell streaming over the per-job write-ahead journal;
- the durability plane: a killed service's request journal replays
  accepted-but-unfinished requests on restart, resuming the per-job
  sweep journal;
- the index plane: served queries stay oracle-identical under
  ``prune=off`` and shared handles reopen on generation changes.
"""

import gzip
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Observatory
from repro.core.framework import DatasetSizes
from repro.errors import (
    JournalError,
    ObservatoryError,
    RequestJournalError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.index import ColumnIndex
from repro.runtime.journal import SweepJournal, iter_records
from repro.service import (
    CharacterizationService,
    HttpPlane,
    RequestJournal,
    ServiceClient,
    ServiceConfig,
    WireResponse,
    cells_from_result,
    pending_requests,
)
from repro.testing import count_service_cells

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
MODELS = ["bert", "taptap"]
PROPS = ["row_order_insignificance", "sample_fidelity"]


def make_observatory(seed: int = 3) -> Observatory:
    return Observatory(seed=seed, sizes=SIZES)


@pytest.fixture()
def service(tmp_path):
    observatory = make_observatory()
    config = ServiceConfig(
        queue_limit=4, runners=2, state_dir=str(tmp_path / "state")
    )
    svc = CharacterizationService(observatory, config=config).start()
    try:
        yield svc, observatory
    finally:
        svc.close()


# ---------------------------------------------------------------------------
# Shared HTTP plane
# ---------------------------------------------------------------------------


class TestHttpPlane:
    def test_routes_params_and_unknown_endpoint(self):
        plane = HttpPlane(name="t")
        plane.route("GET", "/v1/things/{thing_id}", lambda r: {"id": r.params["thing_id"]})
        plane.route("GET", "/plain", lambda r: {"ok": True})
        with plane:
            base = plane.url
            with urllib.request.urlopen(f"{base}/v1/things/abc") as resp:
                assert json.load(resp) == {"id": "abc"}
            with urllib.request.urlopen(f"{base}/plain") as resp:
                assert json.load(resp) == {"ok": True}
            # The pre-extraction loopback 404 wording is plane-wide now.
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404
            assert json.loads(err.value.read()) == {"error": "unknown endpoint"}

    def test_gzip_request_and_response_negotiation(self):
        plane = HttpPlane(name="t")
        plane.route("POST", "/echo", lambda r: {"got": r.json()})
        with plane:
            body = gzip.compress(json.dumps({"x": 1}).encode())
            request = urllib.request.Request(
                f"{plane.url}/echo",
                data=body,
                headers={
                    "Content-Encoding": "gzip",
                    "Accept-Encoding": "gzip",
                    "Content-Type": "application/json",
                },
            )
            with urllib.request.urlopen(request) as resp:
                assert resp.headers.get("Content-Encoding") == "gzip"
                assert json.loads(gzip.decompress(resp.read())) == {"got": {"x": 1}}

    def test_streaming_response_is_ndjson_lines(self):
        plane = HttpPlane(name="t")
        plane.route(
            "GET",
            "/stream",
            lambda r: WireResponse(stream=iter([{"i": 0}, {"i": 1}, {"i": 2}])),
        )
        with plane:
            with urllib.request.urlopen(f"{plane.url}/stream") as resp:
                assert resp.headers.get("Content-Type") == "application/x-ndjson"
                records = [json.loads(line) for line in resp if line.strip()]
        assert records == [{"i": 0}, {"i": 1}, {"i": 2}]

    def test_typed_errors_map_to_wire_statuses(self):
        plane = HttpPlane(name="t")

        def overloaded(_request):
            raise ServiceOverloadedError("full", retry_after=2.5)

        def typed(_request):
            raise ObservatoryError("typed failure")

        def malformed(_request):
            raise ValueError("bad payload")

        plane.route("GET", "/overloaded", overloaded)
        plane.route("GET", "/typed", typed)
        plane.route("GET", "/malformed", malformed)
        with plane:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{plane.url}/overloaded")
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] == "2.5"
            body = json.loads(err.value.read())
            assert body["error_type"] == "ServiceOverloadedError"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{plane.url}/typed")
            assert err.value.code == 400
            assert json.loads(err.value.read())["error_type"] == "ObservatoryError"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{plane.url}/malformed")
            assert err.value.code == 400

    def test_bind_failure_is_typed(self):
        with HttpPlane(name="first") as first:
            port = int(first.url.rsplit(":", 1)[1])
            with pytest.raises(ServiceError):
                HttpPlane(port=port, name="second")


# ---------------------------------------------------------------------------
# Loopback rebase regression
# ---------------------------------------------------------------------------


class TestLoopbackEntrypoint:
    def test_module_entrypoint_still_serves(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.testing.encoder_service", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            # Skip runpy's sys.modules RuntimeWarning lines (merged from
            # stderr) until the announcement.
            line = ""
            for _ in range(10):
                line = proc.stdout.readline()
                if "listening on http://" in line:
                    break
            assert "loopback encoder service listening on http://" in line
            url = line.strip().rsplit(" ", 1)[1]
            # Unknown endpoints answer with the historical wording.
            request = urllib.request.Request(f"{url}/bogus", data=b"{}")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 404
            assert json.loads(err.value.read()) == {"error": "unknown endpoint"}
        finally:
            proc.terminate()
            proc.wait(timeout=10)


# ---------------------------------------------------------------------------
# Request journal
# ---------------------------------------------------------------------------


class TestRequestJournal:
    def test_round_trip_and_replay(self, tmp_path):
        directory = str(tmp_path / "requests")
        journal = RequestJournal.open(directory)
        journal.record_request("a", {"models": ["bert"]})
        journal.record_request("b", {"models": ["t5"]})
        journal.record_done("a")
        journal.close()

        reopened = RequestJournal.open(directory)
        assert reopened.pending == {"b": {"models": ["t5"]}}
        assert reopened.replayed_done == 1
        reopened.close()
        assert pending_requests(directory) == {"b": {"models": ["t5"]}}

    def test_torn_line_is_dropped_not_fatal(self, tmp_path):
        directory = str(tmp_path / "requests")
        journal = RequestJournal.open(directory)
        journal.record_request("a", {"models": ["bert"]})
        journal.record_request("b", {"models": ["t5"]})
        journal.close()
        segments = [
            name for name in os.listdir(directory) if name.endswith(".jsonl")
        ]
        path = os.path.join(directory, segments[0])
        with open(path, "r+b") as handle:
            size = os.path.getsize(path)
            handle.truncate(size - 20)  # tear the tail record
        reopened = RequestJournal.open(directory)
        assert set(reopened.pending) == {"a"}
        reopened.close()

    def test_refuses_foreign_journal_directory(self, tmp_path):
        directory = str(tmp_path / "sweepish")
        sweep_journal = SweepJournal.start(directory, {"seed": 1, "cells": []})
        sweep_journal.close()
        with pytest.raises(RequestJournalError):
            RequestJournal.open(directory)

    def test_sweep_appenders_refused_typed(self, tmp_path):
        journal = RequestJournal.open(str(tmp_path / "requests"))
        with pytest.raises(RequestJournalError):
            journal.record_cell("m", "p", {})
        with pytest.raises(RequestJournalError):
            journal.record_planned([("m", "p")])
        with pytest.raises(RequestJournalError):
            journal.record_failure({})
        journal.close()

    def test_request_journal_error_is_journal_error(self):
        assert issubclass(RequestJournalError, JournalError)
        assert issubclass(ServiceOverloadedError, ObservatoryError)


# ---------------------------------------------------------------------------
# Request plane
# ---------------------------------------------------------------------------


class TestRequestPlane:
    def test_concurrent_clients_match_one_shot_sweep(self, service):
        svc, observatory = service
        results = {}
        errors = []

        def worker(i):
            client = ServiceClient(svc.url)
            try:
                results[i] = client.characterize(MODELS, PROPS, timeout=600)
            except Exception as exc:  # noqa: BLE001 - surfaced by assert below
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        assert not errors
        assert len(results) == 4

        reference = make_observatory().sweep(MODELS, PROPS)
        want = {
            (c.model_name, c.property_name): c.result.to_jsonable()
            for c in reference.cells
        }
        for result in results.values():
            cells = cells_from_result(result)
            got = {
                (c.model_name, c.property_name): c.result.to_jsonable()
                for c in cells
            }
            assert got == want  # cell-for-cell parity, every client

    def test_repeat_client_hits_result_cache(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url)
        try:
            first = client.submit(["bert"], ["row_order_insignificance"])
            assert first["status"] in ("queued", "done")
            client.characterize(["bert"], ["row_order_insignificance"])
            before = client.stats()["cache"]["hits"]
            repeat = client.submit(["bert"], ["row_order_insignificance"])
            assert repeat["status"] == "done"
            assert repeat["cache_hit"] is True
            assert repeat["result"]["cells"]
            assert client.stats()["cache"]["hits"] == before + 1
        finally:
            client.close()

    def test_identical_concurrent_submissions_deduplicate(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url)
        try:
            client.hold()
            first = client.submit(["taptap"], ["sample_fidelity"])
            second = client.submit(["taptap"], ["sample_fidelity"])
            assert second["job_id"] == first["job_id"]
            assert second.get("deduplicated") is True
            client.release()
            final = client.job(first["job_id"], wait=60)
            assert final["status"] == "done"
        finally:
            client.close()

    def test_admission_queue_overflow_is_typed_429_never_a_hang(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url, timeout=30)
        try:
            client.hold()  # park the runners: the queue fills deterministically
            rejected = None
            submitted = []
            # queue_limit=4 (+ up to 2 jobs parked at runner gates): a
            # bounded number of distinct submissions must hit the wall.
            # Property names are only validated at run time, so unique
            # placeholder names make each submission a distinct job.
            for i in range(12):
                try:
                    accepted = client.submit(["bert"], [f"placeholder-{i}"])
                except ServiceOverloadedError as exc:
                    rejected = exc
                    break
                submitted.append(accepted["job_id"])
            assert rejected is not None, "bounded queue never rejected"
            assert rejected.retry_after > 0
            stats = client.stats()
            assert stats["rejected"] >= 1
        finally:
            client.release()
            client.close()

    def test_submit_validation_is_400_not_500(self, service):
        svc, _observatory = service
        request = urllib.request.Request(
            f"{svc.url}/v1/characterize",
            data=json.dumps({"models": []}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_unknown_model_fails_job_typed(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url)
        try:
            with pytest.raises(ServiceError) as err:
                client.characterize(["no-such-model"], PROPS, timeout=120)
            assert "no-such-model" in str(err.value)
        finally:
            client.close()

    def test_streaming_yields_cells_then_summary(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url)
        try:
            records = list(client.stream_characterize(["bert"], PROPS))
            kinds = [r["type"] for r in records]
            assert kinds[-1] == "summary"
            cell_records = [r for r in records if r["type"] == "cell"]
            assert {(r["model"], r["property"]) for r in cell_records} == {
                ("bert", p) for p in PROPS
            }
            assert records[-1]["cells"] == len(cell_records)
            # Streaming an exact repeat serves from cache, same shape.
            cached = list(client.stream_characterize(["bert"], PROPS))
            assert [r["type"] for r in cached][-1] == "summary"
            assert cached[-1].get("cache_hit") is True
        finally:
            client.close()


# ---------------------------------------------------------------------------
# Durability plane: restart replay
# ---------------------------------------------------------------------------


class TestRestartReplay:
    def test_restart_replays_accepted_unfinished_requests(self, tmp_path):
        state_dir = str(tmp_path / "state")
        observatory = make_observatory()
        config = ServiceConfig(queue_limit=4, runners=1, state_dir=state_dir)
        svc = CharacterizationService(observatory, config=config).start()
        client = ServiceClient(svc.url)
        accepted = None
        try:
            client.hold()  # accepted but never run: survives as pending
            accepted = client.submit(MODELS, PROPS)
            assert accepted["status"] == "queued"
        finally:
            client.close()
            svc.close()  # "crash": close without releasing — job unfinished

        assert set(pending_requests(os.path.join(state_dir, "requests"))) == {
            accepted["job_id"]
        }

        # Restart over the same state dir: the journal replays the request.
        svc2 = CharacterizationService(
            make_observatory(), config=ServiceConfig(runners=2, state_dir=state_dir)
        ).start()
        client2 = ServiceClient(svc2.url)
        try:
            final = client2.job(accepted["job_id"], wait=120)
            deadline = time.monotonic() + 300
            while final["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline, "replayed job never finished"
                final = client2.job(accepted["job_id"], wait=10)
            assert final["status"] == "done"
            reference = make_observatory().sweep(MODELS, PROPS)
            want = {
                (c.model_name, c.property_name): c.result.to_jsonable()
                for c in reference.cells
            }
            got = {
                (c.model_name, c.property_name): c.result.to_jsonable()
                for c in cells_from_result(final["result"])
            }
            assert got == want
            assert pending_requests(os.path.join(state_dir, "requests")) == {}
        finally:
            client2.close()
            svc2.close()

    def test_replay_resumes_per_job_sweep_journal(self, tmp_path):
        """A job with journaled cells resumes: finished cells replay."""
        state_dir = str(tmp_path / "state")
        observatory = make_observatory()
        svc = CharacterizationService(
            observatory,
            config=ServiceConfig(queue_limit=4, runners=1, state_dir=state_dir),
        ).start()
        client = ServiceClient(svc.url)
        try:
            result = client.characterize(MODELS, PROPS, timeout=600)
            job_id = client.submit(MODELS, PROPS)["job_id"]
        finally:
            client.close()
            svc.close()
        assert count_service_cells(state_dir) == len(result["cells"])

        # Forge the crash window: mark the finished request pending again
        # (as if the kill landed after the cells were journaled but
        # before the done record), then restart.
        journal = RequestJournal.open(os.path.join(state_dir, "requests"))
        journal.record_request(job_id, {"models": MODELS, "properties": PROPS})
        journal.close()

        svc2 = CharacterizationService(
            make_observatory(), config=ServiceConfig(runners=2, state_dir=state_dir)
        ).start()
        client2 = ServiceClient(svc2.url)
        try:
            final = client2.job(job_id, wait=120)
            deadline = time.monotonic() + 300
            while final["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                final = client2.job(job_id, wait=10)
            assert final["status"] == "done"
            # Every cell came back from the journal, none recomputed.
            assert final["result"]["replayed"] == len(result["cells"])
        finally:
            client2.close()
            svc2.close()


# ---------------------------------------------------------------------------
# Index plane
# ---------------------------------------------------------------------------


class TestIndexPlane:
    def _seeded_vectors(self, n, dim, seed=11):
        rng = np.random.default_rng(seed)
        return [
            (f"col-{i:03d}", rng.standard_normal(dim)) for i in range(n)
        ]

    def test_create_append_query_oracle_parity(self, service, tmp_path):
        svc, _observatory = service
        index_dir = str(tmp_path / "index")
        dim = 16
        client = ServiceClient(svc.url)
        try:
            created = client.index_create(index_dir, dim)
            assert created["rows"] == 0
            items = self._seeded_vectors(20, dim)
            appended = client.index_append(
                index_dir,
                entries=[
                    {"key": key, "vector": vec.tolist()} for key, vec in items
                ],
            )
            assert appended["appended"] == 20
            query = items[3][1] + 0.01
            served = client.index_query(
                index_dir, vector=query.tolist(), k=5, prune="off"
            )
            oracle = ColumnIndex.open(index_dir).query(query, 5, prune="off")
            assert [
                (hit["key"], pytest.approx(hit["score"])) for hit in served["hits"]
            ] == list(oracle)
            info = client.index_info(index_dir)
            assert info["rows"] == 20
        finally:
            client.close()

    def test_shared_handle_reopens_on_generation_change(self, service, tmp_path):
        svc, _observatory = service
        index_dir = str(tmp_path / "index")
        dim = 8
        client = ServiceClient(svc.url)
        try:
            client.index_create(index_dir, dim)
            items = self._seeded_vectors(6, dim, seed=5)
            client.index_append(
                index_dir,
                entries=[
                    {"key": k, "vector": v.tolist()} for k, v in items[:3]
                ],
            )
            first = client.index_info(index_dir)
            # An out-of-band writer advances the on-disk generation.
            external = ColumnIndex.open(index_dir)
            external.append_many(items[3:])
            served = client.index_query(
                index_dir, vector=items[4][1].tolist(), k=6, prune="off"
            )
            assert len(served["hits"]) == 6  # sees the out-of-band rows
            assert served["generation"] > first["generation"]
            info = client.index_info(index_dir)
            assert info["handle_reopens"] >= 1
        finally:
            client.close()

    def test_uploaded_table_columns_feed_the_index(self, service, tmp_path):
        svc, _observatory = service
        index_dir = str(tmp_path / "index")
        client = ServiceClient(svc.url)
        try:
            upload = client.upload_table(
                "orders",
                [
                    ["city", ["ann arbor", "detroit", "lansing", "flint"]],
                    ["total", [12, 18, 7, 22]],
                ],
                caption="order totals by city",
            )
            assert upload == {"table_id": "orders", "rows": 4, "columns": 2}
            executor_dim = make_observatory().executor("t5").dim
            client.index_create(index_dir, executor_dim)
            appended = client.index_append(
                index_dir, table_id="orders", model="t5"
            )
            assert appended["appended"] == 2
            served = client.index_query(
                index_dir,
                table_id="orders",
                column="city",
                model="t5",
                k=2,
                prune="off",
            )
            assert served["hits"][0]["key"] == "orders::city"
        finally:
            client.close()

    def test_unknown_table_and_bad_requests_are_400(self, service):
        svc, _observatory = service
        client = ServiceClient(svc.url)
        try:
            with pytest.raises(ServiceError):
                client.table("never-uploaded")
            with pytest.raises(ServiceError):
                client.index_query("/nonexistent-dir", vector=[1.0], k=1)
        finally:
            client.close()


# ---------------------------------------------------------------------------
# CLI + chaos helpers
# ---------------------------------------------------------------------------


class TestServeCli:
    def test_serve_announces_and_shuts_down_cleanly(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "--tables",
                "3",
                "--permutations",
                "4",
                "serve",
                "--port",
                "0",
                "--state-dir",
                str(tmp_path / "state"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            line = proc.stdout.readline()
            assert "characterization service listening on http://" in line
            url = line.strip().rsplit(" ", 1)[1]
            client = ServiceClient(url)
            try:
                assert client.health()["ok"] is True
            finally:
                client.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

    def test_count_service_cells_empty_and_missing(self, tmp_path):
        assert count_service_cells(str(tmp_path)) == 0
        assert count_service_cells(str(tmp_path / "missing")) == 0


class TestJournalIterRecords:
    def test_iter_records_reads_live_part_segments(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = SweepJournal.start(directory, {"seed": 0, "cells": []})
        journal.record_cell("m", "p", {"model": "m", "property": "p"})
        # Not closed: the active .part segment must already be readable.
        records = list(iter_records(directory))
        assert [r["type"] for r in records] == ["cell"]
        journal.close()
        assert [r["type"] for r in iter_records(directory)] == ["cell"]
