"""Tests for the numpy transformer encoder."""

import dataclasses

import numpy as np

from repro.models.config import AttentionMask, ModelConfig, OutputNorm, PositionKind
from repro.models.encoder import Encoder
from repro.models.serializers import Token, TokenRole


def tokens_of(pieces, rows=None, cols=None, roles=None):
    n = len(pieces)
    rows = rows or [-1] * n
    cols = cols or [-1] * n
    roles = roles or [TokenRole.VALUE] * n
    return [Token(p, role, row=r, col=c) for p, role, r, c in zip(pieces, roles, rows, cols)]


BASE = ModelConfig(name="enc-test", dim=32, n_layers=2, n_heads=4)


def test_encode_shape_and_determinism():
    encoder = Encoder(BASE)
    toks = tokens_of(["a", "b", "c"])
    out1 = encoder.encode(toks)
    out2 = Encoder(BASE).encode(toks)
    assert out1.shape == (3, 32)
    assert np.allclose(out1, out2)


def test_encode_empty():
    assert Encoder(BASE).encode([]).shape == (0, 32)


def test_different_seed_names_differ():
    toks = tokens_of(["a", "b"])
    a = Encoder(BASE).encode(toks)
    b = Encoder(dataclasses.replace(BASE, name="other", seed_name="other")).encode(toks)
    assert not np.allclose(a, b)


def test_seed_name_survives_config_replace():
    """Derived seed_name sticks through dataclasses.replace (config variants
    of one model keep that model's weights unless explicitly reseeded)."""
    variant = dataclasses.replace(BASE, position_scale=0.9)
    assert variant.seed_name == BASE.seed_name


def test_position_blind_config_is_permutation_equivariant():
    cfg = dataclasses.replace(BASE, position_kind=PositionKind.NONE, position_scale=0.0)
    encoder = Encoder(cfg)
    toks = tokens_of(["a", "b", "c", "d"])
    out = encoder.encode(toks)
    perm = [2, 0, 3, 1]
    permuted_out = encoder.encode([toks[i] for i in perm])
    assert np.allclose(out[perm], permuted_out, atol=1e-10)


def test_absolute_positions_break_equivariance():
    cfg = dataclasses.replace(BASE, position_kind=PositionKind.ABSOLUTE, position_scale=0.5)
    encoder = Encoder(cfg)
    toks = tokens_of(["a", "b", "c", "d"])
    out = encoder.encode(toks)
    perm = [2, 0, 3, 1]
    permuted_out = encoder.encode([toks[i] for i in perm])
    assert not np.allclose(out[perm], permuted_out)


def test_row_column_positions_affect_embedding():
    cfg = dataclasses.replace(
        BASE,
        position_kind=PositionKind.ROW_COLUMN,
        row_position_scale=0.5,
        column_position_scale=0.5,
    )
    encoder = Encoder(cfg)
    a = encoder.encode(tokens_of(["a"], rows=[0], cols=[0]))
    b = encoder.encode(tokens_of(["a"], rows=[1], cols=[0]))
    c = encoder.encode(tokens_of(["a"], rows=[0], cols=[1]))
    assert not np.allclose(a, b)
    assert not np.allclose(a, c)


def test_relative_bias_shape_and_decay():
    cfg = dataclasses.replace(BASE, position_kind=PositionKind.RELATIVE, relative_tau=4.0)
    encoder = Encoder(cfg)
    bias = encoder.attention_bias(tokens_of(["a", "b", "c"]))
    assert bias.shape == (3, 3)
    assert bias[0, 0] == 0.0
    assert bias[0, 2] < bias[0, 1] < 0.0


def test_column_local_mask():
    cfg = dataclasses.replace(BASE, attention_mask=AttentionMask.COLUMN_LOCAL)
    encoder = Encoder(cfg)
    toks = tokens_of(["a", "b", "c"], rows=[0, 0, 0], cols=[0, 1, 0])
    mask = encoder.attention_mask(toks)
    assert mask[0, 2] and mask[2, 0]  # same column
    assert not mask[0, 1]  # different columns


def test_row_local_mask():
    cfg = dataclasses.replace(BASE, attention_mask=AttentionMask.ROW_LOCAL)
    encoder = Encoder(cfg)
    toks = tokens_of(["a", "b", "c"], rows=[0, 1, 0], cols=[0, 0, 1])
    mask = encoder.attention_mask(toks)
    assert mask[0, 2]
    assert not mask[0, 1]


def test_global_specials_visible_everywhere():
    cfg = dataclasses.replace(BASE, attention_mask=AttentionMask.COLUMN_LOCAL)
    encoder = Encoder(cfg)
    toks = [Token("[CLS]", TokenRole.SPECIAL)] + tokens_of(["a", "b"], rows=[0, 0], cols=[0, 1])
    mask = encoder.attention_mask(toks)
    assert mask[1, 0] and mask[0, 1] and mask[2, 0]


def test_column_local_mask_blocks_context_mixing():
    """TaBERT's mechanism: another column's content cannot reach this one."""
    cfg = dataclasses.replace(
        BASE,
        attention_mask=AttentionMask.COLUMN_LOCAL,
        position_kind=PositionKind.NONE,
        position_scale=0.0,
    )
    encoder = Encoder(cfg)
    col0 = tokens_of(["a", "b"], rows=[0, 1], cols=[0, 0])
    with_other = col0 + tokens_of(["x", "y"], rows=[0, 1], cols=[1, 1])
    out_alone = encoder.encode(col0)
    out_together = encoder.encode(with_other)
    assert np.allclose(out_alone, out_together[:2], atol=1e-10)


def test_output_norm_none_changes_scale():
    normed = Encoder(BASE).encode(tokens_of(["a", "b"]))
    raw_cfg = dataclasses.replace(BASE, output_norm=OutputNorm.NONE)
    raw = Encoder(raw_cfg).encode(tokens_of(["a", "b"]))
    # layer-normed token rows have norm ~= sqrt(dim)
    assert np.allclose(np.linalg.norm(normed, axis=1), np.sqrt(32), rtol=0.01)
    assert not np.allclose(np.linalg.norm(raw, axis=1), np.sqrt(32), rtol=0.01)


def test_output_scale():
    base = Encoder(BASE).encode(tokens_of(["a"]))
    scaled_cfg = dataclasses.replace(BASE, output_scale=3.0)
    scaled = Encoder(scaled_cfg).encode(tokens_of(["a"]))
    assert np.allclose(scaled, base * 3.0)


def test_anisotropy_adds_shared_direction():
    cfg = dataclasses.replace(BASE, anisotropy=10.0, anisotropy_shift=1.0)
    encoder = Encoder(cfg)
    out = encoder.encode(tokens_of(["a", "b", "c"]))
    direction = encoder.weights.anisotropy_direction
    projections = out @ direction
    assert np.all(projections > 1.0)  # strong common component


def test_attention_gain_changes_output():
    toks = tokens_of(["a", "b", "c"])
    a = Encoder(BASE).encode(toks)
    b = Encoder(dataclasses.replace(BASE, attention_gain=3.0)).encode(toks)
    assert not np.allclose(a, b)
