"""Write-ahead sweep journal: round-trip, recovery, resume, fault policy.

Covers the durability contract end to end: journal records survive
arbitrary byte-level damage (torn tails, garbage lines) losing at most
the damaged record; a resumed sweep replays completed cells and
dispatches only the remainder, bit-identically, under both engines; a
journal written for a different plan is refused; and the unified
FaultPolicy degrades or aborts failing cells with typed errors.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Observatory, RuntimeConfig
from repro.analysis.report import render_sweep
from repro.core.framework import DatasetSizes
from repro.errors import (
    CellExecutionError,
    DeadlineExceededError,
    JournalError,
    ObservatoryError,
    StaleJournalError,
)
from repro.runtime.faults import Deadline, FaultPolicy
from repro.runtime.journal import (
    PLAN_FILE,
    SweepJournal,
    plan_fingerprint,
    record_digest,
)
from repro.testing.chaos import count_journal_cells, kill_when_journal_reaches

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
MODELS = ["bert", "taptap"]
PROPS = ["row_order_insignificance", "sample_fidelity"]
PLAN = {"seed": 3, "models": MODELS, "properties": PROPS}


def make_observatory(**runtime_kwargs) -> Observatory:
    return Observatory(seed=3, sizes=SIZES, runtime=RuntimeConfig(**runtime_kwargs))


def cell_dicts(sweep):
    return {
        (c.model_name, c.property_name): c.result.to_dict() for c in sweep.cells
    }


def segment_paths(directory):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("segment-")
    )


@pytest.fixture(scope="module")
def reference_sweep():
    """The no-journal ground truth every resumed sweep must match."""
    return make_observatory(max_workers=1).sweep(MODELS, PROPS)


class TestJournalRoundTrip:
    def test_record_close_resume(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_planned([("bert", "p1"), ("taptap", "p2")])
        journal.record_cell("bert", "p1", {"value": 1.5})
        journal.record_cell("taptap", "p2", {"value": [1, 2, 3]})
        journal.close()
        # Clean close seals the segment (no .part left behind).
        assert all(p.endswith(".jsonl") for p in segment_paths(str(tmp_path)))
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert resumed.completed == {
            ("bert", "p1"): {"value": 1.5},
            ("taptap", "p2"): {"value": [1, 2, 3]},
        }
        assert resumed.dropped_records == 0

    def test_each_session_gets_its_own_segment(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_cell("bert", "p1", {"v": 1})
        journal.close()
        second = SweepJournal.resume(str(tmp_path), PLAN)
        second.record_cell("bert", "p2", {"v": 2})
        second.close()
        assert len(segment_paths(str(tmp_path))) == 2
        third = SweepJournal.resume(str(tmp_path), PLAN)
        assert set(third.completed) == {("bert", "p1"), ("bert", "p2")}

    def test_first_record_wins(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_cell("bert", "p1", {"v": "first"})
        journal.record_cell("bert", "p1", {"v": "second"})
        journal.close()
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert resumed.completed[("bert", "p1")] == {"v": "first"}

    def test_failure_records_are_audited_not_replayed(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_failure(
            {"model": "bert", "property": "p1", "error": "X", "message": "m"}
        )
        journal.close()
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert resumed.completed == {}  # the failed cell gets retried

    def test_no_append_session_leaves_no_segment(self, tmp_path):
        SweepJournal.start(str(tmp_path), PLAN).close()
        assert segment_paths(str(tmp_path)) == []

    def test_start_discards_previous_journal(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_cell("bert", "p1", {"v": 1})
        journal.close()
        SweepJournal.start(str(tmp_path), PLAN).close()
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert resumed.completed == {}

    @settings(max_examples=25, deadline=None)
    @given(
        cells=st.dictionaries(
            st.tuples(
                st.text(min_size=1, max_size=8),
                st.text(min_size=1, max_size=8),
            ),
            st.dictionaries(
                st.text(max_size=8),
                st.one_of(
                    st.integers(),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=16),
                    st.lists(st.integers(), max_size=4),
                ),
                max_size=4,
            ),
            max_size=8,
        )
    )
    def test_hypothesis_round_trip(self, cells):
        with tempfile.TemporaryDirectory() as directory:
            journal = SweepJournal.start(directory, PLAN)
            for (model, prop), payload in cells.items():
                journal.record_cell(model, prop, payload)
            journal.close()
            resumed = SweepJournal.resume(directory, PLAN)
            assert resumed.completed == cells
            assert resumed.dropped_records == 0


class TestJournalRecovery:
    def write_three(self, directory):
        journal = SweepJournal.start(directory, PLAN)
        journal.record_cell("bert", "p1", {"v": 1})
        journal.record_cell("bert", "p2", {"v": 2})
        journal.record_cell("bert", "p3", {"v": 3})
        journal.close()
        return segment_paths(directory)[0]

    def test_truncated_tail_loses_only_the_torn_record(self, tmp_path):
        segment = self.write_three(str(tmp_path))
        with open(segment, "r+b") as handle:
            size = os.path.getsize(segment)
            handle.truncate(size - 10)  # tear the last record mid-line
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert set(resumed.completed) == {("bert", "p1"), ("bert", "p2")}
        assert resumed.dropped_records == 1

    def test_garbage_line_skipped_records_after_it_survive(self, tmp_path):
        segment = self.write_three(str(tmp_path))
        lines = open(segment, encoding="utf-8").read().splitlines()
        lines.insert(1, "this is not json {{{")
        with open(segment, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert len(resumed.completed) == 3  # all three real records kept
        assert resumed.dropped_records == 1

    def test_tampered_record_fails_its_digest(self, tmp_path):
        segment = self.write_three(str(tmp_path))
        lines = open(segment, encoding="utf-8").read().splitlines()
        envelope = json.loads(lines[0])
        envelope["r"]["cell"]["v"] = 999  # bit-flip without re-digesting
        lines[0] = json.dumps(envelope)
        with open(segment, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert ("bert", "p1") not in resumed.completed
        assert resumed.dropped_records == 1

    def test_unsealed_part_segment_is_replayed(self, tmp_path):
        journal = SweepJournal.start(str(tmp_path), PLAN)
        journal.record_cell("bert", "p1", {"v": 1})
        # No close(): simulates SIGKILL — the .part tail must replay.
        assert segment_paths(str(tmp_path))[0].endswith(".part")
        resumed = SweepJournal.resume(str(tmp_path), PLAN)
        assert resumed.completed == {("bert", "p1"): {"v": 1}}
        journal.close()

    def test_resume_without_journal_is_typed(self, tmp_path):
        with pytest.raises(JournalError, match="no sweep journal"):
            SweepJournal.resume(str(tmp_path / "missing"), PLAN)

    def test_corrupt_header_is_typed(self, tmp_path):
        SweepJournal.start(str(tmp_path), PLAN).close()
        with open(os.path.join(str(tmp_path), PLAN_FILE), "w") as handle:
            handle.write("{torn")
        with pytest.raises(JournalError, match="unreadable"):
            SweepJournal.resume(str(tmp_path), PLAN)

    def test_stale_fingerprint_refused(self, tmp_path):
        SweepJournal.start(str(tmp_path), PLAN).close()
        other = dict(PLAN, seed=4)
        with pytest.raises(StaleJournalError, match="different sweep plan"):
            SweepJournal.resume(str(tmp_path), other)

    def test_fingerprint_is_key_order_insensitive(self):
        reordered = {key: PLAN[key] for key in reversed(list(PLAN))}
        assert plan_fingerprint(PLAN) == plan_fingerprint(reordered)

    def test_record_digest_is_canonical(self):
        assert record_digest({"a": 1, "b": 2}) == record_digest({"b": 2, "a": 1})


class TestSweepResume:
    def test_full_resume_is_bit_identical_and_dispatches_nothing(
        self, tmp_path, reference_sweep
    ):
        journal_dir = str(tmp_path / "journal")
        first = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir
        )
        assert first.replayed == 0
        assert cell_dicts(first) == cell_dicts(reference_sweep)
        resumed = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir, resume=True
        )
        assert resumed.replayed == len(first.cells)
        assert cell_dicts(resumed) == cell_dicts(reference_sweep)
        assert "Replayed" in render_sweep(resumed)

    def test_partial_journal_dispatches_only_the_remainder(
        self, tmp_path, reference_sweep
    ):
        journal_dir = str(tmp_path / "journal")
        first = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir
        )
        # Keep only the first journaled cell: truncate the sealed
        # segment after its first line (a legal torn state).
        segment = segment_paths(journal_dir)[0]
        first_line = open(segment, encoding="utf-8").read().splitlines()[1]
        with open(segment, "w", encoding="utf-8") as handle:
            handle.write(first_line + "\n")
        assert count_journal_cells(journal_dir) == 1
        resumed = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir, resume=True
        )
        assert resumed.replayed == 1
        assert len(resumed.cells) == len(first.cells)
        assert cell_dicts(resumed) == cell_dicts(reference_sweep)

    def test_resume_refuses_a_different_plan(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir
        )
        other = Observatory(
            seed=4, sizes=SIZES, runtime=RuntimeConfig(max_workers=1)
        )
        with pytest.raises(StaleJournalError):
            other.sweep(MODELS, PROPS, journal_dir=journal_dir, resume=True)

    def test_resume_requires_journal_dir(self):
        with pytest.raises(ObservatoryError, match="journal_dir"):
            make_observatory().sweep(MODELS, PROPS, resume=True)


class TestFaultPolicy:
    def test_degrade_records_named_failures_and_finishes(self, monkeypatch):
        from repro.core import framework

        real = framework.Observatory.characterize

        def flaky(self, model_name, property_name, **kwargs):
            if property_name == "sample_fidelity":
                raise ValueError("injected cell fault")
            return real(self, model_name, property_name, **kwargs)

        monkeypatch.setattr(framework.Observatory, "characterize", flaky)
        sweep = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, on_error="degrade"
        )
        failed = {(f.model_name, f.property_name) for f in sweep.failures}
        assert failed == {("bert", "sample_fidelity")}
        failure = sweep.failures[0]
        assert failure.error == "CellExecutionError"
        assert "injected cell fault" in failure.message
        assert isinstance(failure.cause, CellExecutionError)
        assert "Degraded cells" in render_sweep(sweep)
        ran = {(c.model_name, c.property_name) for c in sweep.cells}
        assert ("taptap", "row_order_insignificance") in ran

    def test_abort_chains_the_original_cause(self, monkeypatch):
        from repro.core import framework

        def broken(self, model_name, property_name, **kwargs):
            raise ValueError("injected cell fault")

        monkeypatch.setattr(framework.Observatory, "characterize", broken)
        with pytest.raises(CellExecutionError) as info:
            make_observatory(max_workers=1).sweep(MODELS, PROPS)
        assert isinstance(info.value.__cause__, ValueError)

    def test_expired_deadline_aborts_typed(self):
        policy = FaultPolicy(deadline=1e-6)
        with pytest.raises(DeadlineExceededError):
            make_observatory(max_workers=1).sweep(
                MODELS, PROPS, fault_policy=policy
            )

    def test_expired_deadline_degrades_every_cell(self):
        policy = FaultPolicy(deadline=1e-6)
        sweep = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, fault_policy=policy, on_error="degrade"
        )
        assert sweep.cells == []
        assert sweep.failures
        assert all(f.error == "DeadlineExceededError" for f in sweep.failures)

    def test_policy_round_trips_and_rejects_unknown_keys(self):
        policy = FaultPolicy(deadline=30.0, scheduler_retries=1)
        assert FaultPolicy.from_jsonable(policy.to_jsonable()) == policy
        with pytest.raises(ValueError, match="unknown"):
            FaultPolicy.from_jsonable({"bogus_knob": 1})

    def test_deadline_bound_and_epoch(self):
        unbounded = Deadline(None)
        assert unbounded.bound(5.0) == 5.0
        assert not unbounded.expired()
        assert unbounded.epoch() is None
        live = Deadline.start(60.0)
        assert 0.0 < live.bound(5.0) <= 5.0
        assert Deadline.from_epoch(live.epoch()).remaining() > 0


CHILD_SCRIPT = """
import sys
from repro import Observatory, RuntimeConfig
from repro.core.framework import DatasetSizes

sizes = DatasetSizes(
    wikitables_tables=3, spider_databases=2, nextiajd_pairs=6,
    sotab_tables=4, n_permutations=4, min_rows=4, max_rows=6,
)
observatory = Observatory(seed=3, sizes=sizes, runtime=RuntimeConfig(max_workers=1))
observatory.sweep(
    ["bert", "taptap"],
    ["row_order_insignificance", "sample_fidelity"],
    journal_dir=sys.argv[1],
)
print("CHILD_FINISHED")
"""


class TestKillResume:
    """The acceptance scenario: SIGKILL mid-sweep, resume bit-identically."""

    @pytest.fixture()
    def killed_journal(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, journal_dir],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        kill_when_journal_reaches(journal_dir, 1, child.pid)
        child.wait(timeout=180)
        assert child.returncode == -signal.SIGKILL
        done = count_journal_cells(journal_dir)
        assert done >= 1  # the watcher fired after durable progress
        return journal_dir, done

    def test_thread_and_process_resume_bit_identical(
        self, killed_journal, reference_sweep, tmp_path
    ):
        journal_dir, done = killed_journal
        expected = cell_dicts(reference_sweep)
        process_dir = str(tmp_path / "process-copy")
        shutil.copytree(journal_dir, process_dir)

        resumed = make_observatory(max_workers=1).sweep(
            MODELS, PROPS, journal_dir=journal_dir, resume=True
        )
        assert resumed.replayed == done  # only the remainder was dispatched
        assert cell_dicts(resumed) == expected

        if done < len(expected):
            # The fingerprint excludes the engine: the same journal must
            # resume under the process scheduler, bit-identically.
            via_process = make_observatory(max_workers=2).sweep(
                MODELS,
                PROPS,
                execution="process",
                journal_dir=process_dir,
                resume=True,
            )
            assert via_process.replayed == done
            assert cell_dicts(via_process) == expected
