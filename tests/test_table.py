"""Tests for the Table data structure."""

import pytest

from repro.errors import TableError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.values import DataType


def test_ragged_rows_rejected(tennis_table):
    with pytest.raises(TableError):
        Table(tennis_table.schema, [("a", "b")])


def test_from_columns_unequal_lengths():
    with pytest.raises(TableError):
        Table.from_columns([("a", [1, 2]), ("b", [1])])


def test_from_columns_empty():
    with pytest.raises(TableError):
        Table.from_columns([])


def test_from_columns_infers_types(tennis_table):
    assert tennis_table.schema[0].data_type == DataType.TEXT
    assert tennis_table.schema[2].data_type == DataType.INTEGER


def test_basic_accessors(tennis_table):
    assert tennis_table.num_rows == len(tennis_table) == 4
    assert tennis_table.num_columns == 3
    assert tennis_table.header == ["player", "country", "titles"]
    assert tennis_table.cell(1, 0) == "Rafael Nadal"
    assert tennis_table.column_values(2) == [103, 92, 94, 46]
    assert tennis_table.column_by_name("country")[0] == "Switzerland"


def test_cell_out_of_range(tennis_table):
    with pytest.raises(TableError):
        tennis_table.cell(10, 0)
    with pytest.raises(TableError):
        tennis_table.column_values(7)


def test_column_multiset():
    table = Table.from_columns([("x", ["a", "b", "a", None])])
    assert table.column_multiset(0) == {"a": 2, "b": 1, "": 1}


def test_reorder_rows_moves_entity_links(tennis_table):
    linked = Table(
        tennis_table.schema,
        tennis_table.rows,
        entity_links={(0, 0): "e:federer", (3, 0): "e:murray"},
        table_id="t",
    )
    shuffled = linked.reorder_rows([3, 2, 1, 0])
    assert shuffled.cell(0, 0) == "Andy Murray"
    assert shuffled.entity_links[(0, 0)] == "e:murray"
    assert shuffled.entity_links[(3, 0)] == "e:federer"


def test_reorder_rows_rejects_bad_permutation(tennis_table):
    with pytest.raises(TableError):
        tennis_table.reorder_rows([0, 1, 2])


def test_reorder_columns_moves_schema_and_links(tennis_table):
    linked = Table(
        tennis_table.schema,
        tennis_table.rows,
        entity_links={(0, 0): "e:federer"},
    )
    shuffled = linked.reorder_columns([2, 0, 1])
    assert shuffled.header == ["titles", "player", "country"]
    assert shuffled.cell(0, 1) == "Roger Federer"
    assert shuffled.entity_links == {(0, 1): "e:federer"}


def test_row_shuffle_preserves_column_fingerprints(tennis_table):
    shuffled = tennis_table.reorder_rows([2, 0, 3, 1])
    for c in range(tennis_table.num_columns):
        assert tennis_table.column_fingerprint(c) == shuffled.column_fingerprint(c)


def test_project(tennis_table):
    projected = tennis_table.project([1])
    assert projected.header == ["country"]
    assert projected.num_rows == 4


def test_take_rows_allows_duplicates(tennis_table):
    taken = tennis_table.take_rows([0, 0, 2])
    assert taken.num_rows == 3
    assert taken.cell(0, 0) == taken.cell(1, 0)


def test_take_rows_out_of_range(tennis_table):
    with pytest.raises(TableError):
        tennis_table.take_rows([9])


def test_head(tennis_table):
    assert tennis_table.head(2).num_rows == 2
    assert tennis_table.head(99).num_rows == 4


def test_rename_column(tennis_table):
    renamed = tennis_table.rename_column(1, "nation")
    assert renamed.header[1] == "nation"
    assert tennis_table.header[1] == "country"  # original untouched


def test_replace_column(tennis_table):
    replaced = tennis_table.replace_column(2, [1, 2, 3, 4])
    assert replaced.column_values(2) == [1, 2, 3, 4]
    with pytest.raises(TableError):
        tennis_table.replace_column(2, [1, 2])


def test_replace_column_with_schema(tennis_table):
    new_schema = ColumnSchema("wins", DataType.INTEGER)
    replaced = tennis_table.replace_column(2, [1, 2, 3, 4], new_schema=new_schema)
    assert replaced.header[2] == "wins"


def test_subject_column_fallback_first_textual():
    table = Table.from_columns([("id", [1, 2]), ("name", ["a", "b"])])
    assert table.subject_column_index() == 1  # first textual column


def test_subject_column_annotated():
    schema = TableSchema(
        [ColumnSchema("a", DataType.TEXT), ColumnSchema("b", DataType.TEXT, is_subject=True)]
    )
    table = Table(schema, [("x", "y")])
    assert table.subject_column_index() == 1


def test_entity_links_validated():
    schema = TableSchema.from_names(["a"])
    with pytest.raises(TableError):
        Table(schema, [("x",)], entity_links={(5, 0): "e"})


def test_single_column_table(tennis_table):
    single = tennis_table.single_column_table(1)
    assert single.num_columns == 1
    assert single.header == ["country"]


def test_to_markdown(tennis_table):
    text = tennis_table.to_markdown(max_rows=2)
    assert "| player | country | titles |" in text
    assert "more rows" in text


def test_equality(tennis_table):
    same = Table(tennis_table.schema, tennis_table.rows, caption=tennis_table.caption)
    assert tennis_table == same
    assert tennis_table != tennis_table.head(2)


def test_infer_types_updates_schema():
    schema = TableSchema.from_names(["n"])
    table = Table(schema, [("1",), ("2",)])
    assert table.infer_types().schema[0].data_type == DataType.INTEGER
