"""Smoke tests: the quick examples must run end to end.

Only the two fastest examples run here (the others exercise the same API
surfaces at larger scale and are validated manually / by benchmarks).
"""

import runpy
import sys

import pytest

pytestmark = pytest.mark.integration


def run_example(path, argv=None):
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("examples/quickstart.py")
    out = capsys.readouterr().out
    assert "row-order insignificance" in out
    assert "column/cosine" in out


def test_custom_model_runs(capsys):
    run_example("examples/custom_model.py")
    out = capsys.readouterr().out
    assert "bag-of-tokens" in out
    assert "median=1.0000" in out
