"""Tests for multivariate coefficients of variation."""

import numpy as np
import pytest

from repro.core.measures.mcv import (
    MCV_VARIANTS,
    albert_zhang_mcv,
    reyment_mcv,
    van_valen_mcv,
    voinov_nikulin_mcv,
)
from repro.errors import MeasureError
from repro.seeding import rng_for


def test_az_zero_for_identical_vectors():
    samples = np.tile([1.0, 2.0, 3.0], (5, 1))
    assert albert_zhang_mcv(samples) == pytest.approx(0.0, abs=1e-12)


def test_az_univariate_matches_cv():
    rng = rng_for("mcv-test", 1)
    values = rng.normal(10.0, 2.0, size=500)[:, None]
    expected_cv = values.std(ddof=1) / abs(values.mean())
    assert albert_zhang_mcv(values) == pytest.approx(expected_cv, rel=1e-9)


def test_az_isotropic_closed_form():
    """For x ~ N(mu, s^2 I): gamma = s * |mu| / |mu|^2 = s / |mu|."""
    rng = rng_for("mcv-test", 2)
    mu = np.array([3.0, 4.0])  # |mu| = 5
    s = 0.5
    samples = mu + s * rng.standard_normal((20000, 2))
    assert albert_zhang_mcv(samples) == pytest.approx(s / 5.0, rel=0.05)


def test_az_handles_singular_covariance():
    """n < d: the covariance is singular, AZ must still work (the paper's
    stated reason for choosing it)."""
    rng = rng_for("mcv-test", 3)
    samples = rng.standard_normal((5, 64)) + 10.0
    value = albert_zhang_mcv(samples)
    assert np.isfinite(value) and value > 0


def test_az_scale_invariance():
    rng = rng_for("mcv-test", 4)
    samples = rng.standard_normal((30, 8)) + 5.0
    assert albert_zhang_mcv(samples * 7.3) == pytest.approx(
        albert_zhang_mcv(samples), rel=1e-9
    )


def test_az_rotation_invariance():
    rng = rng_for("mcv-test", 5)
    samples = rng.standard_normal((50, 6)) + 4.0
    q, _ = np.linalg.qr(rng.standard_normal((6, 6)))
    assert albert_zhang_mcv(samples @ q) == pytest.approx(
        albert_zhang_mcv(samples), rel=1e-9
    )


def test_az_zero_mean_raises():
    samples = np.array([[1.0, 0.0], [-1.0, 0.0]])
    with pytest.raises(MeasureError):
        albert_zhang_mcv(samples)


def test_az_needs_two_samples():
    with pytest.raises(MeasureError):
        albert_zhang_mcv(np.ones((1, 4)))
    with pytest.raises(MeasureError):
        albert_zhang_mcv(np.ones(4))


def test_reyment_degenerates_on_singular():
    rng = rng_for("mcv-test", 6)
    samples = rng.standard_normal((5, 64)) + 10.0  # n << d
    assert reyment_mcv(samples) == 0.0


def test_van_valen_always_defined():
    rng = rng_for("mcv-test", 7)
    samples = rng.standard_normal((5, 64)) + 10.0
    assert van_valen_mcv(samples) > 0


def test_voinov_nikulin_raises_on_singular():
    rng = rng_for("mcv-test", 8)
    samples = rng.standard_normal((5, 64)) + 10.0
    with pytest.raises(MeasureError):
        voinov_nikulin_mcv(samples)


def test_voinov_nikulin_on_full_rank():
    rng = rng_for("mcv-test", 9)
    samples = rng.standard_normal((500, 4)) + 10.0
    assert voinov_nikulin_mcv(samples) > 0


def test_variant_registry():
    assert set(MCV_VARIANTS) == {"albert_zhang", "reyment", "van_valen", "voinov_nikulin"}


def test_az_directional_variance_raises_mcv():
    """Variance aligned with the mean direction dominates gamma — the
    mechanism behind T5's high MCV at high cosine similarity."""
    rng = rng_for("mcv-test", 10)
    mu = np.zeros(16)
    mu[0] = 10.0
    noise = rng.standard_normal((2000, 16)) * 0.1
    aligned = mu + noise * 0 + np.outer(rng.standard_normal(2000), mu / 10.0)
    orthogonal = mu + np.concatenate(
        [np.zeros((2000, 1)), rng.standard_normal((2000, 15))], axis=1
    )
    assert albert_zhang_mcv(aligned) > albert_zhang_mcv(orthogonal)
