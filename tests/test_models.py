"""Tests for the model base class, zoo, and registry."""

import numpy as np
import pytest

from repro.core.levels import EmbeddingLevel
from repro.errors import ModelError, UnsupportedLevelError
from repro.models.config import ModelConfig
from repro.models.base import SurrogateModel
from repro.models.registry import (
    LANGUAGE_MODELS,
    TABLE_MODELS,
    available_models,
    load_model,
    register_model,
    unregister_model,
)
from repro.relational.table import Table
from tests.conftest import cached_model


def test_registry_lists_nine_models():
    names = available_models()
    assert len([n for n in names if n in LANGUAGE_MODELS + TABLE_MODELS]) == 9
    assert names[:3] == ["bert", "roberta", "t5"]


def test_load_unknown_model():
    with pytest.raises(ModelError):
        load_model("gpt-17")


def test_register_and_unregister():
    register_model("custom-test", lambda: load_model("bert"))
    try:
        assert "custom-test" in available_models()
        with pytest.raises(ModelError):
            register_model("custom-test", lambda: None)
        register_model("custom-test", lambda: load_model("t5"), overwrite=True)
    finally:
        unregister_model("custom-test")
    assert "custom-test" not in available_models()


@pytest.mark.parametrize("name", LANGUAGE_MODELS + TABLE_MODELS)
def test_every_model_embeds_its_levels(name, tennis_table):
    model = cached_model(name)
    levels = model.supported_levels()
    if EmbeddingLevel.COLUMN in levels:
        cols = model.embed_columns(tennis_table)
        assert cols.shape == (3, model.dim)
        assert np.isfinite(cols).all()
    else:
        with pytest.raises(UnsupportedLevelError):
            model.embed_columns(tennis_table)
    if EmbeddingLevel.ROW in levels:
        rows = model.embed_rows(tennis_table)
        assert rows.shape[1] == model.dim
        assert rows.shape[0] == 4
    if EmbeddingLevel.TABLE in levels:
        assert model.embed_table(tennis_table).shape == (model.dim,)


@pytest.mark.parametrize("name", ["bert", "tapas", "doduo"])
def test_embeddings_deterministic(name, tennis_table):
    a = load_model(name)
    b = load_model(name)
    assert np.allclose(a.embed_columns(tennis_table), b.embed_columns(tennis_table))


def test_models_differ_from_each_other(tennis_table):
    bert_cols = cached_model("bert").embed_columns(tennis_table)
    t5_cols = cached_model("t5").embed_columns(tennis_table)
    assert not np.allclose(bert_cols, t5_cols)


def test_paper_level_exclusions():
    assert not cached_model("tabert").supports(EmbeddingLevel.CELL)
    assert not cached_model("tabert").supports(EmbeddingLevel.ENTITY)
    assert cached_model("taptap").supported_levels() == frozenset({EmbeddingLevel.ROW})
    assert not cached_model("doduo").supports(EmbeddingLevel.TABLE)
    assert not cached_model("turl").supports(EmbeddingLevel.ROW)


def test_embed_cells(tennis_table):
    model = cached_model("bert")
    cells = model.embed_cells(tennis_table, [(0, 0), (1, 2)])
    assert set(cells) == {(0, 0), (1, 2)}
    assert cells[(0, 0)].shape == (model.dim,)


def test_embed_entities(tennis_table):
    linked = Table(
        tennis_table.schema,
        tennis_table.rows,
        entity_links={(0, 0): "tennis:Roger Federer", (1, 0): "tennis:Rafael Nadal"},
        table_id="ent-test",
    )
    out = cached_model("bert").embed_entities(linked)
    assert set(out) == {"tennis:Roger Federer", "tennis:Rafael Nadal"}


def test_embed_value_column_shapes():
    model = cached_model("bert")
    emb = model.embed_value_column("country", ["Spain", "France", "Italy"])
    assert emb.shape == (model.dim,)
    with pytest.raises(ModelError):
        model.embed_value_column("country", [])


def test_embed_value_column_chunking_consistency():
    """Long columns chunk; the aggregate should stay close to a direct pass."""
    model = cached_model("bert")
    values = [f"item {i}" for i in range(400)]  # forces multiple chunks
    emb = model.embed_value_column("things", values)
    assert np.isfinite(emb).all()
    # Chunked full embedding should be closer to a 50% sample than to an
    # unrelated column's embedding.
    other = model.embed_value_column("years", [str(1900 + i) for i in range(50)])
    sample = model.embed_value_column("things", values[::2])
    def cos(a, b):
        return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
    assert cos(emb, sample) > cos(emb, other)


def test_tabert_content_snapshot(tennis_table):
    """TaBERT only ever sees its first 3 rows."""
    tabert = cached_model("tabert")
    head3 = tennis_table.head(3)
    assert np.allclose(tabert.embed_columns(tennis_table), tabert.embed_columns(head3))
    assert tabert.fitted_rows(tennis_table) == 3


def test_taptap_rows_independent(tennis_table):
    """TapTap encodes rows independently: row order cannot matter."""
    taptap = cached_model("taptap")
    rows = taptap.embed_rows(tennis_table)
    shuffled = taptap.embed_rows(tennis_table.reorder_rows([2, 0, 3, 1]))
    assert np.allclose(rows[[2, 0, 3, 1]], shuffled, atol=1e-10)


def test_taptap_table_embed_raises(tennis_table):
    with pytest.raises(UnsupportedLevelError):
        cached_model("taptap").embed_table(tennis_table)


def test_doduo_schema_blind(tennis_table):
    """DODUO never reads headers: renaming cannot change its embeddings."""
    doduo = cached_model("doduo")
    renamed = tennis_table.rename_column(0, "completely different header")
    assert np.allclose(doduo.embed_columns(tennis_table), doduo.embed_columns(renamed))


def test_fitted_rows_respects_budget():
    import dataclasses
    from repro.models.zoo.bert import CONFIG
    small = SurrogateModel(dataclasses.replace(CONFIG, max_tokens=64, name="bert-small", seed_name="bert"))
    table = Table.from_columns([("x", [f"some words here {i}" for i in range(50)])])
    assert small.fitted_rows(table) < 50


def test_model_config_validation():
    with pytest.raises(ModelError):
        ModelConfig(name="bad", dim=30, n_heads=4)  # 30 % 4 != 0
    with pytest.raises(ModelError):
        ModelConfig(name="bad", max_tokens=2)
    with pytest.raises(ModelError):
        ModelConfig(name="bad", content_snapshot_rows=0)
