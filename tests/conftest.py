"""Shared fixtures.

Models are deterministic and stateless, so they are cached per session;
tables are kept tiny to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.data.wikitables import WikiTablesGenerator
from repro.models.registry import available_models, load_model
from repro.relational.table import Table

_MODEL_CACHE = {}


def cached_model(name: str):
    """Session-cached model instance (embedding calls are pure)."""
    if name not in _MODEL_CACHE:
        _MODEL_CACHE[name] = load_model(name)
    return _MODEL_CACHE[name]


@pytest.fixture(scope="session")
def bert():
    return cached_model("bert")


@pytest.fixture(scope="session")
def doduo():
    return cached_model("doduo")


@pytest.fixture(scope="session")
def tabert():
    return cached_model("tabert")


@pytest.fixture(scope="session")
def taptap():
    return cached_model("taptap")


@pytest.fixture(scope="session")
def all_model_names():
    return available_models()


@pytest.fixture()
def tennis_table() -> Table:
    return Table.from_columns(
        [
            ("player", ["Roger Federer", "Rafael Nadal", "Novak Djokovic", "Andy Murray"]),
            ("country", ["Switzerland", "Spain", "Serbia", "United Kingdom"]),
            ("titles", [103, 92, 94, 46]),
        ],
        caption="tennis players",
        table_id="tennis-test",
    )


@pytest.fixture()
def fd_table() -> Table:
    """The paper's Figure 3 example: country -> continent holds."""
    return Table.from_columns(
        [
            ("city", ["Amsterdam", "Rotterdam", "Utrecht", "Toronto", "New York", "Chicago"]),
            ("country", ["Netherlands", "Netherlands", "Netherlands", "Canada", "USA", "USA"]),
            ("continent", ["Europe", "Europe", "Europe", "North America", "North America", "North America"]),
            ("population", [821, 623, 345, 2731, 8336, 2746]),
        ],
        table_id="fd-test",
    )


@pytest.fixture(scope="session")
def small_corpus():
    return WikiTablesGenerator(seed=3).generate(6, min_rows=5, max_rows=7)
