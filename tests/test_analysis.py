"""Tests for PCA and plain-text reporting."""

import numpy as np
import pytest

from repro.analysis.pca import PCA, spread_ratio
from repro.analysis.reporting import (
    format_matrix,
    format_value_table,
    render_boxplot,
    render_histogram,
    summarize_rows,
)
from repro.errors import MeasureError
from repro.seeding import rng_for


def test_pca_recovers_dominant_direction():
    rng = rng_for("pca-test", 1)
    direction = np.array([3.0, 4.0]) / 5.0
    samples = np.outer(rng.standard_normal(300) * 5, direction)
    samples += rng.standard_normal((300, 2)) * 0.1
    pca = PCA(n_components=2).fit(samples)
    lead = pca.components_[0]
    assert abs(abs(lead @ direction) - 1.0) < 0.01
    assert pca.explained_variance_ratio_[0] > 0.95


def test_pca_transform_shape_and_centering():
    rng = rng_for("pca-test", 2)
    samples = rng.standard_normal((50, 8)) + 3.0
    projected = PCA(2).fit_transform(samples)
    assert projected.shape == (50, 2)
    assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)


def test_pca_components_orthonormal():
    rng = rng_for("pca-test", 3)
    samples = rng.standard_normal((40, 6))
    pca = PCA(3).fit(samples)
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(3), atol=1e-9)


def test_pca_handles_n_less_than_d():
    rng = rng_for("pca-test", 4)
    samples = rng.standard_normal((5, 64))
    pca = PCA(2).fit(samples)
    assert pca.components_.shape == (2, 64)


def test_pca_validation():
    with pytest.raises(MeasureError):
        PCA(0)
    with pytest.raises(MeasureError):
        PCA(2).fit(np.ones((1, 3)))
    with pytest.raises(MeasureError):
        PCA(2).transform(np.ones((2, 3)))  # not fitted


def test_spread_ratio_isotropic_vs_stretched():
    rng = rng_for("pca-test", 5)
    isotropic = rng.standard_normal((500, 2))
    stretched = isotropic * np.array([10.0, 1.0])
    assert spread_ratio(stretched) > spread_ratio(isotropic)
    with pytest.raises(MeasureError):
        spread_ratio(np.ones((5, 1)))


def test_format_value_table():
    text = format_value_table(
        [["bert", 0.123456], ["t5", 1.5]], ["model", "value"], title="T"
    )
    assert "0.123" in text and "model" in text and text.startswith("T")
    with pytest.raises(MeasureError):
        format_value_table([], [])


def test_format_matrix():
    text = format_matrix(np.eye(2), ["a", "b"])
    assert "1.00" in text and "0.00" in text
    with pytest.raises(MeasureError):
        format_matrix(np.eye(2), ["a"])
    with pytest.raises(MeasureError):
        format_matrix(np.ones((2, 3)), ["a", "b"])


def test_render_boxplot():
    text = render_boxplot({"bert": [0.9, 0.95, 1.0], "t5": [0.8, 0.85, 0.9]})
    assert "bert" in text and "|" in text and "=" in text
    with pytest.raises(MeasureError):
        render_boxplot({})


def test_render_histogram():
    text = render_histogram([1, 2, 2, 3, 3, 3], bins=3)
    assert "#" in text
    with pytest.raises(MeasureError):
        render_histogram([])


def test_summarize_rows():
    rows = summarize_rows({"a": [1.0, 2.0, 3.0]})
    assert rows[0][0] == "a"
    assert rows[0][1] == 3  # n
