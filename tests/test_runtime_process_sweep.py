"""Determinism/concurrency tests for ``execution="process"`` sweeps.

Extends the guarantee ``tests/test_runtime_sweep.py`` locks in for thread
mode: sweep results are bit-identical across execution modes, worker
counts, and scheduling — distributing cells across spawned processes
changes wall-clock, never numbers.  ``execution="process"`` now runs the
work-stealing scheduler (:mod:`repro.runtime.scheduler`), so these tests
exercise it end to end; scheduler-specific behavior (steals, crash
salvage, cost priors) lives in ``tests/test_runtime_scheduler.py``, and
the static-shard engine they originally covered survives as the
equivalence oracle there.
"""

import pytest

from repro import Observatory, RuntimeConfig
from repro.analysis.report import render_sweep
from repro.core.framework import DatasetSizes
from repro.errors import ObservatoryError
from repro.runtime import order_cells, partition_shards, resolve_execution
from repro.runtime.cache import CacheStats

SIZES = DatasetSizes(
    wikitables_tables=3,
    spider_databases=2,
    nextiajd_pairs=6,
    sotab_tables=4,
    n_permutations=4,
    min_rows=4,
    max_rows=6,
)
PROPS = ["row_order_insignificance", "sample_fidelity"]
MODELS = ["bert", "t5"]


def make_observatory(**runtime_kwargs) -> Observatory:
    return Observatory(seed=3, sizes=SIZES, runtime=RuntimeConfig(**runtime_kwargs))


def cell_dicts(sweep):
    return {
        (c.model_name, c.property_name): c.result.to_dict() for c in sweep.cells
    }


@pytest.fixture(scope="module")
def thread_sweep():
    return make_observatory().sweep(MODELS, PROPS, max_workers=1, execution="thread")


@pytest.fixture(scope="module")
def process_sweep(tmp_path_factory):
    disk = str(tmp_path_factory.mktemp("shared-cache"))
    observatory = make_observatory(disk_cache_dir=disk)
    return observatory.sweep(MODELS, PROPS, max_workers=2, execution="process")


class TestProcessDeterminism:
    def test_bit_identical_to_thread_mode(self, thread_sweep, process_sweep):
        assert cell_dicts(process_sweep) == cell_dicts(thread_sweep)

    def test_bit_identical_across_worker_counts(self, thread_sweep):
        # 1 worker (serial child) and 3 workers must both match thread
        # mode.  The scheduler caps workers at the number of
        # corpus-affinity work groups (2 here: both PROPS characterize
        # wikitables, so each model contributes one group).
        for workers in (1, 3):
            sweep = make_observatory().sweep(
                MODELS, PROPS, max_workers=workers, execution="process"
            )
            assert cell_dicts(sweep) == cell_dicts(thread_sweep)
            assert sweep.workers == min(workers, 2)

    def test_cells_returned_in_request_order(self, thread_sweep, process_sweep):
        order = [(c.model_name, c.property_name) for c in process_sweep.cells]
        assert order == [(c.model_name, c.property_name) for c in thread_sweep.cells]

    def test_skips_recorded_identically(self, thread_sweep):
        # taptap only embeds rows: P5 is out of scope in every mode.
        sweep = make_observatory().sweep(
            ["bert", "taptap"], PROPS, max_workers=2, execution="process"
        )
        reference = make_observatory().sweep(
            ["bert", "taptap"], PROPS, max_workers=1, execution="thread"
        )
        assert sweep.skipped == reference.skipped

    def test_pairwise_property_skipped_without_spawning(self):
        sweep = make_observatory().sweep(
            ["bert"], ["entity_stability"], execution="process"
        )
        assert not sweep.cells
        assert sweep.execution == "process"
        assert sweep.skipped[0].reason.startswith("pairwise property")
        assert sweep.workers == 0  # no workers spawned...
        assert sweep.cache_stats is None  # ...so no cache was touched


class TestMergedCacheStats:
    def test_stats_are_typed_and_merged(self, process_sweep):
        stats = process_sweep.cache_stats
        assert isinstance(stats, CacheStats)
        assert stats.requests == stats.hits + stats.misses
        assert stats.misses > 0 and stats.puts > 0  # cold: every shard computed
        assert stats.disk_puts > 0  # ...and persisted to the shared tier
        assert process_sweep.to_dict()["cache"]["misses"] == stats.misses

    def test_disk_tier_shared_across_processes(self, process_sweep, tmp_path_factory):
        # A second sweep over the same disk dir is served from the tier the
        # first sweep's workers populated: merged counters show disk hits.
        disk = str(tmp_path_factory.mktemp("shared-cache-warm"))
        first = make_observatory(disk_cache_dir=disk)
        first.sweep(MODELS, PROPS, max_workers=2, execution="process")
        second = make_observatory(disk_cache_dir=disk)
        warm = second.sweep(MODELS, PROPS, max_workers=2, execution="process")
        assert warm.cache_stats.disk_hits > 0
        assert warm.cache_stats.misses == 0

    def test_disabled_runtime_reports_no_stats(self):
        sweep = make_observatory(enabled=False).sweep(
            ["bert"], ["row_order_insignificance"], max_workers=1, execution="process"
        )
        assert sweep.cache_stats is None
        assert sweep.to_dict()["cache"] is None

    def test_merged_counters_sum(self):
        parts = [CacheStats(hits=2, misses=3, puts=1), CacheStats(hits=5, disk_hits=4)]
        total = CacheStats.merged(parts)
        assert (total.hits, total.misses, total.puts, total.disk_hits) == (7, 3, 1, 4)
        assert CacheStats.merged([]) == CacheStats()


class TestExecutionResolution:
    def test_execution_recorded_and_rendered(self, process_sweep):
        assert process_sweep.execution == "process"
        assert process_sweep.to_dict()["execution"] == "process"
        assert "process worker" in render_sweep(process_sweep)
        assert "process" in repr(process_sweep)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTION", "process")
        sweep = make_observatory().sweep(
            ["bert"], ["row_order_insignificance"], max_workers=1
        )
        assert sweep.execution == "process"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTION", "process")
        sweep = make_observatory().sweep(
            ["bert"], ["row_order_insignificance"], max_workers=1, execution="thread"
        )
        assert sweep.execution == "thread"

    def test_runtime_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_EXECUTION", "process")
        assert resolve_execution(None, "thread") == "thread"
        monkeypatch.delenv("REPRO_SWEEP_EXECUTION")
        assert resolve_execution(None, None) == "thread"

    def test_invalid_modes_rejected(self, monkeypatch):
        with pytest.raises(ObservatoryError):
            make_observatory().sweep(["bert"], PROPS, execution="fork")
        monkeypatch.setenv("REPRO_SWEEP_EXECUTION", "fibers")
        with pytest.raises(ObservatoryError):
            make_observatory().sweep(["bert"], PROPS)
        with pytest.raises(ValueError):
            RuntimeConfig(execution="fork")


class TestSharding:
    def test_partition_balanced_and_contiguous(self):
        cells = [(f"m{i}", "p") for i in range(7)]
        shards = partition_shards(cells, 3)
        assert [len(s) for s in shards] == [3, 2, 2]
        assert [c for shard in shards for c in shard] == cells  # order kept

    def test_partition_never_produces_empty_shards(self):
        cells = [("m", "p1"), ("m", "p2")]
        assert [len(s) for s in partition_shards(cells, 5)] == [1, 1]
        assert partition_shards(cells, 1) == [cells]

    def test_order_cells_groups_by_model_then_corpus(self):
        # Request order is property-major; execution order must be
        # model-major with corpus-sharing properties adjacent.
        cells = [
            ("bert", "heterogeneous_context"),
            ("t5", "heterogeneous_context"),
            ("bert", "row_order_insignificance"),
            ("t5", "row_order_insignificance"),
            ("bert", "sample_fidelity"),
            ("t5", "sample_fidelity"),
        ]
        ordered = order_cells(cells)
        assert ordered == [
            ("bert", "heterogeneous_context"),
            ("bert", "row_order_insignificance"),
            ("bert", "sample_fidelity"),
            ("t5", "heterogeneous_context"),
            ("t5", "row_order_insignificance"),
            ("t5", "sample_fidelity"),
        ]
        # wikitables properties (P1, P5) are adjacent within each model
        # even though the request interleaved the sotab property first.

    def test_every_registered_property_has_a_corpus_group(self):
        # A property added to the registry but not to PROPERTY_CORPUS
        # would silently lose cache-aware grouping; fail loudly instead.
        from repro.core.registry import available_properties
        from repro.runtime.sweep import PROPERTY_CORPUS

        assert set(available_properties()) <= set(PROPERTY_CORPUS)
