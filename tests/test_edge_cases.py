"""Edge-case coverage across modules (second pass)."""

import dataclasses

import numpy as np
import pytest

from repro.core.levels import EmbeddingLevel
from repro.core.framework import DatasetSizes, Observatory
from repro.data.drspider import EQUIVALENCES, PerturbationKind, perturb_table
from repro.data.entities import EntityCatalog
from repro.data.sotab import SotabGenerator
from repro.data.spider import SpiderGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import PropertyConfigError
from repro.models.config import ModelConfig
from repro.models.base import SurrogateModel
from repro.relational.fd_discovery import discover_unary_fds
from repro.relational.table import Table
from tests.conftest import cached_model


# --- generators --------------------------------------------------------------

def test_wikitables_camel_case_fraction():
    corpus = WikiTablesGenerator(seed=9).generate(16)
    camel = sum(
        1 for t in corpus if any(n != n.lower() and " " not in n for n in t.header)
    )
    assert 0 < camel < 16  # both header styles occur


def test_spider_noise_table_has_no_semantic_unary_fds():
    generator = SpiderGenerator(seed=3)
    noise = generator._noise_table(0, 24)
    found = discover_unary_fds(noise)
    # employee names may coincidentally determine things on tiny tables, but
    # the planted violating pair department -> building must never appear.
    dept = noise.schema.index_of("department")
    building = noise.schema.index_of("building")
    assert all(
        (fd.determinant[0], fd.dependent[0]) != (dept, building) for fd in found
    )


def test_sotab_single_subject_per_table():
    corpus = SotabGenerator(seed=3).generate(10)
    for table in corpus:
        subjects = [c for c in table.schema if c.is_subject]
        assert len(subjects) <= 1


def test_entity_catalog_embedding_space_row_alignment():
    catalog = EntityCatalog(seed=1, queries_per_domain=3)
    model = cached_model("bert")
    space = catalog.embedding_space(model)
    assert space.shape == (len(catalog), model.dim)
    assert np.isfinite(space).all()
    assert (np.linalg.norm(space, axis=1) > 0).all()


def test_drspider_equivalences_cover_revenue_and_gross():
    table = Table.from_columns([("revenue", ["$5.0", "$7.5"]), ("gross", ["$1.0", "$2.0"])])
    for col in (0, 1):
        out = perturb_table(table, col, PerturbationKind.COLUMN_EQUIVALENCE)
        assert out is not None
        assert "usd" in out.header[col].lower()
    assert set(EQUIVALENCES) >= {"age", "price", "year", "founded"}


# --- models -------------------------------------------------------------------

def test_attention_temperature_sharpens_outputs():
    base = ModelConfig(name="temp-test", dim=32, n_layers=1, n_heads=4)
    sharp = dataclasses.replace(base, attention_temperature=4.0)
    table = Table.from_columns([("x", ["alpha", "beta", "gamma", "delta"])])
    a = SurrogateModel(base).embed_columns(table)
    b = SurrogateModel(sharp).embed_columns(table)
    assert not np.allclose(a, b)


def test_model_with_tiny_budget_still_embeds():
    config = ModelConfig(
        name="tiny-budget", dim=32, n_layers=1, n_heads=4, max_tokens=16,
        seed_name="tiny-budget",
    )
    model = SurrogateModel(config)
    table = Table.from_columns(
        [("words", ["some very long cell content here"] * 20)]
    )
    emb = model.embed_columns(table)
    assert np.isfinite(emb).all()
    assert model.fitted_rows(table) >= 1


def test_single_row_table_all_models(all_model_names):
    table = Table.from_columns([("a", ["x"]), ("b", [1])])
    for name in all_model_names:
        model = cached_model(name)
        if model.supports(EmbeddingLevel.COLUMN):
            assert model.embed_columns(table).shape == (2, model.dim)
        if model.supports(EmbeddingLevel.ROW):
            assert model.embed_rows(table).shape[0] == 1


def test_unicode_cells_tokenize_and_embed():
    table = Table.from_columns([("city", ["Zürich", "São Paulo", "北京"])])
    emb = cached_model("bert").embed_columns(table)
    assert np.isfinite(emb).all()


def test_embed_value_column_snapshot_vs_full(tabert):
    values = [f"v{i}" for i in range(50)]
    full = tabert.embed_value_column("col", values)
    head = tabert.embed_value_column("col", values[:3])
    assert np.allclose(full, head)  # snapshot: only first 3 values matter


# --- framework ----------------------------------------------------------------

def test_observatory_explicit_data_override():
    obs = Observatory(seed=5, sizes=DatasetSizes(wikitables_tables=3, n_permutations=4))
    custom = WikiTablesGenerator(seed=99).generate(2, min_rows=4, max_rows=5)
    result = obs.characterize("bert", "row_order_insignificance", data=custom)
    assert result.metadata["n_tables"] == 2


def test_observatory_custom_property_requires_data_and_config():
    from repro.core.registry import register_property, unregister_property
    from repro.core.properties.base import PropertyRunner
    from repro.core.results import PropertyResult

    class Probe(PropertyRunner):
        name = "probe-test"
        def run(self, model, data, config=None):
            return PropertyResult(self.name, model.name, metadata={"data": data})

    register_property("probe-test", Probe)
    try:
        obs = Observatory(seed=0)
        with pytest.raises(PropertyConfigError):
            obs.characterize("bert", "probe-test")
        result = obs.characterize("bert", "probe-test", data=123, config={})
        assert result.metadata["data"] == 123
    finally:
        unregister_property("probe-test")


def test_cli_report_happy_path(capsys):
    from repro.cli import main as cli_main

    code = cli_main(
        ["--tables", "3", "--permutations", "4", "report", "--models", "taptap"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "taptap" in out and "|" in out


# --- measures ------------------------------------------------------------------

def test_pca_explained_variance_ratio_sums_to_at_most_one():
    from repro.analysis.pca import PCA
    rng = np.random.default_rng(3)
    pca = PCA(3).fit(rng.standard_normal((30, 10)))
    assert pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9
    assert (np.diff(pca.explained_variance_) <= 1e-9).all()


def test_spearman_p_value_monotone_in_n():
    from repro.core.measures.correlation import _two_sided_p
    assert _two_sided_p(0.4, 10) > _two_sided_p(0.4, 200)


def test_mcv_on_model_trajectory_matches_manual():
    """MCV as computed in the property equals a direct calculation."""
    from repro.core.measures.mcv import albert_zhang_mcv
    model = cached_model("bert")
    table = Table.from_columns([("c", ["a", "b", "c", "d"]), ("d", [1, 2, 3, 4])])
    variants = [
        model.embed_columns(table.reorder_rows(list(p)))[0]
        for p in ((0, 1, 2, 3), (3, 2, 1, 0), (1, 0, 3, 2))
    ]
    stack = np.stack(variants)
    mu = stack.mean(axis=0)
    centered = stack - mu
    sigma = centered.T @ centered / (len(stack) - 1)
    manual = np.sqrt(mu @ sigma @ mu) / (mu @ mu)
    assert albert_zhang_mcv(stack) == pytest.approx(float(manual), rel=1e-9)
