"""Tests for geometry diagnostics, the characterization report, and the CLI."""

import numpy as np
import pytest

from repro.analysis.report import full_characterization, headline_value, render_markdown
from repro.cli import main as cli_main
from repro.core.framework import DatasetSizes, Observatory
from repro.core.measures.geometry import (
    isotropy_score,
    leading_direction_share,
    mean_pairwise_cosine,
    variance_spectrum,
)
from repro.core.results import PropertyResult
from repro.errors import MeasureError, ObservatoryError
from repro.seeding import rng_for


# --- geometry ---------------------------------------------------------------

def test_mean_pairwise_cosine_extremes():
    rng = rng_for("geom", 1)
    isotropic = rng.standard_normal((200, 16))
    anisotropic = isotropic + 10.0  # strong common direction
    assert mean_pairwise_cosine(anisotropic) > 0.9
    assert abs(mean_pairwise_cosine(isotropic)) < 0.1
    with pytest.raises(MeasureError):
        mean_pairwise_cosine(np.ones((1, 4)))


def test_variance_spectrum_descending():
    rng = rng_for("geom", 2)
    samples = rng.standard_normal((100, 8)) * np.array([5, 4, 3, 2, 1, 1, 1, 1])
    spectrum = variance_spectrum(samples)
    assert np.all(np.diff(spectrum) <= 1e-9)


def test_isotropy_score_bounds_and_ordering():
    rng = rng_for("geom", 3)
    isotropic = rng.standard_normal((300, 8))
    stretched = isotropic * np.array([20, 1, 1, 1, 1, 1, 1, 1])
    iso = isotropy_score(isotropic)
    aniso = isotropy_score(stretched)
    assert 0.0 < aniso < iso <= 1.0


def test_leading_direction_share():
    rng = rng_for("geom", 4)
    direction = np.zeros(8)
    direction[0] = 1.0
    samples = np.outer(rng.standard_normal(100) * 10, direction)
    samples += rng.standard_normal((100, 8)) * 0.1
    assert leading_direction_share(samples) > 0.9


def test_t5_more_anisotropic_than_bert(tennis_table):
    """The Figure 6 observation holds in the surrogates' output geometry."""
    from tests.conftest import cached_model
    from repro.relational.permutations import sample_permutations

    perms = sample_permutations(tennis_table.num_rows, 8, seed_parts=("geom",))
    clouds = {}
    for name in ("bert", "t5"):
        model = cached_model(name)
        clouds[name] = np.stack(
            [model.embed_columns(tennis_table.reorder_rows(list(p)))[0] for p in perms]
        )
    assert leading_direction_share(clouds["t5"]) > leading_direction_share(clouds["bert"])


# --- report ------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_obs():
    return Observatory(
        seed=2,
        sizes=DatasetSizes(
            wikitables_tables=4,
            spider_databases=2,
            nextiajd_pairs=6,
            sotab_tables=6,
            n_permutations=4,
        ),
    )


def test_full_characterization_matrix(tiny_obs):
    matrix = full_characterization(
        tiny_obs,
        models=["bert", "taptap"],
        properties=["row_order_insignificance", "sample_fidelity"],
    )
    assert matrix["bert"]["row_order_insignificance"] is not None
    # TapTap is excluded from both properties per the paper's Table 2.
    assert matrix["taptap"]["row_order_insignificance"] is None
    assert matrix["taptap"]["sample_fidelity"] is None


def test_render_markdown(tiny_obs):
    matrix = {"bert": {"row_order_insignificance": 0.99, "sample_fidelity": None}}
    text = render_markdown(matrix)
    assert "| bert | 0.990 | — |" in text
    with pytest.raises(ObservatoryError):
        render_markdown({})


def test_headline_value_missing_distribution():
    empty = PropertyResult("sample_fidelity", "m")
    assert headline_value(empty, "sample_fidelity") is None


def test_full_characterization_unknown_property(tiny_obs):
    with pytest.raises(ObservatoryError):
        full_characterization(tiny_obs, models=["bert"], properties=["telepathy"])


# --- cli ----------------------------------------------------------------------

def test_cli_list_commands(capsys):
    assert cli_main(["list-models"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out and "taptap" in out
    assert cli_main(["list-properties"]) == 0
    out = capsys.readouterr().out
    assert "row_order_insignificance" in out


def test_cli_characterize(capsys):
    code = cli_main(
        [
            "--tables", "3", "--permutations", "4",
            "characterize", "--model", "bert",
            "--property", "row_order_insignificance",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "column/cosine" in out
    assert "model:    bert" in out


def test_cli_entity_stability_requires_partner(capsys):
    code = cli_main(
        ["characterize", "--model", "bert", "--property", "entity_stability"]
    )
    assert code == 2
    assert "partner" in capsys.readouterr().err


def test_cli_report_unknown_model(capsys):
    code = cli_main(["report", "--models", "bert,unknown-model"])
    assert code == 2
    assert "unknown" in capsys.readouterr().err
