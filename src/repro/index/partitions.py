"""Deterministic norm-banded coarse partitions for candidate pruning.

The pruning layer splits the corpus into coarse partitions and keeps, per
partition, a centroid of the *normalized* member rows plus the maximum
angular deviation (``radius``) of any member from that centroid.  Queries
then bound each partition's best possible cosine score via Cauchy-Schwarz:

    max over members x_hat of  q_hat . x_hat
        <= q_hat . c_hat + radius            (radius = max ||x_hat - c_hat||)

so partitions whose bound cannot beat the current k-th best score are
skipped entirely ("bound" mode), or only the highest-bound partitions are
probed ("probe" mode).

Partitioning is **norm-banded**: rows are first bucketed into quantile
bands of their raw (pre-normalization) L2 norm — column embeddings from
serialized tables correlate norm with token mass, so banding groups
columns of similar "size" — then each band is split by a small,
deterministic Lloyd k-means over the normalized rows.  Everything is
seeded from ``(rows, dim)`` only, never from wall-clock or global RNG
state, so the same corpus always yields the same plan.

The plan is persisted as ``partitions-<generation>.npz`` with an embedded
self-digest; a stale generation, torn file, or digest mismatch simply
triggers a rebuild — the plan is derived data and never authoritative.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
from typing import List, Optional

import numpy as np

NORM_BANDS = 4
KMEANS_ITERATIONS = 6
PLAN_VERSION = 1


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """Partition assignment over the corpus's global row order.

    ``assignments[i]`` is row ``i``'s partition id; ``centroids`` holds
    one unit-norm row per partition and ``radii`` the max Euclidean
    distance of a normalized member from its centroid.  ``generation``
    ties the plan to the shard-store state it was computed from.
    """

    generation: int
    assignments: np.ndarray  # (rows,) int32
    centroids: np.ndarray  # (partitions, dim) float64, unit rows
    radii: np.ndarray  # (partitions,) float64

    @property
    def partitions(self) -> int:
        return int(self.centroids.shape[0])

    def members(self, partition: int) -> np.ndarray:
        return np.nonzero(self.assignments == partition)[0]


def partition_budget(rows: int) -> int:
    """Total partition count: ~sqrt(N), at least 1, capped at 4096."""
    return max(1, min(4096, int(round(np.sqrt(rows)))))


def _band_edges(norms: np.ndarray, bands: int) -> np.ndarray:
    qs = np.linspace(0.0, 1.0, bands + 1)[1:-1]
    return np.quantile(norms, qs)


def _kmeans(
    normalized: np.ndarray, clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Fixed-iteration Lloyd k-means; returns per-row cluster labels."""
    rows = normalized.shape[0]
    clusters = min(clusters, rows)
    if clusters <= 1:
        return np.zeros(rows, dtype=np.int64)
    seeds = rng.choice(rows, size=clusters, replace=False)
    centroids = normalized[seeds].copy()
    labels = np.zeros(rows, dtype=np.int64)
    for _ in range(KMEANS_ITERATIONS):
        # Unit rows: maximizing dot product == minimizing Euclidean distance.
        labels = np.argmax(normalized @ centroids.T, axis=1)
        for cluster in range(clusters):
            mask = labels == cluster
            if not mask.any():
                # Re-seed an empty cluster on the row farthest from its centroid.
                scores = np.einsum("ij,ij->i", normalized, centroids[labels])
                centroids[cluster] = normalized[int(np.argmin(scores))]
                continue
            mean = normalized[mask].mean(axis=0)
            length = np.linalg.norm(mean)
            centroids[cluster] = mean / length if length > 0 else mean
    return labels


def build_plan(
    matrix64: np.ndarray, norms: np.ndarray, *, generation: int
) -> PartitionPlan:
    """Compute the deterministic plan for a corpus.

    ``matrix64`` is the float64 corpus (raw, un-normalized rows) in global
    row order and ``norms`` the canonical per-row norms.
    """
    rows, dim = matrix64.shape
    normalized = matrix64 / norms[:, None]
    budget = partition_budget(rows)
    rng = np.random.default_rng(hash((rows, dim, PLAN_VERSION)) & 0xFFFFFFFF)

    bands = min(NORM_BANDS, rows)
    edges = _band_edges(norms, bands)
    band_of = np.searchsorted(edges, norms, side="right")

    assignments = np.empty(rows, dtype=np.int32)
    centroid_rows: List[np.ndarray] = []
    radius_values: List[float] = []
    next_id = 0
    for band in range(bands):
        member_idx = np.nonzero(band_of == band)[0]
        if member_idx.size == 0:
            continue
        share = max(1, int(round(budget * member_idx.size / rows)))
        labels = _kmeans(normalized[member_idx], share, rng)
        for cluster in range(int(labels.max()) + 1):
            cluster_idx = member_idx[labels == cluster]
            if cluster_idx.size == 0:
                continue
            members = normalized[cluster_idx]
            mean = members.mean(axis=0)
            length = np.linalg.norm(mean)
            centroid = mean / length if length > 0 else mean
            radius = float(np.max(np.linalg.norm(members - centroid, axis=1)))
            assignments[cluster_idx] = next_id
            centroid_rows.append(centroid)
            radius_values.append(radius)
            next_id += 1
    return PartitionPlan(
        generation=generation,
        assignments=assignments,
        centroids=np.vstack(centroid_rows),
        radii=np.asarray(radius_values, dtype=np.float64),
    )


def _plan_digest(
    generation: int,
    assignments: np.ndarray,
    centroids: np.ndarray,
    radii: np.ndarray,
) -> str:
    digest = hashlib.sha256()
    digest.update(f"{PLAN_VERSION}:{generation}".encode("ascii"))
    for array in (assignments, centroids, radii):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def serialize_plan(plan: PartitionPlan) -> bytes:
    buffer = io.BytesIO()
    np.savez(
        buffer,
        plan_version=np.int64(PLAN_VERSION),
        generation=np.int64(plan.generation),
        assignments=plan.assignments,
        centroids=plan.centroids,
        radii=plan.radii,
        digest=np.frombuffer(
            _plan_digest(
                plan.generation, plan.assignments, plan.centroids, plan.radii
            ).encode("ascii"),
            dtype=np.uint8,
        ),
    )
    return buffer.getvalue()


def deserialize_plan(payload: bytes, *, expect_generation: int) -> Optional[PartitionPlan]:
    """Load a persisted plan; ``None`` on any mismatch or corruption."""
    try:
        with np.load(io.BytesIO(payload)) as archive:
            if int(archive["plan_version"]) != PLAN_VERSION:
                return None
            generation = int(archive["generation"])
            if generation != expect_generation:
                return None
            assignments = archive["assignments"]
            centroids = archive["centroids"]
            radii = archive["radii"]
            stored = archive["digest"].tobytes().decode("ascii")
        if stored != _plan_digest(generation, assignments, centroids, radii):
            return None
        if (
            assignments.ndim != 1
            or centroids.ndim != 2
            or radii.shape != (centroids.shape[0],)
        ):
            return None
        return PartitionPlan(
            generation=generation,
            assignments=assignments,
            centroids=centroids,
            radii=radii,
        )
    except (OSError, ValueError, KeyError, UnicodeDecodeError, EOFError):
        return None
