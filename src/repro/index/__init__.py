"""Persistent columnar ANN index for joinability search.

See :mod:`repro.index.column_index` for the query-mode guarantees and
:mod:`repro.index.store` for the crash-safety protocol.
"""

from repro.index.column_index import (
    BOUND_SCORE_MARGIN,
    PROBE_RECALL_FLOOR,
    PRUNE_MODES,
    ColumnIndex,
    default_min_candidates,
)
from repro.index.partitions import PartitionPlan, partition_budget
from repro.index.store import ShardStore

__all__ = [
    "BOUND_SCORE_MARGIN",
    "PROBE_RECALL_FLOOR",
    "PRUNE_MODES",
    "ColumnIndex",
    "PartitionPlan",
    "ShardStore",
    "default_min_candidates",
    "partition_budget",
]
