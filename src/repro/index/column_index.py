"""Persistent column-embedding index with a provable exact mode.

:class:`ColumnIndex` serves top-k cosine joinability queries over a
persistent :class:`~repro.index.store.ShardStore` corpus.  Three pruning
modes trade latency against guarantees:

``off``
    Exhaustive scoring over the full normalized matrix.  **Provably
    bit-identical** to :class:`~repro.downstream.join_discovery.
    JoinDiscoveryIndex` — same keys, same float scores, same order —
    whenever the oracle is fed :meth:`ColumnIndex.quantize`-d embeddings
    in the same insertion order.  The identity rests on three verified
    numpy facts: float32→float64 conversion is exact, elementwise row
    normalization is layout-independent, and a matmul over a
    concatenation of row blocks is bit-identical to one over the
    equivalently-stacked matrix.  (A matmul over a *gathered subset* of
    rows is **not** — BLAS blocking differs by shape — which is exactly
    why the pruned modes below carry tolerance contracts instead.)

``bound``
    Branch-and-bound over coarse partitions: each partition's best
    possible score is bounded by ``q·c + radius`` (Cauchy–Schwarz over
    unit vectors); partitions are scanned in descending bound order and
    scanning stops once no remaining bound can beat the current k-th
    best by more than :data:`BOUND_SCORE_MARGIN`.  Returns the same
    *result set* as exhaustive search up to score ties within the
    margin; scores may differ from the exact mode in the last ~1 ulp
    because candidates are scored via gathered sub-matrices.

``probe``
    Fixed-effort scan of the highest-bound partitions only (widened
    until at least ``max(k, min_candidates)`` candidates are gathered).
    Fastest, approximate: recall against the exhaustive top-k is
    floored at :data:`PROBE_RECALL_FLOOR` on clustered corpora and
    enforced by the test suite and CI on representative workloads.

Partition plans are derived data keyed to the store generation (rebuilt
whenever the corpus changes); the store itself owns crash safety.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ColumnIndexError
from repro.index.partitions import (
    PartitionPlan,
    build_plan,
    deserialize_plan,
    partition_budget,
    serialize_plan,
)
from repro.index.store import ShardStore

PRUNE_MODES = ("off", "bound", "probe")
BOUND_SCORE_MARGIN = 1e-9
PROBE_RECALL_FLOOR = 0.9
DEFAULT_SHARD_ROWS = 4096
MIN_CANDIDATE_FLOOR = 32


def default_min_candidates(rows: int) -> int:
    """Probe-mode candidate floor: ~6·sqrt(N), at least 32.

    Coarse partitions hold ~sqrt(N) rows each, so this widens probe
    queries to roughly six partitions' worth of candidates — still a
    vanishing fraction of large corpora (≈3% at N=32k) but enough
    that measured recall stayed ≥0.9 per-query (≥0.99 mean) on the
    clustered corpora the benchmark and CI gate on.  Norm banding can
    split one semantic cluster across bands, so a single partition's
    worth of candidates is not safe even when the plan looks tight.
    """
    return max(MIN_CANDIDATE_FLOOR, int(np.ceil(6.0 * np.sqrt(max(rows, 1)))))


class ColumnIndex:
    """Persistent top-k cosine index over named column embeddings."""

    def __init__(
        self,
        directory: str,
        *,
        dim: Optional[int] = None,
        create: bool = False,
        verify: str = "digest",
    ):
        self._directory = directory
        self._verify = verify
        self._store = ShardStore(directory, dim=dim, create=create, verify=verify)
        self._dense: Optional[np.ndarray] = None
        self._dense_generation = -1
        self._all_keys: List[str] = []
        self._all_norms: Optional[np.ndarray] = None
        self._plan: Optional[PartitionPlan] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, directory: str, dim: int) -> "ColumnIndex":
        """Start a fresh (or reopen a matching) index at ``directory``."""
        return cls(directory, dim=dim, create=True)

    @classmethod
    def open(cls, directory: str, *, verify: str = "digest") -> "ColumnIndex":
        """Open an existing index; raises if the directory holds none."""
        return cls(directory, verify=verify)

    @classmethod
    def build(
        cls,
        directory: str,
        items: Iterable[Tuple[str, np.ndarray]],
        *,
        dim: int,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> "ColumnIndex":
        """Create an index and bulk-append ``(key, embedding)`` items."""
        index = cls.create(directory, dim)
        index.append_many(items, shard_rows=shard_rows)
        return index

    @staticmethod
    def quantize(embedding: np.ndarray) -> np.ndarray:
        """The storage quantization, exposed for oracle comparisons.

        Shards store float32; float32→float64 is exact, so an oracle fed
        ``quantize(v)`` sees the same float64 values the index serves.
        """
        return np.asarray(embedding, dtype=np.float32).astype(np.float64).ravel()

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def append(self, key: str, embedding: np.ndarray) -> None:
        """Add one column embedding (one shard; prefer :meth:`append_many`)."""
        self.append_many([(key, embedding)])

    def append_many(
        self,
        items: Iterable[Tuple[str, np.ndarray]],
        *,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> int:
        """Append embeddings in shard-sized batches; returns rows added."""
        if shard_rows < 1:
            raise ColumnIndexError("shard_rows must be positive")
        keys: List[str] = []
        rows: List[np.ndarray] = []
        norms: List[float] = []
        added = 0

        def flush() -> None:
            nonlocal added
            if not keys:
                return
            matrix = np.stack(rows).astype(np.float32)
            self._store.append(keys, matrix, np.asarray(norms, dtype=np.float64))
            added += len(keys)
            keys.clear()
            rows.clear()
            norms.clear()

        for key, embedding in items:
            row = self.quantize(embedding)
            if row.shape != (self.dim,):
                raise ColumnIndexError(f"expected a {self.dim}-d embedding")
            # The canonical norm: the exact per-row expression the
            # brute-force oracle evaluates at add time.
            norm = np.linalg.norm(row)
            if norm < 1e-12:
                raise ColumnIndexError(
                    "cannot index a zero embedding (after float32 quantization)"
                )
            keys.append(str(key))
            rows.append(row)
            norms.append(float(norm))
            if len(keys) >= shard_rows:
                flush()
        flush()
        return added

    # ------------------------------------------------------------------
    # In-memory views
    # ------------------------------------------------------------------

    def _ensure_dense(self) -> np.ndarray:
        """Float64 normalized corpus matrix in global row order.

        Built as a concatenation of per-shard ``float64(shard) / norms``
        blocks — bit-identical to the oracle's ``np.stack(normalized
        rows)`` because elementwise division is layout-independent and
        concatenated-vs-stacked matmuls agree bitwise.
        """
        if self._dense is not None and self._dense_generation == self._store.generation:
            return self._dense
        if not self._store.shards:
            raise ColumnIndexError("index is empty")
        parts = []
        keys: List[str] = []
        norm_parts = []
        for meta in self._store.shards:
            shard64 = self._store.matrix(meta).astype(np.float64)
            shard_norms = self._store.norms(meta)
            parts.append(shard64 / shard_norms[:, None])
            norm_parts.append(shard_norms)
            keys.extend(self._store.keys(meta))
        self._dense = np.concatenate(parts)
        self._all_keys = keys
        self._all_norms = np.concatenate(norm_parts)
        self._dense_generation = self._store.generation
        return self._dense

    def _ensure_plan(self) -> PartitionPlan:
        dense = self._ensure_dense()
        generation = self._store.generation
        if self._plan is not None and self._plan.generation == generation:
            return self._plan
        path = self._store.partition_path(generation)
        if os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
            except OSError:
                payload = b""
            plan = deserialize_plan(payload, expect_generation=generation)
            if plan is not None and plan.assignments.shape[0] == dense.shape[0]:
                self._plan = plan
                return plan
        raw = np.concatenate(
            [self._store.matrix(meta).astype(np.float64) for meta in self._store.shards]
        )
        plan = build_plan(raw, self._all_norms, generation=generation)
        payload = serialize_plan(plan)
        self._store.write_derived(path, lambda fh: fh.write(payload))
        self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def _prepare_query(self, embedding: np.ndarray, k: int) -> np.ndarray:
        if len(self) == 0:
            raise ColumnIndexError("index is empty")
        if not 1 <= k <= len(self):
            raise ColumnIndexError(f"k must be in [1, {len(self)}]")
        query = np.asarray(embedding, dtype=np.float64).ravel()
        if query.shape != (self.dim,):
            raise ColumnIndexError(f"expected a {self.dim}-d query embedding")
        norm = np.linalg.norm(query)
        if norm < 1e-12:
            raise ColumnIndexError("cannot look up a zero embedding")
        return query / norm

    def query(
        self,
        embedding: np.ndarray,
        k: int,
        *,
        prune: str = "off",
        probes: Optional[int] = None,
        min_candidates: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Top-k ``(key, cosine)`` under the requested pruning mode."""
        if prune not in PRUNE_MODES:
            raise ColumnIndexError(
                f"prune must be one of {PRUNE_MODES}, got {prune!r}"
            )
        unit = self._prepare_query(embedding, k)
        if prune == "off":
            return self._query_exact(unit, k)
        return self._query_pruned(
            unit, k, mode=prune, probes=probes, min_candidates=min_candidates
        )

    def _query_exact(self, unit: np.ndarray, k: int) -> List[Tuple[str, float]]:
        # Mirrors JoinDiscoveryIndex.lookup expression for expression.
        dense = self._ensure_dense()
        scores = dense @ unit
        order = np.argsort(-scores, kind="stable")[:k]
        return [(self._all_keys[int(i)], float(scores[int(i)])) for i in order]

    def _rank(
        self, rows: np.ndarray, scores: np.ndarray, k: int
    ) -> List[Tuple[str, float]]:
        # (-score, row) ordering == stable argsort over the full corpus.
        order = np.lexsort((rows, -scores))[:k]
        return [
            (self._all_keys[int(rows[i])], float(scores[i])) for i in order
        ]

    def _query_pruned(
        self,
        unit: np.ndarray,
        k: int,
        *,
        mode: str,
        probes: Optional[int],
        min_candidates: Optional[int],
    ) -> List[Tuple[str, float]]:
        if min_candidates is None:
            min_candidates = default_min_candidates(len(self))
        elif min_candidates < 1:
            raise ColumnIndexError("min_candidates must be positive")
        dense = self._ensure_dense()
        plan = self._ensure_plan()
        centroid_scores = plan.centroids @ unit
        bounds = centroid_scores + plan.radii
        # Branch-and-bound must scan in bound order for its early-exit
        # proof; probe ranks by centroid score (IVF-style) — a loose
        # partition's optimistic bound says nothing about its typical
        # member, and probing by bound drowns tight relevant partitions.
        if mode == "bound":
            order = np.argsort(-bounds, kind="stable")
        else:
            order = np.argsort(-centroid_scores, kind="stable")
        member_lists: List[np.ndarray] = []
        score_lists: List[np.ndarray] = []
        gathered = 0
        kth_best = -np.inf
        if mode == "probe" and probes is not None:
            if probes < 1:
                raise ColumnIndexError("probes must be positive")
        target = max(k, min_candidates)
        for rank, partition in enumerate(np.asarray(order)):
            if mode == "bound":
                if gathered >= k and bounds[partition] < kth_best - BOUND_SCORE_MARGIN:
                    break
            else:  # probe: fixed effort, widened to a candidate floor
                enough = gathered >= target
                past_probes = probes is not None and rank >= probes
                if enough and (probes is None or past_probes):
                    break
                if past_probes and gathered >= k:
                    break
            members = plan.members(int(partition))
            if members.size == 0:
                continue
            scores = dense[members] @ unit
            member_lists.append(members)
            score_lists.append(scores)
            gathered += members.size
            if mode == "bound" and gathered >= k:
                pool = np.concatenate(score_lists)
                kth_best = float(np.partition(pool, pool.size - k)[pool.size - k])
        rows = np.concatenate(member_lists)
        scores = np.concatenate(score_lists)
        return self._rank(rows, scores, min(k, rows.size))

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._store.dim

    @property
    def generation(self) -> int:
        return self._store.generation

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def dropped_shards(self) -> int:
        return self._store.dropped_shards

    def __len__(self) -> int:
        return self._store.total_rows

    def keys(self) -> List[str]:
        if self._store.total_rows and self._dense_generation != self._store.generation:
            self._ensure_dense()
        return list(self._all_keys)

    def _peek_partitions(self) -> Optional[int]:
        """Partition count without forcing a plan build: the loaded plan
        when current, else a valid persisted one for this generation."""
        generation = self._store.generation
        if self._plan is not None and self._plan.generation == generation:
            return self._plan.partitions
        path = self._store.partition_path(generation)
        if os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
            except OSError:
                return None
            plan = deserialize_plan(payload, expect_generation=generation)
            if plan is not None:
                return plan.partitions
        return None

    def describe(self) -> Dict[str, object]:
        """Machine-readable summary for the CLI and analysis rendering."""
        return {
            "directory": self._directory,
            "dim": self.dim,
            "rows": len(self),
            "shards": len(self._store.shards),
            "generation": self.generation,
            "partition_budget": partition_budget(len(self)) if len(self) else 0,
            "partitions": self._peek_partitions(),
            "dropped_shards": self.dropped_shards,
            "swept_files": self._store.swept_files,
            "prune_modes": list(PRUNE_MODES),
            "probe_recall_floor": PROBE_RECALL_FLOOR,
            "bound_score_margin": BOUND_SCORE_MARGIN,
        }

    # Pickle support: the on-disk store is the state; reopening replays
    # verification so an unpickled index can never serve dropped shards.
    def __getstate__(self) -> Dict[str, object]:
        return {"directory": self._directory, "verify": self._verify}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(str(state["directory"]), verify=str(state["verify"]))

    def __repr__(self) -> str:
        return (
            f"ColumnIndex({self._directory!r}, dim={self.dim}, rows={len(self)}, "
            f"generation={self.generation})"
        )
