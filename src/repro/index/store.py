"""Crash-safe, append-only float32 shard store for the column index.

:class:`ShardStore` persists an append-only sequence of **matrix shards**
under one directory.  Each shard is three files sharing a stem::

    shard-000003-9f2c1a7b.npy        float32 (rows, dim) embedding matrix
    shard-000003-9f2c1a7b.norms.npy  float64 (rows,) canonical row norms
    shard-000003-9f2c1a7b.keys.json  the rows' column keys, in row order

and a versioned JSON **manifest** (``manifest.json``) is the single source
of truth: shard order (= global row order), per-file byte sizes, and
per-file sha256 digests.  The persistence protocol follows the
:class:`~repro.runtime.disk.DiskTier` patterns:

- every write is **write-temp-then-rename** (``os.replace`` is atomic on
  POSIX) — a reader never observes a half-written shard or manifest;
- manifest mutations happen under an ``index.lock`` file with stale-lock
  reclaim, so a crashed appender never wedges the directory;
- a shard that fails verification on open (missing file, size mismatch,
  digest mismatch, keys/rows disagreement, unloadable payload) is
  **dropped** — unlinked and removed from the manifest — never served.
  The surviving shards keep the store queryable; the dropped rows are
  simply absent and the caller re-appends them from the embedding cache.
- a missing or torn manifest is **rebuilt** from a directory scan (shard
  stems sort by sequence number, preserving insertion order), and stale
  temp/orphan files left by crashed appenders are swept.

Norms are stored (not recomputed) because they are *canonical*: row ``i``'s
norm is ``np.linalg.norm(row_i.astype(float64))`` computed at append time —
the exact expression the brute-force oracle applies — and recomputing it
with a vectorized axis reduction would not be bit-identical.

Every mutation bumps the manifest ``generation``; derived structures (the
coarse partitions) are keyed by generation and rebuilt when stale.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import re
import time
import uuid
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ColumnIndexError

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
LOCK_NAME = "index.lock"
_TMP_PREFIX = ".tmp-"
_SHARD_RE = re.compile(r"^shard-(\d{6})-[0-9a-f]{8}$")

_MATRIX_SUFFIX = ".npy"
_NORMS_SUFFIX = ".norms.npy"
_KEYS_SUFFIX = ".keys.json"


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class ShardMeta:
    """One manifest entry; byte sizes and digests cover all three files."""

    name: str
    rows: int
    matrix_bytes: int
    norms_bytes: int
    keys_bytes: int
    matrix_digest: str
    norms_digest: str
    keys_digest: str

    def to_jsonable(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: Dict[str, object]) -> "ShardMeta":
        fields = {f.name for f in dataclasses.fields(cls)}
        if set(payload) != fields:
            raise ValueError(f"malformed shard entry: {sorted(payload)}")
        return cls(**payload)  # type: ignore[arg-type]


class ShardStore:
    """Append-only shard directory governed by a versioned manifest.

    Args:
        directory: storage directory (created if missing).
        dim: embedding dimensionality; required when creating a fresh
            store, validated against the manifest when opening one.
        verify: ``"digest"`` (default) checks sha256 of every shard file
            on open; ``"size"`` only checks byte sizes (cheaper, still
            catches truncation).  Failing shards are dropped, not served.
        lock_timeout / stale_age: lock reclaim patience and the age past
            which orphan temp/shard files from crashed appenders are
            swept (mirrors the disk cache tier).
    """

    def __init__(
        self,
        directory: str,
        *,
        dim: Optional[int] = None,
        create: bool = False,
        verify: str = "digest",
        clock: Callable[[], float] = time.time,
        lock_timeout: float = 5.0,
        stale_age: float = 10.0,
    ):
        if verify not in ("digest", "size"):
            raise ColumnIndexError(f"verify must be 'digest' or 'size', got {verify!r}")
        self.directory = directory
        self.verify = verify
        self.dropped_shards = 0  # corrupt/torn shards dropped on open
        self.swept_files = 0  # stale temp/orphan files removed
        self._clock = clock
        self._lock_timeout = lock_timeout
        self._stale_age = stale_age
        self._mmaps: Dict[str, np.ndarray] = {}
        self._norms: Dict[str, np.ndarray] = {}
        self._keys: Dict[str, List[str]] = {}
        os.makedirs(directory, exist_ok=True)
        manifest = self._load_or_init_manifest(dim=dim, create=create)
        self.dim: int = int(manifest["dim"])
        self.generation: int = int(manifest["generation"])
        self.shards: List[ShardMeta] = [
            ShardMeta.from_jsonable(entry) for entry in manifest["shards"]
        ]
        self._verify_shards()
        self._sweep_stale_files()

    # ------------------------------------------------------------------
    # Locking and manifest I/O
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold ``index.lock`` (O_CREAT|O_EXCL) with stale-lock reclaim."""
        lock_path = os.path.join(self.directory, LOCK_NAME)
        deadline = time.time() + self._lock_timeout
        fd = None
        while fd is None:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(lock_path)
                except OSError:
                    continue  # holder just released; retry immediately
                if age > self._stale_age or time.time() > deadline:
                    with contextlib.suppress(OSError):
                        os.unlink(lock_path)
                    continue
                time.sleep(0.002)
        try:
            with contextlib.suppress(OSError):
                os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            yield
        finally:
            with contextlib.suppress(OSError):
                os.unlink(lock_path)

    def _write_manifest(self) -> None:
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "dim": self.dim,
            "generation": self.generation,
            "shards": [meta.to_jsonable() for meta in self.shards],
        }
        tmp = os.path.join(
            self.directory, f"{_TMP_PREFIX}manifest-{uuid.uuid4().hex}.json"
        )
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.manifest_path)

    def _load_or_init_manifest(
        self, *, dim: Optional[int], create: bool
    ) -> Dict[str, object]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("manifest_version") != MANIFEST_VERSION:
                raise ValueError("manifest version mismatch")
            if not isinstance(payload.get("shards"), list):
                raise ValueError("malformed shards")
            if int(payload["dim"]) < 1 or int(payload["generation"]) < 0:
                raise ValueError("malformed manifest header")
            if dim is not None and int(payload["dim"]) != dim:
                raise ColumnIndexError(
                    f"index at {self.directory!r} stores dim="
                    f"{payload['dim']}, requested dim={dim}"
                )
            return payload
        except FileNotFoundError:
            if not self._scan_shard_stems():
                if not create:
                    raise ColumnIndexError(
                        f"no column index at {self.directory!r} "
                        "(pass create=True with dim to start one)"
                    ) from None
                if dim is None or dim < 1:
                    raise ColumnIndexError(
                        "creating a column index requires a positive dim"
                    ) from None
                return {"manifest_version": MANIFEST_VERSION, "dim": dim,
                        "generation": 0, "shards": []}
            return self._rebuild_manifest(dim=dim)
        except (OSError, ValueError, KeyError, TypeError):
            return self._rebuild_manifest(dim=dim)

    def _scan_shard_stems(self) -> List[str]:
        stems = []
        for filename in os.listdir(self.directory):
            if filename.endswith(_MATRIX_SUFFIX) and not filename.endswith(_NORMS_SUFFIX):
                stem = filename[: -len(_MATRIX_SUFFIX)]
                if _SHARD_RE.match(stem):
                    stems.append(stem)
        return sorted(stems)  # sequence prefix preserves insertion order

    def _rebuild_manifest(self, *, dim: Optional[int]) -> Dict[str, object]:
        """Recover a lost/torn manifest by scanning the directory.

        Each candidate shard is admitted only when its matrix loads, its
        norms and keys agree on the row count, and (when known) its width
        matches ``dim`` — anything torn is left for the stale sweep.
        Generation restarts above zero so derived partition files from
        the lost era can never be mistaken for current.
        """
        entries: List[Dict[str, object]] = []
        found_dim = dim
        for stem in self._scan_shard_stems():
            matrix_path = os.path.join(self.directory, stem + _MATRIX_SUFFIX)
            norms_path = os.path.join(self.directory, stem + _NORMS_SUFFIX)
            keys_path = os.path.join(self.directory, stem + _KEYS_SUFFIX)
            try:
                matrix = np.load(matrix_path)
                norms = np.load(norms_path)
                with open(keys_path, "r", encoding="utf-8") as handle:
                    keys = json.load(handle)["keys"]
                if (
                    matrix.ndim != 2
                    or matrix.dtype != np.float32
                    or norms.shape != (matrix.shape[0],)
                    or not isinstance(keys, list)
                    or len(keys) != matrix.shape[0]
                ):
                    raise ValueError("inconsistent shard")
                if found_dim is None:
                    found_dim = int(matrix.shape[1])
                if matrix.shape[1] != found_dim:
                    raise ValueError("dim mismatch")
            except (OSError, ValueError, KeyError, TypeError, EOFError):
                continue
            entries.append(
                ShardMeta(
                    name=stem,
                    rows=int(matrix.shape[0]),
                    matrix_bytes=os.path.getsize(matrix_path),
                    norms_bytes=os.path.getsize(norms_path),
                    keys_bytes=os.path.getsize(keys_path),
                    matrix_digest=_sha256_file(matrix_path),
                    norms_digest=_sha256_file(norms_path),
                    keys_digest=_sha256_file(keys_path),
                ).to_jsonable()
            )
        if found_dim is None:
            raise ColumnIndexError(
                f"cannot rebuild index at {self.directory!r}: no readable "
                "shards and no dim given"
            )
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "dim": found_dim,
            # A fresh era: strictly above any generation the lost manifest
            # could have reached per surviving partition files.
            "generation": self._next_safe_generation(),
            "shards": entries,
        }
        with self._locked():
            payload_shards = manifest["shards"]
            self.dim = int(manifest["dim"])
            self.generation = int(manifest["generation"])
            self.shards = [ShardMeta.from_jsonable(e) for e in payload_shards]
            self._write_manifest()
        return manifest

    def _next_safe_generation(self) -> int:
        highest = 0
        for filename in os.listdir(self.directory):
            match = re.match(r"^partitions-(\d{8})\.npz$", filename)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    # ------------------------------------------------------------------
    # Verification and recovery
    # ------------------------------------------------------------------

    def _shard_paths(self, meta: ShardMeta) -> Tuple[str, str, str]:
        base = os.path.join(self.directory, meta.name)
        return base + _MATRIX_SUFFIX, base + _NORMS_SUFFIX, base + _KEYS_SUFFIX

    def _shard_ok(self, meta: ShardMeta) -> bool:
        matrix_path, norms_path, keys_path = self._shard_paths(meta)
        try:
            checks = (
                (matrix_path, meta.matrix_bytes, meta.matrix_digest),
                (norms_path, meta.norms_bytes, meta.norms_digest),
                (keys_path, meta.keys_bytes, meta.keys_digest),
            )
            for path, size, digest in checks:
                if os.path.getsize(path) != size:
                    return False
                if self.verify == "digest" and _sha256_file(path) != digest:
                    return False
        except OSError:
            return False
        return True

    def _verify_shards(self) -> None:
        """Drop every shard that fails verification; keep the rest live."""
        bad = [meta for meta in self.shards if not self._shard_ok(meta)]
        if not bad:
            return
        with self._locked():
            for meta in bad:
                for path in self._shard_paths(meta):
                    with contextlib.suppress(OSError):
                        os.unlink(path)
            names = {meta.name for meta in bad}
            self.shards = [m for m in self.shards if m.name not in names]
            self.dropped_shards += len(bad)
            self.generation += 1
            self._write_manifest()

    def _sweep_stale_files(self) -> None:
        """Remove stale temps, orphan shards, and outdated partition files.

        Fresh files are left alone — they may belong to a concurrent
        appender mid-protocol; anything older than ``stale_age`` whose
        stem the manifest does not reference is dead weight from a crash.
        """
        referenced = {meta.name for meta in self.shards}
        now = time.time()
        for filename in os.listdir(self.directory):
            path = os.path.join(self.directory, filename)
            if filename in (MANIFEST_NAME, LOCK_NAME):
                continue
            match = re.match(r"^partitions-(\d{8})\.npz$", filename)
            if match:
                if int(match.group(1)) != self.generation:
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                        self.swept_files += 1
                continue
            stem = filename
            for suffix in (_NORMS_SUFFIX, _KEYS_SUFFIX, _MATRIX_SUFFIX):
                if filename.endswith(suffix):
                    stem = filename[: -len(suffix)]
                    break
            if stem in referenced:
                continue
            is_temp = filename.startswith(_TMP_PREFIX)
            is_shard_file = _SHARD_RE.match(stem) and stem != filename
            if not (is_temp or is_shard_file):
                continue
            try:
                if now - os.path.getmtime(path) > self._stale_age:
                    os.unlink(path)
                    self.swept_files += 1
            except OSError:
                continue

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def append(
        self, keys: Sequence[str], matrix: np.ndarray, norms: np.ndarray
    ) -> ShardMeta:
        """Persist one shard atomically and publish it in the manifest.

        ``matrix`` must be float32 ``(rows, dim)`` and ``norms`` the
        canonical float64 per-row norms.  Shard files land via
        temp-then-rename *before* the manifest references them, so a
        crash at any point leaves either the old manifest (orphan files
        are swept later) or the new manifest over fully-written files.
        """
        matrix = np.ascontiguousarray(matrix, dtype=np.float32)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ColumnIndexError(
                f"shard matrix must be (rows, {self.dim}), got {matrix.shape}"
            )
        if len(keys) != matrix.shape[0] or norms.shape != (matrix.shape[0],):
            raise ColumnIndexError("keys, matrix rows, and norms must align")
        stem = f"shard-{len(self.shards):06d}-{uuid.uuid4().hex[:8]}"
        matrix_path = os.path.join(self.directory, stem + _MATRIX_SUFFIX)
        norms_path = os.path.join(self.directory, stem + _NORMS_SUFFIX)
        keys_path = os.path.join(self.directory, stem + _KEYS_SUFFIX)
        for target, writer in (
            (matrix_path, lambda fh: np.save(fh, matrix)),
            (norms_path, lambda fh: np.save(fh, np.asarray(norms, dtype=np.float64))),
            (
                keys_path,
                lambda fh: fh.write(json.dumps({"keys": list(keys)}).encode("utf-8")),
            ),
        ):
            tmp = os.path.join(self.directory, f"{_TMP_PREFIX}{uuid.uuid4().hex}")
            with open(tmp, "wb") as handle:
                writer(handle)
            os.replace(tmp, target)
        meta = ShardMeta(
            name=stem,
            rows=int(matrix.shape[0]),
            matrix_bytes=os.path.getsize(matrix_path),
            norms_bytes=os.path.getsize(norms_path),
            keys_bytes=os.path.getsize(keys_path),
            matrix_digest=_sha256_file(matrix_path),
            norms_digest=_sha256_file(norms_path),
            keys_digest=_sha256_file(keys_path),
        )
        with self._locked():
            self.shards.append(meta)
            self.generation += 1
            self._write_manifest()
        return meta

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return sum(meta.rows for meta in self.shards)

    def matrix(self, meta: ShardMeta) -> np.ndarray:
        """The shard's float32 matrix, memory-mapped read-only."""
        if meta.name not in self._mmaps:
            path = self._shard_paths(meta)[0]
            self._mmaps[meta.name] = np.load(path, mmap_mode="r")
        return self._mmaps[meta.name]

    def norms(self, meta: ShardMeta) -> np.ndarray:
        if meta.name not in self._norms:
            self._norms[meta.name] = np.load(self._shard_paths(meta)[1])
        return self._norms[meta.name]

    def keys(self, meta: ShardMeta) -> List[str]:
        if meta.name not in self._keys:
            with open(self._shard_paths(meta)[2], "r", encoding="utf-8") as handle:
                self._keys[meta.name] = json.load(handle)["keys"]
        return self._keys[meta.name]

    def partition_path(self, generation: int) -> str:
        return os.path.join(self.directory, f"partitions-{generation:08d}.npz")

    def write_derived(self, path: str, writer) -> None:
        """Atomically persist a derived artifact (temp-then-rename)."""
        tmp = os.path.join(self.directory, f"{_TMP_PREFIX}{uuid.uuid4().hex}")
        with open(tmp, "wb") as handle:
            writer(handle)
        os.replace(tmp, path)

    def __repr__(self) -> str:
        return (
            f"ShardStore({self.directory!r}, dim={self.dim}, "
            f"shards={len(self.shards)}, rows={self.total_rows}, "
            f"generation={self.generation})"
        )
