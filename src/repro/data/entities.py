"""Entity catalog for the entity-stability property (P6).

The paper selects ten query entities from each of five domains — tennis
players, movies, biochemistry (nutrients), technology companies, and
countries — and compares each query's K nearest neighbours between two
embedding spaces.  The catalog here provides those query entities plus a
pool of further entities from all domains, and for each entity a small
entity-rich *context table* in which the entity appears (models embed
entities in context, never as bare strings).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.data import banks
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import DatasetError
from repro.relational.table import Table

# Domain name -> (wikitables template domain, mentions).  The first ten
# mentions of each domain are the paper-style query entities.
QUERY_DOMAINS: Dict[str, str] = {
    "tennis_players": "tennis",
    "movies": "movies",
    "biochemistry": "nutrients",
    "tech_companies": "companies",
    "countries": "countries",
}

_DOMAIN_MENTIONS: Dict[str, List[str]] = {
    "tennis_players": [p[0] for p in banks.TENNIS_PLAYERS],
    "movies": [m[0] for m in banks.MOVIES],
    "biochemistry": [n[0] for n in banks.NUTRIENTS],
    "tech_companies": [c[0] for c in banks.COMPANIES],
    "countries": [c[0] for c in banks.COUNTRIES],
}


@dataclasses.dataclass(frozen=True)
class CatalogEntity:
    """One entity: id, surface mention, domain, and its context table."""

    entity_id: str
    mention: str
    domain: str
    context_table: Table


class EntityCatalog:
    """Entities with context tables, plus the query subsets per domain."""

    def __init__(self, seed: int = 0, *, queries_per_domain: int = 10):
        if queries_per_domain < 1:
            raise DatasetError("queries_per_domain must be positive")
        self.seed = seed
        self.queries_per_domain = queries_per_domain
        generator = WikiTablesGenerator(seed=seed)
        self.entities: List[CatalogEntity] = []
        self._index_of: Dict[str, int] = {}
        for domain, template in QUERY_DOMAINS.items():
            mentions = _DOMAIN_MENTIONS[domain]
            # One context table per domain chunk; every mention must appear
            # in some table with an entity link.  Build tables until all
            # mentions are covered.
            covered: Dict[str, Table] = {}
            attempt = 0
            while len(covered) < len(mentions) and attempt < 200:
                table = generator.generate_table(template, n_rows=10, table_index=attempt)
                for (r, c), raw_id in table.entity_links.items():
                    mention = str(table.cell(r, c))
                    if mention in mentions and mention not in covered:
                        covered[mention] = table
                attempt += 1
            missing = [m for m in mentions if m not in covered]
            if missing:
                raise DatasetError(
                    f"could not cover entities {missing!r} for domain {domain!r}"
                )
            for mention in mentions:
                entity_id = f"{domain}:{mention}"
                self._index_of[entity_id] = len(self.entities)
                self.entities.append(
                    CatalogEntity(
                        entity_id=entity_id,
                        mention=mention,
                        domain=domain,
                        context_table=covered[mention],
                    )
                )

    def __len__(self) -> int:
        return len(self.entities)

    def domains(self) -> List[str]:
        return list(QUERY_DOMAINS)

    def query_indices(self, domain: str) -> List[int]:
        """Indices of the query entities of ``domain`` (first K mentions)."""
        if domain not in QUERY_DOMAINS:
            raise DatasetError(f"unknown domain {domain!r}")
        queries = [
            i
            for i, e in enumerate(self.entities)
            if e.domain == domain
        ]
        return queries[: self.queries_per_domain]

    def index_of(self, entity_id: str) -> int:
        try:
            return self._index_of[entity_id]
        except KeyError:
            raise DatasetError(f"unknown entity {entity_id!r}") from None

    def embedding_space(self, model) -> np.ndarray:
        """Embed every catalog entity with ``model``; rows align to catalog order.

        Each entity is embedded from its context table (the model sees the
        full entity-rich table and the cell link).  Entities sharing a
        context table are embedded in one pass.
        """
        dim = model.dim
        space = np.zeros((len(self.entities), dim), dtype=np.float64)
        by_table: Dict[str, List[int]] = {}
        for i, entity in enumerate(self.entities):
            by_table.setdefault(entity.context_table.table_id, []).append(i)
        for _, indices in by_table.items():
            table = self.entities[indices[0]].context_table
            # The generator links entities under ids "{template_domain}:{mention}".
            embedded = model.embed_entities(table)
            for i in indices:
                entity = self.entities[i]
                raw_key = None
                for key in embedded:
                    if key.split(":", 1)[1] == entity.mention:
                        raw_key = key
                        break
                if raw_key is None:
                    raise DatasetError(
                        f"model {model.name!r} produced no embedding for "
                        f"{entity.entity_id!r}"
                    )
                space[i] = embedded[raw_key]
        return space
