"""WikiTables-like corpus generator.

Stand-in for the TURL test partition of the WikiTables corpus: entity-rich
relational web tables with captions, headers, a subject column whose cells
link to knowledge-base entities, and a mix of textual and numeric columns.
Used by P1/P2 (order insignificance), P5 (sample fidelity), P6 (entity
stability), and the Section 6 column-type-prediction harness.
"""

from __future__ import annotations

from typing import List, Tuple


from repro.data import banks
from repro.data.corpus import TableCorpus
from repro.errors import DatasetError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.values import infer_column_type
from repro.seeding import rng_for


class WikiTablesGenerator:
    """Seeded generator of entity-rich web tables across eight domains."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------------

    def generate(
        self,
        n_tables: int,
        *,
        min_rows: int = 6,
        max_rows: int = 12,
        name: str = "wikitables",
    ) -> TableCorpus:
        """Generate a corpus of ``n_tables`` tables with varied domains."""
        if n_tables < 1:
            raise DatasetError("n_tables must be positive")
        if not 2 <= min_rows <= max_rows:
            raise DatasetError("need 2 <= min_rows <= max_rows")
        domains = list(_TEMPLATES)
        tables = []
        rng = rng_for("wikitables", self.seed)
        for i in range(n_tables):
            domain = domains[i % len(domains)]
            n_rows = int(rng.integers(min_rows, max_rows + 1))
            tables.append(self.generate_table(domain, n_rows, table_index=i))
        return TableCorpus(name, tables)

    def generate_table(self, domain: str, n_rows: int, *, table_index: int = 0) -> Table:
        """Generate one table for ``domain`` with ``n_rows`` rows."""
        try:
            template = _TEMPLATES[domain]
        except KeyError:
            raise DatasetError(
                f"unknown domain {domain!r}; available: {sorted(_TEMPLATES)}"
            ) from None
        return template(self.seed, table_index, n_rows)

    @staticmethod
    def domains() -> List[str]:
        return sorted(_TEMPLATES)


# ----------------------------------------------------------------------
# Templates: each returns an entity-rich Table
# ----------------------------------------------------------------------

def _camel_case(name: str) -> str:
    return "".join(word.capitalize() for word in name.split())


def _assemble(
    domain: str,
    seed: int,
    index: int,
    caption: str,
    named_columns: List[Tuple[str, List[object]]],
    subject: str,
    entity_values: List[str],
) -> Table:
    # Web tables mix header styles; a fraction uses CamelCase compounds
    # ("CountryName"), which matters to case-sensitive tokenizers under
    # the abbreviation perturbations of P7.
    camel = rng_for("wikitables-style", seed, index).uniform() < 0.4
    columns = []
    for name, values in named_columns:
        display = _camel_case(name) if camel else name
        columns.append(
            ColumnSchema(
                name=display,
                data_type=infer_column_type(values),
                semantic_type=f"{domain}.{name}",
                is_subject=(name == subject),
            )
        )
    schema = TableSchema(columns)
    n_rows = len(named_columns[0][1])
    rows = [tuple(values[r] for _, values in named_columns) for r in range(n_rows)]
    subject_idx = schema.subject_index()
    links = {
        (r, subject_idx): f"{domain}:{entity_values[r]}" for r in range(n_rows)
    }
    return Table(
        schema,
        rows,
        caption=caption,
        table_id=f"{domain}-{seed}-{index}",
        entity_links=links,
    )


def _tennis(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.TENNIS_PLAYERS, n_rows, "tennis", seed, index, replace=False
    )
    rng = rng_for("tennis-extra", seed, index)
    players = [r[0] for r in rows]
    countries = [r[1] for r in rows]
    titles = [int(rng.integers(1, 110)) for _ in rows]
    years = [int(rng.integers(1968, 2024)) for _ in rows]
    events = [
        banks.SPORTS_EVENTS[int(rng.integers(0, len(banks.SPORTS_EVENTS)))]
        for _ in rows
    ]
    return _assemble(
        "tennis",
        seed,
        index,
        "Grand Slam singles champions",
        [
            ("player", players),
            ("country", countries),
            ("titles", titles),
            ("year", years),
            ("competition", events),
        ],
        subject="player",
        entity_values=players,
    )


def _movies(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.MOVIES, n_rows, "movies", seed, index, replace=False
    )
    rng = rng_for("movies-extra", seed, index)
    titles = [r[0] for r in rows]
    gross = [f"${int(rng.integers(10, 2500))}.{int(rng.integers(0, 10))}M" for _ in rows]
    return _assemble(
        "movies",
        seed,
        index,
        "Highest grossing films",
        [
            ("title", titles),
            ("director", [r[1] for r in rows]),
            ("year", [r[2] for r in rows]),
            ("genre", [r[3] for r in rows]),
            ("gross", gross),
        ],
        subject="title",
        entity_values=titles,
    )


def _countries(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.COUNTRIES, n_rows, "countries", seed, index, replace=False
    )
    rng = rng_for("countries-extra", seed, index)
    names = [r[0] for r in rows]
    population = [int(rng.integers(1, 1400)) for _ in rows]
    area = [int(rng.integers(40, 17000)) for _ in rows]
    return _assemble(
        "countries",
        seed,
        index,
        "Countries of the world",
        [
            ("country", names),
            ("continent", [r[1] for r in rows]),
            ("capital", [r[2] for r in rows]),
            ("population", population),
            ("area", area),
        ],
        subject="country",
        entity_values=names,
    )


def _companies(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.COMPANIES, n_rows, "companies", seed, index, replace=False
    )
    rng = rng_for("companies-extra", seed, index)
    names = [r[0] for r in rows]
    revenue = [f"${int(rng.integers(5, 600))}.{int(rng.integers(0, 10))}B" for _ in rows]
    employees = [int(rng.integers(5, 2200)) * 1000 for _ in rows]
    return _assemble(
        "companies",
        seed,
        index,
        "Largest companies by market capitalization",
        [
            ("company", names),
            ("sector", [r[1] for r in rows]),
            ("country", [r[2] for r in rows]),
            ("revenue", revenue),
            ("employees", employees),
        ],
        subject="company",
        entity_values=names,
    )


def _nutrients(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.NUTRIENTS, n_rows, "nutrients", seed, index, replace=False
    )
    rng = rng_for("nutrients-extra", seed, index)
    names = [r[0] for r in rows]
    amounts = [f"{int(rng.integers(1, 1200))} {r[2]}" for r in rows]
    return _assemble(
        "nutrients",
        seed,
        index,
        "Recommended daily nutrient intake",
        [
            ("nutrient", names),
            ("kind", [r[1] for r in rows]),
            ("daily intake", amounts),
            ("importance rank", [int(rng.integers(1, 100)) for _ in rows]),
        ],
        subject="nutrient",
        entity_values=names,
    )


def _cities(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.CITIES, n_rows, "cities", seed, index, replace=False
    )
    rng = rng_for("cities-extra", seed, index)
    names = [r[0] for r in rows]
    return _assemble(
        "cities",
        seed,
        index,
        "Major world cities",
        [
            ("city", names),
            ("country", [r[1] for r in rows]),
            ("population", [int(rng.integers(100, 25000)) for _ in rows]),
            ("founded", [int(rng.integers(800, 1900)) for _ in rows]),
        ],
        subject="city",
        entity_values=names,
    )


def _products(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.PRODUCTS, n_rows, "products", seed, index, replace=False
    )
    rng = rng_for("products-extra", seed, index)
    names = [r[0] for r in rows]
    prices = [f"${int(rng.integers(10, 2500))}.{int(rng.integers(0, 100)):02d}" for _ in rows]
    return _assemble(
        "products",
        seed,
        index,
        "Product catalog",
        [
            ("product", names),
            ("category", [r[1] for r in rows]),
            ("price", prices),
            ("stock", [int(rng.integers(0, 500)) for _ in rows]),
            ("rating", [round(float(rng.uniform(1, 5)), 1) for _ in rows]),
        ],
        subject="product",
        entity_values=names,
    )


def _books(seed: int, index: int, n_rows: int) -> Table:
    rows = banks.sample_rows_from_bank(
        banks.BOOKS, n_rows, "books", seed, index, replace=False
    )
    names = [r[0] for r in rows]
    isbns = banks.random_isbns(len(rows), seed, index)
    rng = rng_for("books-extra", seed, index)
    return _assemble(
        "books",
        seed,
        index,
        "Influential computer science books",
        [
            ("book", names),
            ("author", [r[1] for r in rows]),
            ("isbn", isbns),
            ("pages", [int(rng.integers(150, 1200)) for _ in rows]),
        ],
        subject="book",
        entity_values=names,
    )


_TEMPLATES = {
    "tennis": _tennis,
    "movies": _movies,
    "countries": _countries,
    "companies": _companies,
    "nutrients": _nutrients,
    "cities": _cities,
    "products": _products,
    "books": _books,
}
