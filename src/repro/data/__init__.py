"""Dataset suites: synthetic stand-ins for the paper's five corpora.

Each generator is fully seeded and produces the statistics its property
needs: WikiTables-like entity-rich web tables (P1/P2/P5/P6), Spider-like
databases with planted-and-rediscovered functional dependencies (P4),
Dr.Spider-like schema/data perturbations (P7), NextiaJD-like joinability
testbeds (P3), and SOTAB-like typed columns (P8).
"""

from repro.data.corpus import TableCorpus
from repro.data.wikitables import WikiTablesGenerator
from repro.data.spider import SpiderGenerator, SpiderDatabase
from repro.data.drspider import PerturbationSuite, perturb_table
from repro.data.nextiajd import NextiaJDGenerator, JoinPair, Testbed
from repro.data.sotab import SotabGenerator
from repro.data.entities import EntityCatalog, QUERY_DOMAINS
from repro.data.loaders import load_csv, load_directory, save_csv, table_from_csv_text

__all__ = [
    "TableCorpus",
    "WikiTablesGenerator",
    "SpiderGenerator",
    "SpiderDatabase",
    "PerturbationSuite",
    "perturb_table",
    "NextiaJDGenerator",
    "JoinPair",
    "Testbed",
    "SotabGenerator",
    "EntityCatalog",
    "QUERY_DOMAINS",
    "load_csv",
    "load_directory",
    "save_csv",
    "table_from_csv_text",
]
