"""Spider-like relational databases with functional dependencies (Property 4).

The paper takes the Spider development set (200 cross-domain databases),
runs HyFD with determinant size 1, and obtains 713 functional dependencies
plus an equal number of random column pairs *without* FDs.  This generator
produces multi-table databases whose columns carry real-world single-
determinant FDs (country -> continent, country -> currency, city -> country,
product -> category, movie -> director) alongside columns that violate any
dependency; the FD suite is then *discovered* — not just replanted — with
:func:`repro.relational.fd_discovery.discover_unary_fds`, and verified
exactly, mirroring the paper's pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.data import banks
from repro.errors import DatasetError
from repro.relational.fd import FunctionalDependency, fd_groups, satisfies
from repro.relational.fd_discovery import discover_unary_fds, non_fd_column_pairs
from repro.relational.table import Table
from repro.seeding import rng_for


@dataclasses.dataclass
class SpiderDatabase:
    """One generated database: a name and its tables."""

    name: str
    tables: List[Table]


@dataclasses.dataclass(frozen=True)
class FDCase:
    """One measured case: a table and a (claimed) unary dependency."""

    table: Table
    fd: FunctionalDependency
    holds: bool

    def describe(self) -> str:
        marker = "FD" if self.holds else "not-FD"
        return f"[{marker}] {self.fd.describe(self.table)} on {self.table.table_id}"


class SpiderGenerator:
    """Seeded generator of FD-bearing databases and the P4 evaluation sets."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def generate(self, n_databases: int = 8, *, rows_per_table: int = 18) -> List[SpiderDatabase]:
        """Generate databases, each holding FD-rich and FD-free tables."""
        if n_databases < 1:
            raise DatasetError("n_databases must be positive")
        if rows_per_table < 4:
            raise DatasetError("rows_per_table must be at least 4")
        return [
            SpiderDatabase(
                name=f"db_{i}",
                tables=[
                    self._geo_table(i, rows_per_table),
                    self._catalog_table(i, rows_per_table),
                    self._film_table(i, rows_per_table),
                    self._noise_table(i, rows_per_table),
                ],
            )
            for i in range(n_databases)
        ]

    def _geo_table(self, index: int, n_rows: int) -> Table:
        # country -> continent and country -> currency hold by construction
        # (the bank stores true facts); city and population are free columns.
        rows = banks.sample_rows_from_bank(
            banks.COUNTRIES, n_rows, "spider-geo", self.seed, index, replace=True
        )
        rng = rng_for("spider-geo-extra", self.seed, index)
        cities = banks.sample_rows_from_bank(
            banks.CITIES, n_rows, "spider-geo-city", self.seed, index, replace=True
        )
        return Table.from_columns(
            [
                ("city", [c[0] for c in cities]),
                ("country", [r[0] for r in rows]),
                ("continent", [r[1] for r in rows]),
                ("currency", [r[3] for r in rows]),
                ("population", [int(rng.integers(50, 30000)) for _ in rows]),
            ],
            table_id=f"spider-{self.seed}-{index}-geo",
        )

    def _catalog_table(self, index: int, n_rows: int) -> Table:
        rows = banks.sample_rows_from_bank(
            banks.PRODUCTS, n_rows, "spider-cat", self.seed, index, replace=True
        )
        rng = rng_for("spider-cat-extra", self.seed, index)
        return Table.from_columns(
            [
                ("product", [r[0] for r in rows]),
                ("category", [r[1] for r in rows]),
                ("price", [f"${int(rng.integers(5, 900))}.{int(rng.integers(0, 100)):02d}" for _ in rows]),
                ("stock", [int(rng.integers(0, 400)) for _ in rows]),
            ],
            table_id=f"spider-{self.seed}-{index}-catalog",
        )

    def _film_table(self, index: int, n_rows: int) -> Table:
        rows = banks.sample_rows_from_bank(
            banks.MOVIES, n_rows, "spider-film", self.seed, index, replace=True
        )
        rng = rng_for("spider-film-extra", self.seed, index)
        return Table.from_columns(
            [
                ("film", [r[0] for r in rows]),
                ("director", [r[1] for r in rows]),
                ("genre", [r[3] for r in rows]),
                ("screenings", [int(rng.integers(1, 2000)) for _ in rows]),
            ],
            table_id=f"spider-{self.seed}-{index}-film",
        )

    def _noise_table(self, index: int, n_rows: int) -> Table:
        """A table engineered to contain no unary FDs between its columns."""
        rng = rng_for("spider-noise", self.seed, index)
        names = banks.random_names(n_rows, "spider-noise", self.seed, index)
        # Repeat department values so determinant groups exist but map to
        # differing dependents (explicit FD violations).
        departments = [
            ["Sales", "Engineering", "Marketing", "Finance"][int(rng.integers(0, 4))]
            for _ in range(n_rows)
        ]
        buildings = [
            ["North", "South", "East", "West"][int(rng.integers(0, 4))]
            for _ in range(n_rows)
        ]
        salaries = [int(rng.integers(30, 200)) * 1000 for _ in range(n_rows)]
        return Table.from_columns(
            [
                ("employee", names),
                ("department", departments),
                ("building", buildings),
                ("salary", salaries),
            ],
            table_id=f"spider-{self.seed}-{index}-noise",
        )

    # ------------------------------------------------------------------
    # P4 evaluation sets
    # ------------------------------------------------------------------

    def fd_evaluation_sets(
        self,
        n_databases: int = 8,
        *,
        rows_per_table: int = 18,
        min_group_size: int = 2,
    ) -> Tuple[List[FDCase], List[FDCase]]:
        """(T_FD, T_notFD): discovered unary FDs and matched non-FD pairs.

        FDs are mined with the HyFD-style discoverer and kept only when some
        determinant group has at least ``min_group_size`` entries (otherwise
        Measure 4's per-group variance is undefined).  An equal number of
        violating column pairs is sampled as the control set, as in the
        paper.
        """
        databases = self.generate(n_databases, rows_per_table=rows_per_table)
        fd_cases: List[FDCase] = []
        non_fd_cases: List[FDCase] = []
        for db in databases:
            for table in db.tables:
                for fd in discover_unary_fds(table):
                    assert satisfies(table, fd)
                    groups = fd_groups(table, fd)
                    if max(len(rows) for rows in groups.values()) < min_group_size:
                        continue
                    fd_cases.append(FDCase(table=table, fd=fd, holds=True))
        quota = len(fd_cases)
        for db in databases:
            for table in db.tables:
                if len(non_fd_cases) >= quota:
                    break
                for lhs, rhs in non_fd_column_pairs(table, 2, seed_parts=(db.name,)):
                    candidate = FunctionalDependency.unary(lhs, rhs)
                    groups = fd_groups(table, candidate)
                    if max(len(rows) for rows in groups.values()) < min_group_size:
                        continue
                    non_fd_cases.append(FDCase(table=table, fd=candidate, holds=False))
                    if len(non_fd_cases) >= quota:
                        break
        return fd_cases, non_fd_cases[:quota]
