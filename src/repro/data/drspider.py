"""Dr.Spider-like semantics-preserving perturbations (Property 7).

Dr.Spider curates database perturbations to probe text-to-SQL robustness;
Observatory reuses its three *database* perturbation families:

* ``schema-synonym`` — replace a column name with a synonym
  ("country" -> "nation");
* ``schema-abbreviation`` — replace a column name with an abbreviation
  ("CountryName" -> "cntry_name");
* ``column-equivalence`` — additionally rewrite the column's *values* into a
  semantically equivalent form ("age" -> "birthyear").

All perturbations preserve semantics; a robust embedding should barely move.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.data.corpus import TableCorpus
from repro.errors import DatasetError
from repro.relational.schema import ColumnSchema
from repro.relational.table import Table

_REFERENCE_YEAR = 2024  # age -> birthyear pivot


class PerturbationKind(enum.Enum):
    SCHEMA_SYNONYM = "schema-synonym"
    SCHEMA_ABBREVIATION = "schema-abbreviation"
    COLUMN_EQUIVALENCE = "column-equivalence"


# Synonym dictionary for common relational attribute names.
SYNONYMS: Dict[str, List[str]] = {
    "country": ["nation", "state"],
    "city": ["town", "municipality"],
    "name": ["title", "label"],
    "player": ["athlete", "competitor"],
    "company": ["organization", "firm"],
    "year": ["season"],
    "price": ["cost", "amount"],
    "category": ["kind", "class"],
    "genre": ["kind"],
    "population": ["inhabitants"],
    "capital": ["capital city"],
    "director": ["filmmaker"],
    "employees": ["staff", "workforce"],
    "revenue": ["income", "turnover"],
    "product": ["item", "article"],
    "stock": ["inventory"],
    "rating": ["score"],
    "titles": ["championships"],
    "competition": ["tournament", "event"],
    "author": ["writer"],
    "pages": ["page count"],
    "continent": ["landmass"],
    "currency": ["money unit"],
    "sector": ["industry"],
    "department": ["division"],
    "salary": ["pay", "wage"],
    "age": ["years old"],
}

_VOWELS = set("aeiouAEIOU")


def abbreviate(name: str) -> str:
    """Dr.Spider-style header abbreviation: "CountryName" -> "cntry_name".

    Each word keeps its first letter and drops interior vowels; words are
    joined with underscores.  Purely consonantal or very short words pass
    through unchanged.
    """
    import re

    words = re.split(r"[\s_]+", re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name))
    abbreviated = []
    for word in words:
        if not word:
            continue
        if len(word) <= 3:
            abbreviated.append(word.lower())
            continue
        head, rest = word[0], word[1:]
        squeezed = "".join(ch for ch in rest if ch not in _VOWELS)
        abbreviated.append((head + squeezed).lower() if squeezed else word.lower())
    if not abbreviated:
        raise DatasetError(f"cannot abbreviate empty header {name!r}")
    return "_".join(abbreviated)


def synonym_of(name: str, variant: int = 0) -> Optional[str]:
    """A synonym of ``name`` from the dictionary, or None if unknown."""
    options = SYNONYMS.get(name.strip().lower())
    if not options:
        return None
    return options[variant % len(options)]


# --- column-equivalence value rewrites ---------------------------------

def _age_to_birthyear(values: Sequence[object]) -> List[object]:
    out: List[object] = []
    for value in values:
        try:
            out.append(_REFERENCE_YEAR - int(value))
        except (TypeError, ValueError):
            out.append(value)
    return out


def _money_to_currency_suffix(values: Sequence[object]) -> List[object]:
    out: List[object] = []
    for value in values:
        text = str(value)
        if text.startswith("$"):
            out.append(f"{text[1:].replace(',', '')} USD")
        else:
            out.append(value)
    return out


def _year_to_date(values: Sequence[object]) -> List[object]:
    out: List[object] = []
    for value in values:
        try:
            out.append(f"{int(value):04d}-01-01")
        except (TypeError, ValueError):
            out.append(value)
    return out


EQUIVALENCES: Dict[str, tuple] = {
    # header -> (replacement header, value rewriting function)
    "age": ("birthyear", _age_to_birthyear),
    "price": ("price in usd", _money_to_currency_suffix),
    "gross": ("gross in usd", _money_to_currency_suffix),
    "revenue": ("revenue in usd", _money_to_currency_suffix),
    "year": ("release date", _year_to_date),
    "founded": ("founding date", _year_to_date),
}


@dataclasses.dataclass(frozen=True)
class PerturbedColumn:
    """One (original, perturbed) column pair within its table context."""

    kind: PerturbationKind
    table: Table
    perturbed_table: Table
    column_index: int

    @property
    def original_header(self) -> str:
        return self.table.header[self.column_index]

    @property
    def perturbed_header(self) -> str:
        return self.perturbed_table.header[self.column_index]


def perturb_table(
    table: Table, column_index: int, kind: PerturbationKind, *, variant: int = 0
) -> Optional[Table]:
    """Apply one perturbation to one column; None when inapplicable."""
    if not 0 <= column_index < table.num_columns:
        raise DatasetError(f"column index {column_index} out of range")
    header = table.header[column_index]
    if kind == PerturbationKind.SCHEMA_SYNONYM:
        replacement = synonym_of(header, variant)
        if replacement is None:
            return None
        return table.rename_column(column_index, replacement)
    if kind == PerturbationKind.SCHEMA_ABBREVIATION:
        abbreviated = abbreviate(header)
        if abbreviated == header.lower():
            return None
        return table.rename_column(column_index, abbreviated)
    if kind == PerturbationKind.COLUMN_EQUIVALENCE:
        rule = EQUIVALENCES.get(header.strip().lower())
        if rule is None:
            return None
        new_header, rewrite = rule
        values = rewrite(table.column_values(column_index))
        renamed = table.rename_column(column_index, new_header)
        return renamed.replace_column(
            column_index, values, new_schema=ColumnSchema(name=new_header)
        )
    raise DatasetError(f"unknown perturbation kind {kind!r}")


class PerturbationSuite:
    """All applicable perturbations of a corpus, grouped by kind."""

    def __init__(self, corpus: TableCorpus, *, synonym_variants: int = 2):
        self.corpus = corpus
        self.cases: Dict[PerturbationKind, List[PerturbedColumn]] = {
            kind: [] for kind in PerturbationKind
        }
        for table in corpus:
            for col in range(table.num_columns):
                for kind in PerturbationKind:
                    variants = synonym_variants if kind == PerturbationKind.SCHEMA_SYNONYM else 1
                    for variant in range(variants):
                        perturbed = perturb_table(table, col, kind, variant=variant)
                        if perturbed is None:
                            continue
                        if (
                            kind == PerturbationKind.SCHEMA_SYNONYM
                            and variant > 0
                            and perturbed.header[col]
                            == self.cases[kind][-1].perturbed_header
                        ):
                            continue  # synonym list shorter than variant count
                        self.cases[kind].append(
                            PerturbedColumn(
                                kind=kind,
                                table=table,
                                perturbed_table=perturbed,
                                column_index=col,
                            )
                        )

    def of_kind(self, kind: PerturbationKind) -> List[PerturbedColumn]:
        return list(self.cases[kind])

    def total_cases(self) -> int:
        return sum(len(v) for v in self.cases.values())
