"""Table corpus container.

A thin, ordered collection of tables with filtering helpers; every property
runner consumes a :class:`TableCorpus` so experiment code reads the same for
all dataset suites.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from repro.errors import DatasetError
from repro.relational.table import Table


class TableCorpus:
    """Ordered, named collection of tables."""

    def __init__(self, name: str, tables: Sequence[Table]):
        if not tables:
            raise DatasetError(f"corpus {name!r} must contain at least one table")
        self.name = name
        self.tables = list(tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables)

    def __getitem__(self, index: int) -> Table:
        return self.tables[index]

    def __repr__(self) -> str:
        return f"TableCorpus({self.name!r}, {len(self.tables)} tables)"

    def filter(self, predicate: Callable[[Table], bool], name: Optional[str] = None) -> "TableCorpus":
        """Sub-corpus of tables satisfying ``predicate``."""
        kept = [t for t in self.tables if predicate(t)]
        if not kept:
            raise DatasetError(f"filter left corpus {self.name!r} empty")
        return TableCorpus(name or f"{self.name}/filtered", kept)

    def take(self, count: int) -> "TableCorpus":
        """First ``count`` tables."""
        if count < 1:
            raise DatasetError("count must be positive")
        return TableCorpus(self.name, self.tables[:count])

    def with_min_rows(self, min_rows: int) -> "TableCorpus":
        return self.filter(lambda t: t.num_rows >= min_rows, f"{self.name}/min{min_rows}r")

    def with_min_columns(self, min_columns: int) -> "TableCorpus":
        return self.filter(
            lambda t: t.num_columns >= min_columns, f"{self.name}/min{min_columns}c"
        )

    def entity_rich(self) -> "TableCorpus":
        """Tables carrying entity links (what TURL-style models require)."""
        return self.filter(lambda t: bool(t.entity_links), f"{self.name}/entities")

    def table_ids(self) -> List[str]:
        return [t.table_id for t in self.tables]
