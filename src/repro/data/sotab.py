"""SOTAB-like typed-column corpus (Property 8).

The Schema.org Table Annotation Benchmark provides tables annotated with
semantic column types; the paper extracts a 5,000-table subset over 20
types, balanced between textual and non-textual (DATE, ISBN, POSTAL CODES,
MONEY, QUANTITY, …).  This generator produces the same shape: tables mixing
textual and non-textual columns, optionally headerless (the paper's Figure 4
example has no header), each column annotated with its semantic type so the
heterogeneous-context property can split results by type family.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.data import banks
from repro.data.corpus import TableCorpus
from repro.errors import DatasetError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.values import infer_column_type
from repro.seeding import rng_for

# 20 semantic types: 10 textual, 10 non-textual, mirroring the balanced
# SOTAB subset.  Each entry: semantic type -> (textual?, value fabricator).
ValueFactory = Callable[[int, tuple], List[object]]


def _from_bank(column: int, bank) -> ValueFactory:
    def make(count: int, seed_parts: tuple) -> List[object]:
        rows = banks.sample_rows_from_bank(bank, count, "sotab", *seed_parts)
        return [r[column] for r in rows]

    return make


def _numbers(low: int, high: int) -> ValueFactory:
    def make(count: int, seed_parts: tuple) -> List[object]:
        rng = rng_for("sotab-num", low, high, *seed_parts)
        return [int(v) for v in rng.integers(low, high, size=count)]

    return make


def _percent(count: int, seed_parts: tuple) -> List[object]:
    rng = rng_for("sotab-pct", *seed_parts)
    return [f"{round(float(v), 1)}%" for v in rng.uniform(0, 100, size=count)]


def _rating(count: int, seed_parts: tuple) -> List[object]:
    rng = rng_for("sotab-rating", *seed_parts)
    return [round(float(v), 1) for v in rng.uniform(1, 5, size=count)]


def _phone(count: int, seed_parts: tuple) -> List[object]:
    rng = rng_for("sotab-phone", *seed_parts)
    return [
        f"({int(rng.integers(200, 999))}) {int(rng.integers(200, 999))}-"
        f"{int(rng.integers(1000, 9999))}"
        for _ in range(count)
    ]


def _events(count: int, seed_parts: tuple) -> List[object]:
    rows = banks.sample_rows_from_bank(
        [(e,) for e in banks.SPORTS_EVENTS], count, "sotab-event", *seed_parts
    )
    return [r[0] for r in rows]


SEMANTIC_TYPES: Dict[str, Tuple[bool, ValueFactory]] = {
    # textual types
    "country": (True, _from_bank(0, banks.COUNTRIES)),
    "city": (True, _from_bank(0, banks.CITIES)),
    "person name": (True, lambda n, sp: banks.random_names(n, *sp)),
    "company": (True, _from_bank(0, banks.COMPANIES)),
    "product": (True, _from_bank(0, banks.PRODUCTS)),
    "genre": (True, _from_bank(3, banks.MOVIES)),
    "nutrient": (True, _from_bank(0, banks.NUTRIENTS)),
    "event": (True, _events),
    "book": (True, _from_bank(0, banks.BOOKS)),
    "sector": (True, _from_bank(1, banks.COMPANIES)),
    # non-textual types
    "date": (False, lambda n, sp: banks.random_dates(n, *sp)),
    "isbn": (False, lambda n, sp: banks.random_isbns(n, *sp)),
    "postal code": (False, lambda n, sp: banks.random_postal_codes(n, *sp)),
    "money": (False, lambda n, sp: banks.random_money(n, *sp)),
    "quantity": (False, lambda n, sp: banks.random_quantities(n, *sp)),
    "year": (False, _numbers(1900, 2025)),
    "population": (False, _numbers(1000, 10_000_000)),
    "percentage": (False, _percent),
    "rating": (False, _rating),
    "phone": (False, _phone),
}

TEXTUAL_TYPES = tuple(t for t, (is_text, _) in SEMANTIC_TYPES.items() if is_text)
NON_TEXTUAL_TYPES = tuple(t for t, (is_text, _) in SEMANTIC_TYPES.items() if not is_text)


def is_textual_type(semantic_type: str) -> bool:
    try:
        return SEMANTIC_TYPES[semantic_type][0]
    except KeyError:
        raise DatasetError(f"unknown semantic type {semantic_type!r}") from None


class SotabGenerator:
    """Seeded generator of typed, optionally headerless tables."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(
        self,
        n_tables: int,
        *,
        min_rows: int = 6,
        max_rows: int = 10,
        headerless_fraction: float = 0.5,
        name: str = "sotab",
    ) -> TableCorpus:
        """Generate tables whose target columns sweep all 20 types.

        Every table gets one textual *subject-like* column (entity names),
        one target column whose type cycles through the 20 semantic types,
        and 2-3 filler columns of random other types, in random column
        positions.  A ``headerless_fraction`` of tables drops headers
        (empty strings), as in the WDC corpus.
        """
        if n_tables < 1:
            raise DatasetError("n_tables must be positive")
        if not 0 <= headerless_fraction <= 1:
            raise DatasetError("headerless_fraction must be in [0, 1]")
        types = list(SEMANTIC_TYPES)
        tables = []
        for i in range(n_tables):
            target_type = types[i % len(types)]
            tables.append(
                self.generate_table(
                    target_type,
                    table_index=i,
                    min_rows=min_rows,
                    max_rows=max_rows,
                    headerless=(i % max(1, round(1 / headerless_fraction)) == 0)
                    if headerless_fraction > 0
                    else False,
                )
            )
        return TableCorpus(name, tables)

    def generate_table(
        self,
        target_type: str,
        *,
        table_index: int = 0,
        min_rows: int = 6,
        max_rows: int = 10,
        headerless: bool = False,
    ) -> Table:
        """One table with a designated target column of ``target_type``."""
        if target_type not in SEMANTIC_TYPES:
            raise DatasetError(f"unknown semantic type {target_type!r}")
        rng = rng_for("sotab-table", self.seed, table_index, target_type)
        n_rows = int(rng.integers(min_rows, max_rows + 1))
        seed_parts = (self.seed, table_index)

        subject_values = banks.random_names(n_rows, "sotab-subject", *seed_parts)
        columns: List[Tuple[str, str, List[object]]] = [
            ("entity", "person name", subject_values)
        ]
        target_values = SEMANTIC_TYPES[target_type][1](n_rows, seed_parts)
        columns.append((target_type, target_type, list(target_values)))
        other_types = [t for t in SEMANTIC_TYPES if t != target_type]
        n_fillers = int(rng.integers(2, 4))
        filler_idx = rng.choice(len(other_types), size=n_fillers, replace=False)
        for j, idx in enumerate(filler_idx):
            filler = other_types[int(idx)]
            values = SEMANTIC_TYPES[filler][1](n_rows, (*seed_parts, j))
            columns.append((filler, filler, list(values)))

        order = list(rng.permutation(len(columns)))
        columns = [columns[i] for i in order]

        schema = TableSchema(
            [
                ColumnSchema(
                    name="" if headerless else header,
                    data_type=infer_column_type(values),
                    semantic_type=semantic,
                    is_subject=(semantic == "person name" and header == "entity"),
                )
                for header, semantic, values in columns
            ]
        )
        rows = [
            tuple(values[r] for _, _, values in columns) for r in range(n_rows)
        ]
        return Table(
            schema,
            rows,
            table_id=f"sotab-{self.seed}-{table_index}-{target_type.replace(' ', '_')}",
        )

    @staticmethod
    def target_column_index(table: Table) -> int:
        """Index of the table's designated target column (from its id)."""
        target = table.table_id.rsplit("-", 1)[-1].replace("_", " ")
        for i, col in enumerate(table.schema):
            if col.semantic_type == target:
                return i
        raise DatasetError(f"table {table.table_id!r} has no target column")
