"""Domain vocabularies backing the synthetic dataset generators.

Banks are small, curated, *semantically consistent* value pools: countries
carry their real continents, capitals, and currencies (so planted functional
dependencies like country -> continent are true facts), players carry
nationalities, movies carry directors and years.  Generators sample from
these pools with seeded RNGs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.seeding import rng_for

# (country, continent, capital, currency)
COUNTRIES: List[Tuple[str, str, str, str]] = [
    ("Netherlands", "Europe", "Amsterdam", "EUR"),
    ("Germany", "Europe", "Berlin", "EUR"),
    ("France", "Europe", "Paris", "EUR"),
    ("Spain", "Europe", "Madrid", "EUR"),
    ("Italy", "Europe", "Rome", "EUR"),
    ("Switzerland", "Europe", "Bern", "CHF"),
    ("Serbia", "Europe", "Belgrade", "RSD"),
    ("Croatia", "Europe", "Zagreb", "EUR"),
    ("United Kingdom", "Europe", "London", "GBP"),
    ("Sweden", "Europe", "Stockholm", "SEK"),
    ("Norway", "Europe", "Oslo", "NOK"),
    ("Romania", "Europe", "Bucharest", "RON"),
    ("USA", "North America", "Washington", "USD"),
    ("Canada", "North America", "Ottawa", "CAD"),
    ("Mexico", "North America", "Mexico City", "MXN"),
    ("Brazil", "South America", "Brasilia", "BRL"),
    ("Argentina", "South America", "Buenos Aires", "ARS"),
    ("Chile", "South America", "Santiago", "CLP"),
    ("China", "Asia", "Beijing", "CNY"),
    ("Japan", "Asia", "Tokyo", "JPY"),
    ("India", "Asia", "New Delhi", "INR"),
    ("South Korea", "Asia", "Seoul", "KRW"),
    ("Indonesia", "Asia", "Jakarta", "IDR"),
    ("Australia", "Oceania", "Canberra", "AUD"),
    ("New Zealand", "Oceania", "Wellington", "NZD"),
    ("Egypt", "Africa", "Cairo", "EGP"),
    ("Nigeria", "Africa", "Abuja", "NGN"),
    ("Kenya", "Africa", "Nairobi", "KES"),
    ("South Africa", "Africa", "Pretoria", "ZAR"),
    ("Morocco", "Africa", "Rabat", "MAD"),
]

# (player, country)
TENNIS_PLAYERS: List[Tuple[str, str]] = [
    ("Roger Federer", "Switzerland"),
    ("Rafael Nadal", "Spain"),
    ("Novak Djokovic", "Serbia"),
    ("Andy Murray", "United Kingdom"),
    ("Stan Wawrinka", "Switzerland"),
    ("Marin Cilic", "Croatia"),
    ("Pete Sampras", "USA"),
    ("Andre Agassi", "USA"),
    ("Bjorn Borg", "Sweden"),
    ("Rod Laver", "Australia"),
    ("Ivan Lendl", "USA"),
    ("Boris Becker", "Germany"),
    ("Stefan Edberg", "Sweden"),
    ("Jimmy Connors", "USA"),
    ("John McEnroe", "USA"),
]

# (title, director, year, genre)
MOVIES: List[Tuple[str, str, int, str]] = [
    ("The Shawshank Redemption", "Frank Darabont", 1994, "Drama"),
    ("The Godfather", "Francis Coppola", 1972, "Crime"),
    ("The Dark Knight", "Christopher Nolan", 2008, "Action"),
    ("Pulp Fiction", "Quentin Tarantino", 1994, "Crime"),
    ("Forrest Gump", "Robert Zemeckis", 1994, "Drama"),
    ("Inception", "Christopher Nolan", 2010, "Science Fiction"),
    ("The Matrix", "Lana Wachowski", 1999, "Science Fiction"),
    ("Goodfellas", "Martin Scorsese", 1990, "Crime"),
    ("Interstellar", "Christopher Nolan", 2014, "Science Fiction"),
    ("Parasite", "Bong Joon-ho", 2019, "Thriller"),
    ("Gladiator", "Ridley Scott", 2000, "Action"),
    ("Titanic", "James Cameron", 1997, "Romance"),
    ("Avatar", "James Cameron", 2009, "Science Fiction"),
    ("Casablanca", "Michael Curtiz", 1942, "Romance"),
    ("Jaws", "Steven Spielberg", 1975, "Thriller"),
]

# (nutrient, kind, unit)
NUTRIENTS: List[Tuple[str, str, str]] = [
    ("Vitamin A", "vitamin", "mg"),
    ("Vitamin C", "vitamin", "mg"),
    ("Vitamin D", "vitamin", "mg"),
    ("Vitamin B12", "vitamin", "mg"),
    ("Calcium", "mineral", "mg"),
    ("Iron", "mineral", "mg"),
    ("Zinc", "mineral", "mg"),
    ("Magnesium", "mineral", "mg"),
    ("Potassium", "mineral", "mg"),
    ("Sodium", "mineral", "mg"),
    ("Protein", "macronutrient", "g"),
    ("Fiber", "macronutrient", "g"),
    ("Omega 3", "fatty acid", "g"),
    ("Folate", "vitamin", "mg"),
    ("Iodine", "mineral", "mg"),
]

# (company, sector, hq country)
COMPANIES: List[Tuple[str, str, str]] = [
    ("Apple", "Technology", "USA"),
    ("Microsoft", "Technology", "USA"),
    ("Alphabet", "Technology", "USA"),
    ("Amazon", "Retail", "USA"),
    ("Nvidia", "Technology", "USA"),
    ("Meta", "Technology", "USA"),
    ("Tesla", "Automotive", "USA"),
    ("Samsung", "Technology", "South Korea"),
    ("Toyota", "Automotive", "Japan"),
    ("Siemens", "Industrial", "Germany"),
    ("Shell", "Energy", "Netherlands"),
    ("Nestle", "Consumer Goods", "Switzerland"),
    ("ASML", "Technology", "Netherlands"),
    ("Volkswagen", "Automotive", "Germany"),
    ("Alibaba", "Retail", "China"),
]

# (city, country)
CITIES: List[Tuple[str, str]] = [
    ("Amsterdam", "Netherlands"),
    ("Rotterdam", "Netherlands"),
    ("Berlin", "Germany"),
    ("Munich", "Germany"),
    ("Paris", "France"),
    ("Lyon", "France"),
    ("Madrid", "Spain"),
    ("Barcelona", "Spain"),
    ("Rome", "Italy"),
    ("Milan", "Italy"),
    ("London", "United Kingdom"),
    ("Manchester", "United Kingdom"),
    ("New York", "USA"),
    ("Chicago", "USA"),
    ("Los Angeles", "USA"),
    ("Toronto", "Canada"),
    ("Vancouver", "Canada"),
    ("Tokyo", "Japan"),
    ("Osaka", "Japan"),
    ("Beijing", "China"),
    ("Shanghai", "China"),
    ("Sydney", "Australia"),
    ("Melbourne", "Australia"),
    ("Cairo", "Egypt"),
    ("Nairobi", "Kenya"),
]

FIRST_NAMES = (
    "James Mary Robert Patricia John Jennifer Michael Linda David Elizabeth "
    "William Barbara Richard Susan Joseph Jessica Thomas Sarah Charles Karen "
    "Daniel Lisa Matthew Nancy Anthony Betty Mark Margaret Paul Sandra"
).split()

LAST_NAMES = (
    "Smith Johnson Williams Brown Jones Garcia Miller Davis Rodriguez "
    "Martinez Hernandez Lopez Gonzalez Wilson Anderson Thomas Taylor Moore "
    "Jackson Martin Lee Perez Thompson White Harris Sanchez Clark Ramirez "
    "Lewis Robinson"
).split()

SPORTS_EVENTS = (
    "World Championships,Olympic Games,Commonwealth Games,European "
    "Championships,Pan American Games,Asian Games,World Cup,Grand Slam,"
    "Masters,Diamond League"
).split(",")

GENRES = "Drama Crime Action Comedy Thriller Romance Documentary Horror".split()

PRODUCTS: List[Tuple[str, str]] = [
    ("Laptop Pro 14", "Electronics"),
    ("Smartphone X", "Electronics"),
    ("Wireless Earbuds", "Electronics"),
    ("Espresso Machine", "Kitchen"),
    ("Blender Max", "Kitchen"),
    ("Air Fryer", "Kitchen"),
    ("Running Shoes", "Sports"),
    ("Yoga Mat", "Sports"),
    ("Mountain Bike", "Sports"),
    ("Office Chair", "Furniture"),
    ("Standing Desk", "Furniture"),
    ("Bookshelf", "Furniture"),
    ("Desk Lamp", "Furniture"),
    ("Gaming Console", "Electronics"),
    ("Tablet Air", "Electronics"),
]

# (book, author)
BOOKS: List[Tuple[str, str]] = [
    ("Foundations of Databases", "Serge Abiteboul"),
    ("The Pragmatic Programmer", "Andrew Hunt"),
    ("Clean Code", "Robert Martin"),
    ("Deep Learning", "Ian Goodfellow"),
    ("Artificial Intelligence", "Stuart Russell"),
    ("Introduction to Algorithms", "Thomas Cormen"),
    ("The C Programming Language", "Brian Kernighan"),
    ("Designing Data Intensive Applications", "Martin Kleppmann"),
    ("Pattern Recognition", "Christopher Bishop"),
    ("Database System Concepts", "Abraham Silberschatz"),
]


def bank_vocabulary() -> List[str]:
    """All words used by the banks (feeds the tokenizer vocabulary)."""
    words: List[str] = []
    for rows in (COUNTRIES, TENNIS_PLAYERS, MOVIES, NUTRIENTS, COMPANIES, CITIES,
                 PRODUCTS, BOOKS):
        for row in rows:
            for field in row:
                if isinstance(field, str):
                    words.extend(field.lower().split())
    words.extend(w.lower() for w in FIRST_NAMES + LAST_NAMES + GENRES)
    for event in SPORTS_EVENTS:
        words.extend(event.lower().split())
    return sorted(set(words))


# ----------------------------------------------------------------------
# Value fabricators for non-textual data types
# ----------------------------------------------------------------------

def random_dates(count: int, *seed_parts) -> List[str]:
    """ISO dates between 1990 and 2024."""
    rng = rng_for("dates", *seed_parts)
    out = []
    for _ in range(count):
        year = int(rng.integers(1990, 2025))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        out.append(f"{year:04d}-{month:02d}-{day:02d}")
    return out


def random_isbns(count: int, *seed_parts) -> List[str]:
    rng = rng_for("isbns", *seed_parts)
    return [
        f"978-{rng.integers(0, 10)}-{rng.integers(1000, 9999)}-"
        f"{rng.integers(1000, 9999)}-{rng.integers(0, 10)}"
        for _ in range(count)
    ]


def random_postal_codes(count: int, *seed_parts) -> List[str]:
    rng = rng_for("postal", *seed_parts)
    return [f"{int(rng.integers(10000, 99999)):05d}" for _ in range(count)]


def random_money(count: int, *seed_parts) -> List[str]:
    rng = rng_for("money", *seed_parts)
    return [f"${rng.integers(1, 2000)}.{rng.integers(0, 100):02d}" for _ in range(count)]


def random_quantities(count: int, *seed_parts) -> List[str]:
    rng = rng_for("quantity", *seed_parts)
    units = ["kg", "g", "km", "m", "l", "ml"]
    return [
        f"{rng.integers(1, 500)}.{rng.integers(0, 10)} {units[int(rng.integers(0, len(units)))]}"
        for _ in range(count)
    ]


def random_names(count: int, *seed_parts) -> List[str]:
    rng = rng_for("names", *seed_parts)
    return [
        f"{FIRST_NAMES[int(rng.integers(0, len(FIRST_NAMES)))]} "
        f"{LAST_NAMES[int(rng.integers(0, len(LAST_NAMES)))]}"
        for _ in range(count)
    ]


def sample_rows_from_bank(
    bank: Sequence[tuple], count: int, *seed_parts, replace: bool = True
) -> List[tuple]:
    """Seeded sample of rows from a bank (with replacement by default)."""
    rng = rng_for("bank_sample", *seed_parts)
    n = len(bank)
    if not replace and count > n:
        count = n
    idx = rng.choice(n, size=count, replace=replace)
    return [bank[int(i)] for i in idx]


DOMAIN_BANKS: Dict[str, Sequence[tuple]] = {
    "countries": COUNTRIES,
    "tennis": TENNIS_PLAYERS,
    "movies": MOVIES,
    "nutrients": NUTRIENTS,
    "companies": COMPANIES,
    "cities": CITIES,
    "products": PRODUCTS,
    "books": BOOKS,
}
