"""NextiaJD-like joinability testbeds (Property 3).

Flores et al. collected 139 open datasets, split them into four testbeds by
file size (XS < 1 MB … L > 1 GB), and labelled candidate column pairs with a
join quality derived from *containment* and *cardinality proportion* with
empirically determined thresholds.  This generator reproduces the protocol
synthetically: (query, candidate) column pairs with controlled value
overlap spanning (0, 1], multiplicities (so multiset Jaccard differs from
set Jaccard), size-scaled testbeds, and the quality labelling rule.  The
paper evaluates all pairs with quality > 0.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data import banks
from repro.errors import DatasetError
from repro.relational.overlap import containment, jaccard, multiset_jaccard
from repro.relational.table import Table
from repro.seeding import rng_for


class Testbed(enum.Enum):
    """Size-based testbeds mirroring NextiaJD's XS/S/M/L split."""

    XS = "xs"
    S = "s"
    M = "m"
    L = "l"

    @property
    def column_size_range(self) -> Tuple[int, int]:
        """(min, max) number of values per generated column."""
        return {
            Testbed.XS: (40, 120),
            Testbed.S: (120, 400),
            Testbed.M: (400, 1000),
            Testbed.L: (1000, 2500),
        }[self]


# Header vocabulary for join columns; joinable pairs tend to carry the same
# or a related header (they denote the same real-world attribute), which is
# itself a signal header-driven models exploit.
_HEADER_SYNONYMS: Dict[str, List[str]] = {
    "country": ["country", "nation", "country name"],
    "city": ["city", "town", "municipality"],
    "company": ["company", "organization", "employer"],
    "product": ["product", "item", "article"],
    "name": ["name", "full name", "person"],
    "genre": ["genre", "category", "kind"],
    "code": ["code", "identifier", "id"],
}


@dataclasses.dataclass(frozen=True)
class JoinPair:
    """A (query, candidate) column pair with overlap statistics and label."""

    pair_id: str
    query_header: str
    query_values: Tuple[str, ...]
    candidate_header: str
    candidate_values: Tuple[str, ...]
    containment: float
    jaccard: float
    multiset_jaccard: float
    quality: float

    @property
    def is_joinable(self) -> bool:
        return self.quality > 0.0


def join_quality(containment_value: float, cardinality_proportion: float) -> float:
    """NextiaJD-style discrete join quality from containment and K.

    K is the cardinality proportion |distinct(Q)| / |distinct(C)|.  The rule
    follows the shape of the NextiaJD labelling (containment thresholds
    0.75/0.5/0.25/0.1 gated by a minimum cardinality balance); pairs below
    the lowest band are non-joinable (quality 0).
    """
    if not 0.0 <= containment_value <= 1.0:
        raise DatasetError(f"containment must be in [0,1], got {containment_value}")
    if cardinality_proportion < 0.0:
        raise DatasetError("cardinality proportion must be non-negative")
    balance = min(cardinality_proportion, 1.0)
    if containment_value >= 0.75 and balance >= 0.25:
        return 1.0
    if containment_value >= 0.5 and balance >= 0.125:
        return 0.75
    if containment_value >= 0.25 and balance >= 0.0625:
        return 0.5
    if containment_value >= 0.1:
        return 0.25
    return 0.0


class NextiaJDGenerator:
    """Seeded generator of labelled join-candidate column pairs."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _value_universe(self) -> List[str]:
        """String universe join columns draw from (entities + codes)."""
        universe = [c[0] for c in banks.CITIES]
        universe += [c[0] for c in banks.COUNTRIES]
        universe += [p[0] for p in banks.PRODUCTS]
        universe += [c[0] for c in banks.COMPANIES]
        universe += banks.random_names(40, "universe", self.seed)
        rng = rng_for("universe-codes", self.seed)
        universe += [
            f"{chr(65 + int(rng.integers(0, 26)))}{chr(65 + int(rng.integers(0, 26)))}"
            f"-{int(rng.integers(100, 9999))}"
            for _ in range(80)
        ]
        return universe

    def generate_pairs(
        self,
        n_pairs: int,
        testbed: Testbed = Testbed.XS,
        *,
        joinable_only: bool = True,
    ) -> List[JoinPair]:
        """Generate ``n_pairs`` labelled pairs (quality > 0 when filtered).

        Two overlap dimensions are controlled *independently*, as in real
        join repositories: the fraction of the query's *distinct* values
        shared with the candidate (drives containment/Jaccard), and the
        fraction of each column's total value *mass* carried by those shared
        values (drives multiset Jaccard, since duplicates count).  A column
        with 90% distinct overlap may still share little mass when its
        duplicates concentrate on unshared values — which is exactly why
        set- and multiset-semantics measures decorrelate.  Header agreement
        follows mass overlap (columns denoting the same attribute share both
        frequent values and names).
        """
        if n_pairs < 1:
            raise DatasetError("n_pairs must be positive")
        universe = self._value_universe()
        pairs: List[JoinPair] = []
        attempt = 0
        lo, hi = testbed.column_size_range
        while len(pairs) < n_pairs:
            rng = rng_for("nextiajd-pair", self.seed, testbed.value, attempt)
            attempt += 1
            if attempt > 50 * n_pairs:
                raise DatasetError("could not generate enough joinable pairs")
            target_distinct = float(rng.uniform(0.05 if not joinable_only else 0.1, 1.0))
            # Mass share is *partially* coupled to distinct share: columns
            # denoting the same attribute tend to agree on both, but skewed
            # duplicate distributions decorrelate them substantially.
            query_mass_share = float(
                np.clip(0.55 * target_distinct + rng.uniform(0.05, 0.5), 0.05, 0.98)
            )
            candidate_mass_share = float(
                np.clip(0.55 * target_distinct + rng.uniform(0.05, 0.5), 0.05, 0.98)
            )

            n_query_distinct = int(rng.integers(max(5, lo // 4), max(6, hi // 4)))
            distinct = list(
                rng.choice(
                    len(universe),
                    size=min(len(universe), n_query_distinct * 2),
                    replace=False,
                )
            )
            query_distinct = [universe[i] for i in distinct[:n_query_distinct]]
            spare = [universe[i] for i in distinct[n_query_distinct:]]

            n_shared = max(1, round(target_distinct * n_query_distinct))
            shared = query_distinct[:n_shared]
            n_candidate_extra = int(rng.integers(0, max(1, n_query_distinct)))
            candidate_distinct = shared + spare[:n_candidate_extra]

            query_values = self._with_mass_split(
                query_distinct, set(shared), query_mass_share, lo, hi, rng
            )
            candidate_values = self._with_mass_split(
                candidate_distinct, set(shared), candidate_mass_share, lo, hi, rng
            )

            c = containment(query_values, candidate_values)
            j = jaccard(query_values, candidate_values)
            mj = multiset_jaccard(query_values, candidate_values)

            header_key = list(_HEADER_SYNONYMS)[int(rng.integers(0, len(_HEADER_SYNONYMS)))]
            synonyms = _HEADER_SYNONYMS[header_key]
            query_header = synonyms[0]
            # Header similarity follows mass overlap (mj in [0, 0.5]): high
            # shared mass means the columns denote the same attribute and
            # (almost always) carry the same name; moderate overlap yields a
            # shared-token variant ("country" -> "country code"); low
            # overlap an unrelated synonym.  A small flip rate keeps the
            # coupling stochastic.
            level = 2 if mj > 0.19 else (1 if mj > 0.13 else 0)
            if rng.uniform() < 0.15:
                level = int(rng.integers(0, 3))
            if level == 2:
                candidate_header = query_header
            elif level == 1:
                modifier = ["code", "name", "id", "value"][int(rng.integers(0, 4))]
                candidate_header = f"{query_header} {modifier}"
            else:
                candidate_header = synonyms[int(rng.integers(1, len(synonyms)))]

            k = len(set(query_distinct)) / max(1, len(set(candidate_distinct)))
            quality = join_quality(c, k)
            if joinable_only and quality <= 0.0:
                continue
            pairs.append(
                JoinPair(
                    pair_id=f"{testbed.value}-{len(pairs)}",
                    query_header=query_header,
                    query_values=tuple(query_values),
                    candidate_header=candidate_header,
                    candidate_values=tuple(candidate_values),
                    containment=c,
                    jaccard=j,
                    multiset_jaccard=mj,
                    quality=quality,
                )
            )
        return pairs

    @staticmethod
    def _with_mass_split(
        distinct: Sequence[str],
        shared: set,
        shared_mass: float,
        lo: int,
        hi: int,
        rng,
    ) -> List[str]:
        """Expand distinct values into a multiset with a target mass split.

        Approximately ``shared_mass`` of the column's total occurrences fall
        on values in ``shared``; the remainder on the others.  Every distinct
        value appears at least once.  Column size lands in [lo, hi].
        """
        size = int(rng.integers(lo, hi + 1))
        shared_list = [v for v in distinct if v in shared]
        other_list = [v for v in distinct if v not in shared]
        if not other_list:
            shared_mass = 1.0
        if not shared_list:
            shared_mass = 0.0
        extra = max(size - len(distinct), 0)
        extra_shared = round(extra * shared_mass)
        values: List[str] = list(distinct)
        for bucket, count in ((shared_list, extra_shared), (other_list, extra - extra_shared)):
            if not bucket or count <= 0:
                continue
            weights = rng.exponential(scale=1.0, size=len(bucket)) + 0.1
            weights = weights / weights.sum()
            for value, reps in zip(bucket, rng.multinomial(count, weights)):
                values.extend([value] * int(reps))
        rng.shuffle(values)
        return values

    def generate_large_table(
        self, n_rows: int = 2000, n_columns: int = 30, *, table_id: str = "nextiajd-large"
    ) -> Table:
        """A wide/long table for the Section 7 large-dimensionality check."""
        if n_rows < 2 or n_columns < 2:
            raise DatasetError("large table needs at least 2x2 cells")
        universe = self._value_universe()
        rng = rng_for("nextiajd-large", self.seed, n_rows, n_columns)
        named_columns = []
        for c in range(n_columns):
            if c % 3 == 0:
                values = [universe[int(i)] for i in rng.integers(0, len(universe), size=n_rows)]
            elif c % 3 == 1:
                values = [int(v) for v in rng.integers(0, 100000, size=n_rows)]
            else:
                values = [round(float(v), 2) for v in rng.uniform(0, 1000, size=n_rows)]
            named_columns.append((f"attr_{c}", values))
        return Table.from_columns(named_columns, table_id=table_id)
