"""CSV import/export for tables.

Observatory is only useful to practitioners if it runs on *their* tables;
these loaders move data between CSV files and :class:`Table` with type
inference on the way in.  Only the standard library ``csv`` module is used.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import DatasetError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.values import infer_column_type, parse_value

PathLike = Union[str, Path]


def table_from_csv_text(
    text: str,
    *,
    table_id: str = "",
    has_header: bool = True,
    parse_values: bool = True,
    delimiter: str = ",",
) -> Table:
    """Parse CSV text into a typed :class:`Table`.

    With ``has_header=False`` columns are named ``col0..colN`` (headerless
    web tables, as in the paper's Figure 4).  ``parse_values`` converts
    cells to ints/floats/bools where they parse cleanly; malformed cells
    stay strings.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise DatasetError("CSV input is empty")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise DatasetError("CSV rows have inconsistent arity")
    if has_header:
        header, data = rows[0], rows[1:]
    else:
        header, data = [f"col{i}" for i in range(width)], rows
    if not data:
        raise DatasetError("CSV has a header but no data rows")

    columns: List[List[object]] = [[row[i] for row in data] for i in range(width)]
    if parse_values:
        columns = [[parse_value(cell) for cell in column] for column in columns]
    schema = TableSchema(
        [
            ColumnSchema(
                name="" if not has_header else header[i],
                data_type=infer_column_type(columns[i]),
            )
            for i in range(width)
        ]
    )
    table_rows = [tuple(columns[i][r] for i in range(width)) for r in range(len(data))]
    return Table(schema, table_rows, table_id=table_id)


def load_csv(path: PathLike, **kwargs) -> Table:
    """Read a CSV file into a table; ``table_id`` defaults to the filename."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    text = path.read_text(encoding="utf-8")
    kwargs.setdefault("table_id", path.stem)
    return table_from_csv_text(text, **kwargs)


def table_to_csv_text(table: Table, *, delimiter: str = ",") -> str:
    """Render a table as CSV text (header included when any name is set)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    if any(table.header):
        writer.writerow(table.header)
    for row in table.rows:
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue()


def save_csv(table: Table, path: PathLike, *, delimiter: str = ",") -> None:
    """Write a table to a CSV file."""
    Path(path).write_text(table_to_csv_text(table, delimiter=delimiter), encoding="utf-8")


def load_directory(
    directory: PathLike,
    *,
    pattern: str = "*.csv",
    limit: Optional[int] = None,
) -> List[Table]:
    """Load every CSV in a directory (sorted by name) into tables."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"no such directory: {directory}")
    tables = []
    for path in sorted(directory.glob(pattern)):
        tables.append(load_csv(path))
        if limit is not None and len(tables) >= limit:
            break
    if not tables:
        raise DatasetError(f"no files matching {pattern!r} in {directory}")
    return tables
