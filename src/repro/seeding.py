"""Deterministic seeding and stable hashing utilities.

Everything in this library that involves randomness — synthetic datasets,
surrogate model weights, permutation sampling — flows through this module so
that runs are reproducible bit-for-bit across processes and platforms.

Python's builtin ``hash`` is salted per process, so we derive integer seeds
from BLAKE2b digests instead.  Seeds are namespaced: ``derive_seed("weights",
"bert", layer=2)`` and ``derive_seed("weights", "t5", layer=2)`` give
independent streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

# Upper bound for derived seeds; numpy accepts any uint64-ish seed but keeping
# them within 63 bits avoids signed/unsigned surprises in downstream code.
_SEED_MASK = (1 << 63) - 1

Seedable = Union[str, int, float, bytes, bool, None]


def stable_hash(*parts: Seedable) -> int:
    """Return a 63-bit integer hash of ``parts``, stable across processes.

    Parts are encoded with explicit type tags so that ``stable_hash(1)`` and
    ``stable_hash("1")`` differ.
    """
    hasher = hashlib.blake2b(digest_size=8)
    for part in parts:
        if part is None:
            hasher.update(b"\x00N")
        elif isinstance(part, bool):
            hasher.update(b"\x00B" + (b"1" if part else b"0"))
        elif isinstance(part, int):
            hasher.update(b"\x00I" + str(part).encode("utf-8"))
        elif isinstance(part, float):
            hasher.update(b"\x00F" + repr(part).encode("utf-8"))
        elif isinstance(part, bytes):
            hasher.update(b"\x00Y" + part)
        elif isinstance(part, str):
            hasher.update(b"\x00S" + part.encode("utf-8"))
        else:
            raise TypeError(f"unhashable seed part of type {type(part)!r}")
        hasher.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(hasher.digest(), "big") & _SEED_MASK


def derive_seed(*parts: Seedable) -> int:
    """Derive a namespaced RNG seed from arbitrary parts."""
    return stable_hash(*parts)


def rng_for(*parts: Seedable) -> np.random.Generator:
    """Return a numpy Generator seeded from the namespaced parts."""
    return np.random.default_rng(derive_seed(*parts))


def token_vector(token: str, dim: int, namespace: str = "content") -> np.ndarray:
    """Deterministic unit-variance Gaussian vector for a token.

    Token vectors live in a *shared* content space: every surrogate model
    uses the same mapping (models in the wild train on similar corpora, so
    their lexical geometry is correlated).  Model-specific behaviour is added
    by the model's own seeded weights on top of these vectors.
    """
    rng = rng_for(namespace, token)
    vec = rng.standard_normal(dim)
    return vec.astype(np.float64)


def hash_to_unit_interval(*parts: Seedable) -> float:
    """Map parts to a deterministic float in [0, 1)."""
    return stable_hash(*parts) / float(_SEED_MASK + 1)


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """Derive ``count`` child seeds from a base seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_seed("spawn", base_seed, i) for i in range(count)]


def shuffled(items: Iterable, *seed_parts: Seedable) -> list:
    """Return a deterministically shuffled copy of ``items``."""
    out = list(items)
    rng = rng_for("shuffled", *seed_parts)
    rng.shuffle(out)
    return out
