"""Command-line interface.

Exposes the framework without writing Python::

    python -m repro list-models
    python -m repro list-properties
    python -m repro characterize --model bert --property row_order_insignificance
    python -m repro characterize --model bert --property entity_stability --partner t5
    python -m repro report --models bert,t5,doduo
    python -m repro sweep --models bert,t5 --workers 2

``sweep`` runs the matrix through the batched/cached runtime and reports
skipped cells, cache effectiveness, the encoder backend, and the slowest
cells; ``--execution process`` shards cells across spawned worker
processes (sharing the ``--disk-cache`` tier, bounded by
``--cache-max-bytes``/``--cache-max-age``), ``--no-exact`` (or
``--backend padded``) opts into padded tolerance-tier batching for
throughput on heterogeneous-length corpora, ``--backend remote
--remote-url http://host:port`` farms encoder forward passes to an HTTP
encoding service (``--remote-timeout``/``--remote-retries`` bound the
transport), ``--no-async`` disables the
streaming encode pipeline, and ``--no-cache`` falls back to the legacy
one-call-at-a-time execution for comparison.  Output is plain text suited
to terminals and CI logs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import full_characterization, render_markdown, render_sweep
from repro.core.framework import DatasetSizes, Observatory
from repro.core.registry import available_properties
from repro.errors import ObservatoryError
from repro.models.registry import available_models
from repro.runtime import RuntimeConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observatory: characterize embeddings of relational tables",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed (default 0)")
    parser.add_argument(
        "--tables", type=int, default=12, help="corpus size for table-based properties"
    )
    parser.add_argument(
        "--permutations", type=int, default=8, help="shuffles per table for P1/P2"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-models", help="list registered models")
    commands.add_parser("list-properties", help="list registered properties")

    characterize = commands.add_parser(
        "characterize", help="run one property against one model"
    )
    characterize.add_argument("--model", required=True, choices=available_models())
    characterize.add_argument(
        "--property", required=True, dest="property_name", choices=available_properties()
    )
    characterize.add_argument(
        "--partner", default=None, help="second model (entity_stability only)"
    )

    report = commands.add_parser(
        "report", help="full characterization matrix over several models"
    )
    report.add_argument(
        "--models",
        default=",".join(available_models()),
        help="comma-separated model names (default: all)",
    )

    sweep = commands.add_parser(
        "sweep", help="run a (model x property) matrix through the runtime"
    )
    sweep.add_argument(
        "--models",
        default=",".join(available_models()),
        help="comma-separated model names (default: all)",
    )
    sweep.add_argument(
        "--properties",
        default=None,
        help="comma-separated property names (default: all registered)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="worker-pool size (default: auto)"
    )
    sweep.add_argument(
        "--execution",
        choices=["thread", "process"],
        default=None,
        help=(
            "sweep engine: 'thread' shares one in-process cache, 'process' "
            "shards cells across spawned workers sharing only the disk "
            "cache (default: $REPRO_SWEEP_EXECUTION or thread)"
        ),
    )
    sweep.add_argument(
        "--batch-size", type=int, default=8, help="encoder batch size (default 8)"
    )
    sweep.add_argument(
        "--backend",
        choices=["local", "padded", "remote"],
        default=None,
        help=(
            "encoder backend: 'local' batches same-length sequences only "
            "(bit-exact), 'padded' batches mixed lengths inside tolerance "
            "tiers, 'remote' ships batches over HTTP to an encoding "
            "service (--remote-url; bit-exact unless --no-exact) "
            "(default: derived from --exact/--no-exact)"
        ),
    )
    sweep.add_argument(
        "--remote-url",
        default=None,
        metavar="URL",
        help=(
            "base URL of the remote encoding service for --backend remote "
            "(default: $REPRO_REMOTE_URL)"
        ),
    )
    sweep.add_argument(
        "--remote-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request deadline of the remote transport (default 10)",
    )
    sweep.add_argument(
        "--remote-retries",
        type=int,
        default=3,
        metavar="N",
        help=(
            "retries after a transient transport fault (timeout/5xx/torn "
            "payload) before the sweep fails (default 3)"
        ),
    )
    sweep.add_argument(
        "--exact",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "numerics mode: --exact (the default) keeps embeddings "
            "bit-identical to unbatched encoding; --no-exact opts into "
            "padded batching within the documented ~1e-15 tolerance for "
            "throughput on heterogeneous-length corpora.  Unset, it is "
            "derived from --backend (padded implies --no-exact)"
        ),
    )
    sweep.add_argument(
        "--padding-tier",
        type=int,
        default=8,
        metavar="TOKENS",
        help="tier width of the padded backend (default 8)",
    )
    sweep.add_argument(
        "--no-async",
        action="store_true",
        help=(
            "disable the streaming encode pipeline (encode synchronously "
            "instead of overlapping serialization with forward passes)"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the runtime (legacy one-call-at-a-time execution)",
    )
    sweep.add_argument(
        "--disk-cache",
        default=None,
        metavar="DIR",
        help="persist the embedding cache under DIR across runs",
    )
    sweep.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget of the disk cache; LRU-evicted past it (default: unbounded)",
    )
    sweep.add_argument(
        "--cache-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire disk-cache entries older than this (default: never)",
    )
    return parser


def _make_observatory(
    args: argparse.Namespace, runtime: Optional[RuntimeConfig] = None
) -> Observatory:
    return Observatory(
        seed=args.seed,
        sizes=DatasetSizes(
            wikitables_tables=args.tables,
            sotab_tables=max(8, args.tables),
            n_permutations=args.permutations,
        ),
        runtime=runtime,
    )


def _run_characterize(args: argparse.Namespace) -> int:
    observatory = _make_observatory(args)
    result = observatory.characterize(
        args.model, args.property_name, partner_model=args.partner
    )
    print(f"property: {result.property_name}")
    print(f"model:    {result.model_name}")
    for key, value in sorted(result.metadata.items()):
        print(f"  {key}: {value}")
    if result.distributions:
        print("distributions:")
        for key in sorted(result.distributions):
            print(f"  {key:32s} {result.distributions[key]}")
    if result.scalars:
        print("scalars:")
        for key in sorted(result.scalars):
            print(f"  {key:32s} {result.scalars[key]:.4f}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    models = _parse_models(args.models)
    observatory = _make_observatory(args)
    matrix = full_characterization(observatory, models=models)
    print(render_markdown(matrix))
    return 0


def _parse_models(spec: str) -> List[str]:
    models = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = set(models) - set(available_models())
    if unknown:
        raise ObservatoryError(f"unknown models: {sorted(unknown)}")
    return models


def _run_sweep(args: argparse.Namespace) -> int:
    models = _parse_models(args.models)
    properties = None
    if args.properties:
        properties = [p.strip() for p in args.properties.split(",") if p.strip()]
        unknown = set(properties) - set(available_properties())
        if unknown:
            raise ObservatoryError(f"unknown properties: {sorted(unknown)}")
    try:
        runtime = RuntimeConfig(
            enabled=not args.no_cache,
            batch_size=args.batch_size,
            disk_cache_dir=args.disk_cache,
            cache_max_bytes=args.cache_max_bytes,
            cache_max_age=args.cache_max_age,
            max_workers=args.workers,
            execution=args.execution,
            # Unset --exact/--no-exact follows the backend: an explicit
            # `--backend padded` alone must work (padded implies
            # non-exact), while `--exact --backend padded` still errors.
            exact=args.exact if args.exact is not None else args.backend != "padded",
            backend=args.backend,
            padding_tier=args.padding_tier,
            async_encode=not args.no_async,
            remote_url=args.remote_url,
            remote_timeout=args.remote_timeout,
            remote_retries=args.remote_retries,
        )
    except ValueError as error:
        raise ObservatoryError(str(error)) from None
    observatory = _make_observatory(args, runtime=runtime)
    sweep = observatory.sweep(models, properties)
    print(render_sweep(sweep))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list-models":
            print("\n".join(available_models()))
            return 0
        if args.command == "list-properties":
            print("\n".join(available_properties()))
            return 0
        if args.command == "characterize":
            return _run_characterize(args)
        if args.command == "report":
            return _run_report(args)
        if args.command == "sweep":
            return _run_sweep(args)
    except ObservatoryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    sys.exit(main())
