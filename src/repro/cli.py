"""Command-line interface.

Exposes the framework without writing Python::

    python -m repro list-models
    python -m repro list-properties
    python -m repro characterize --model bert --property row_order_insignificance
    python -m repro characterize --model bert --property entity_stability --partner t5
    python -m repro report --models bert,t5,doduo
    python -m repro sweep --models bert,t5 --workers 2
    python -m repro index build --dir idx --model t5 --disk-cache cache
    python -m repro index query --dir idx --model t5 --k 5 --prune probe
    python -m repro index info --dir idx

``sweep`` runs the matrix through the batched/cached runtime and reports
skipped cells, cache effectiveness, the encoder backend, and the slowest
cells; ``--execution process`` runs the work-stealing scheduler across
spawned worker processes (sharing the ``--disk-cache`` tier, bounded by
``--cache-max-bytes``/``--cache-max-age``; ``--cost-priors BENCH.json``
reloads measured cell timings for longest-first dispatch and the report
gains per-worker busy/steal utilization lines), ``--no-exact`` (or
``--backend padded``) opts into padded tolerance-tier batching for
throughput on heterogeneous-length corpora, ``--backend remote
--remote-url http://host:port`` farms encoder forward passes to an HTTP
encoding fleet (repeat ``--remote-url`` per replica;
``--remote-timeout``/``--remote-retries`` bound the transport,
``--remote-compression gzip`` shrinks wire bytes, ``--remote-state-dtype
float32`` halves state bytes within tolerance, ``--remote-hedge-after
0.95`` races stragglers against another replica), ``--no-async`` disables
the streaming encode pipeline, and ``--no-cache`` falls back to the
legacy one-call-at-a-time execution for comparison.  ``--journal DIR``
write-ahead-journals every completed cell so a killed sweep resumes with
``--resume`` (replaying finished cells, dispatching only the remainder);
``--on-error degrade`` records failing cells as named failures instead
of aborting; ``--deadline SECONDS`` bounds the sweep's wall clock.
SIGINT/SIGTERM seal the journal and exit 130 with a resume hint.  Output
is plain text suited to terminals and CI logs.

``serve`` runs the always-on characterization service
(:mod:`repro.service`): a keep-alive HTTP server that accepts table
uploads and characterization requests, multiplexes concurrent clients
over one shared Observatory behind a bounded admission queue (typed 429
+ ``Retry-After`` past ``--queue-limit``), answers repeat queries from
the result cache, streams per-cell progress, serves the column index
(``/v1/index/*``), doubles as an encoder-fleet replica (``/encode``),
and — given ``--state-dir`` — journals accepted requests so a killed
service replays them on restart.

``index`` manages the persistent columnar joinability-search index
(:mod:`repro.index`): ``build`` embeds a NextiaJD candidate-column corpus
through the fingerprint-keyed embedding cache (share ``--disk-cache``
with a sweep to reuse its embeddings) and appends it to a crash-safe
on-disk index; ``query`` retrieves top-k joinable columns under a chosen
pruning mode; ``info`` prints the persisted state and its guarantees.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.analysis.report import (
    full_characterization,
    render_index,
    render_markdown,
    render_sweep,
)
from repro.core.framework import DatasetSizes, Observatory
from repro.core.registry import available_properties
from repro.errors import ObservatoryError
from repro.models.registry import available_models
from repro.runtime import RuntimeConfig, TransportConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observatory: characterize embeddings of relational tables",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed (default 0)")
    parser.add_argument(
        "--tables", type=int, default=12, help="corpus size for table-based properties"
    )
    parser.add_argument(
        "--permutations", type=int, default=8, help="shuffles per table for P1/P2"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-models", help="list registered models")
    commands.add_parser("list-properties", help="list registered properties")

    characterize = commands.add_parser(
        "characterize", help="run one property against one model"
    )
    characterize.add_argument("--model", required=True, choices=available_models())
    characterize.add_argument(
        "--property", required=True, dest="property_name", choices=available_properties()
    )
    characterize.add_argument(
        "--partner", default=None, help="second model (entity_stability only)"
    )

    report = commands.add_parser(
        "report", help="full characterization matrix over several models"
    )
    report.add_argument(
        "--models",
        default=",".join(available_models()),
        help="comma-separated model names (default: all)",
    )

    sweep = commands.add_parser(
        "sweep", help="run a (model x property) matrix through the runtime"
    )
    sweep.add_argument(
        "--models",
        default=",".join(available_models()),
        help="comma-separated model names (default: all)",
    )
    sweep.add_argument(
        "--properties",
        default=None,
        help="comma-separated property names (default: all registered)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size (default: $REPRO_SWEEP_WORKERS or auto)",
    )
    sweep.add_argument(
        "--execution",
        choices=["thread", "process"],
        default=None,
        help=(
            "sweep engine: 'thread' shares one in-process cache, 'process' "
            "runs the work-stealing scheduler across spawned workers "
            "sharing only the disk cache "
            "(default: $REPRO_SWEEP_EXECUTION or thread)"
        ),
    )
    sweep.add_argument(
        "--cost-priors",
        default=None,
        metavar="PATH",
        help=(
            "BENCH_*.json with measured cell_records; feeds the process "
            "scheduler's longest-first dispatch order "
            "(default: $REPRO_SWEEP_COST_PRIORS or built-in priors)"
        ),
    )
    sweep.add_argument(
        "--batch-size", type=int, default=8, help="encoder batch size (default 8)"
    )
    sweep.add_argument(
        "--backend",
        choices=["local", "padded", "remote"],
        default=None,
        help=(
            "encoder backend: 'local' batches same-length sequences only "
            "(bit-exact), 'padded' batches mixed lengths inside tolerance "
            "tiers, 'remote' ships batches over HTTP to an encoding "
            "service (--remote-url; bit-exact unless --no-exact) "
            "(default: derived from --exact/--no-exact)"
        ),
    )
    sweep.add_argument(
        "--remote-url",
        action="append",
        default=None,
        metavar="URL",
        help=(
            "replica URL of the remote encoding fleet for --backend remote; "
            "repeat the flag for multiple replicas (weighted routing, "
            "health tracking, hedging) (default: $REPRO_REMOTE_URL, "
            "comma-separated for a fleet)"
        ),
    )
    sweep.add_argument(
        "--remote-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline of the remote transport (default 10)",
    )
    sweep.add_argument(
        "--remote-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retries after a transient transport fault (timeout/5xx/torn "
            "payload) before the sweep fails (default 3)"
        ),
    )
    sweep.add_argument(
        "--remote-compression",
        choices=["none", "gzip"],
        default="none",
        help=(
            "content encoding of remote request/response bodies "
            "(gzip trades CPU for wire bytes; default none)"
        ),
    )
    sweep.add_argument(
        "--remote-state-dtype",
        choices=["float64", "float32"],
        default="float64",
        help=(
            "floating-point tier hidden states ride the wire in: float64 "
            "is bit-exact, float32 halves state bytes within the documented "
            "tolerance and requires --no-exact (default float64)"
        ),
    )
    sweep.add_argument(
        "--remote-hedge-after",
        type=float,
        default=None,
        metavar="PCTL",
        help=(
            "latency percentile in (0,1) after which a straggling chunk is "
            "speculatively re-sent to another replica (e.g. 0.95; needs "
            ">=2 replicas; default: hedging off)"
        ),
    )
    sweep.add_argument(
        "--remote-pool-size",
        type=int,
        default=None,
        metavar="N",
        help="keep-alive connections held per replica (default 4)",
    )
    sweep.add_argument(
        "--exact",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "numerics mode: --exact (the default) keeps embeddings "
            "bit-identical to unbatched encoding; --no-exact opts into "
            "padded batching within the documented ~1e-15 tolerance for "
            "throughput on heterogeneous-length corpora.  Unset, it is "
            "derived from --backend (padded implies --no-exact)"
        ),
    )
    sweep.add_argument(
        "--padding-tier",
        type=int,
        default=8,
        metavar="TOKENS",
        help="tier width of the padded backend (default 8)",
    )
    sweep.add_argument(
        "--no-async",
        action="store_true",
        help=(
            "disable the streaming encode pipeline (encode synchronously "
            "instead of overlapping serialization with forward passes)"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the runtime (legacy one-call-at-a-time execution)",
    )
    sweep.add_argument(
        "--disk-cache",
        default=None,
        metavar="DIR",
        help="persist the embedding cache under DIR across runs",
    )
    sweep.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget of the disk cache; LRU-evicted past it (default: unbounded)",
    )
    sweep.add_argument(
        "--cache-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire disk-cache entries older than this (default: never)",
    )
    sweep.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "write-ahead sweep journal directory: every completed cell is "
            "durably recorded before the sweep proceeds, so a killed run "
            "can continue with --resume instead of starting over"
        ),
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay completed cells from the --journal directory and "
            "dispatch only the remainder (refuses a journal whose plan "
            "fingerprint does not match this invocation)"
        ),
    )
    sweep.add_argument(
        "--on-error",
        choices=["abort", "degrade"],
        default=None,
        help=(
            "cell-failure policy: 'abort' (default) stops the sweep on the "
            "first failing cell, 'degrade' records it as a named failure "
            "on the result and keeps going"
        ),
    )
    sweep.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget of the whole sweep; when it expires, "
            "remote retries, disk-lock waits, and unfinished cells are "
            "cut short (combine with --journal to resume the remainder)"
        ),
    )

    index = commands.add_parser(
        "index", help="persistent columnar joinability-search index"
    )
    index_actions = index.add_subparsers(dest="index_action", required=True)

    def add_corpus_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dir", required=True, help="index directory")
        sub.add_argument(
            "--model", default="t5", choices=available_models(),
            help="embedding model for column encoding (default t5)",
        )
        sub.add_argument(
            "--pairs", type=int, default=24,
            help="NextiaJD join pairs forming the column corpus (default 24)",
        )
        sub.add_argument(
            "--testbed", default="xs", choices=["xs", "s", "m", "l"],
            help="NextiaJD size testbed (default xs)",
        )
        sub.add_argument(
            "--disk-cache", default=None, metavar="DIR",
            help="persist the embedding cache under DIR across runs",
        )

    index_build = index_actions.add_parser(
        "build",
        help="embed candidate columns (through the cache) and index them",
    )
    add_corpus_args(index_build)

    index_query = index_actions.add_parser(
        "query", help="run query columns against a built index"
    )
    add_corpus_args(index_query)
    index_query.add_argument(
        "--k", type=int, default=5, help="neighbours per query (default 5)"
    )
    index_query.add_argument(
        "--prune", default="off", choices=["off", "bound", "probe"],
        help=(
            "candidate pruning: 'off' is provably identical to brute "
            "force, 'bound' is branch-and-bound (same results within a "
            "1e-9 score margin), 'probe' is fastest/approximate "
            "(documented recall floor) (default off)"
        ),
    )
    index_query.add_argument(
        "--queries", type=int, default=None,
        help="limit the number of query columns (default: all pairs)",
    )

    index_info = index_actions.add_parser(
        "info", help="describe an existing index directory"
    )
    index_info.add_argument("--dir", required=True, help="index directory")

    serve = commands.add_parser(
        "serve", help="run the always-on characterization service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help=(
            "admission-queue bound: submissions past it receive a typed "
            "429 with Retry-After instead of queueing unboundedly "
            "(default 8)"
        ),
    )
    serve.add_argument(
        "--runners",
        type=int,
        default=2,
        help="job-runner threads draining the admission queue (default 2)",
    )
    serve.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help="worker-pool size of each served sweep (default: runtime auto)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=32,
        help="finished results kept for repeat queries, LRU (default 32)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "durability root: accepted requests are write-ahead journaled "
            "under DIR and replayed when a killed service restarts over "
            "the same DIR (default: a fresh temporary directory)"
        ),
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound of each served characterization (default: none)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="Retry-After advertised on 429 responses (default 0.5)",
    )
    serve.add_argument(
        "--disk-cache",
        default=None,
        metavar="DIR",
        help="persist the embedding cache under DIR across restarts",
    )
    return parser


def _make_observatory(
    args: argparse.Namespace, runtime: Optional[RuntimeConfig] = None
) -> Observatory:
    return Observatory(
        seed=args.seed,
        sizes=DatasetSizes(
            wikitables_tables=args.tables,
            sotab_tables=max(8, args.tables),
            n_permutations=args.permutations,
        ),
        runtime=runtime,
    )


def _run_characterize(args: argparse.Namespace) -> int:
    observatory = _make_observatory(args)
    result = observatory.characterize(
        args.model, args.property_name, partner_model=args.partner
    )
    print(f"property: {result.property_name}")
    print(f"model:    {result.model_name}")
    for key, value in sorted(result.metadata.items()):
        print(f"  {key}: {value}")
    if result.distributions:
        print("distributions:")
        for key in sorted(result.distributions):
            print(f"  {key:32s} {result.distributions[key]}")
    if result.scalars:
        print("scalars:")
        for key in sorted(result.scalars):
            print(f"  {key:32s} {result.scalars[key]:.4f}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    models = _parse_models(args.models)
    observatory = _make_observatory(args)
    matrix = full_characterization(observatory, models=models)
    print(render_markdown(matrix))
    return 0


def _parse_models(spec: str) -> List[str]:
    models = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = set(models) - set(available_models())
    if unknown:
        raise ObservatoryError(f"unknown models: {sorted(unknown)}")
    return models


def _transport_from_args(args: argparse.Namespace) -> Optional[TransportConfig]:
    """The sweep's TransportConfig, or None when no remote flag was used.

    ``--remote-url`` is repeatable (one flag per fleet replica); without
    it, ``$REPRO_REMOTE_URL`` (comma-separated for a fleet) supplies the
    URLs whenever any other remote flag needs a config built.
    """
    from repro.models.backends.remote import REMOTE_URL_ENV

    tuned = (
        args.remote_url is not None
        or args.remote_timeout is not None
        or args.remote_retries is not None
        or args.remote_compression != "none"
        or args.remote_state_dtype != "float64"
        or args.remote_hedge_after is not None
        or args.remote_pool_size is not None
    )
    if not tuned:
        return None
    urls = tuple(args.remote_url or ())
    if not urls:
        env = os.environ.get(REMOTE_URL_ENV, "")
        urls = tuple(u.strip() for u in env.split(",") if u.strip())
    if not urls:
        raise ValueError(
            "remote transport flags need replica URLs: pass --remote-url "
            f"(repeatable) or set ${REMOTE_URL_ENV}"
        )
    kwargs = {}
    if args.remote_timeout is not None:
        kwargs["timeout"] = args.remote_timeout
    if args.remote_retries is not None:
        kwargs["retries"] = args.remote_retries
    if args.remote_pool_size is not None:
        kwargs["pool_size"] = args.remote_pool_size
    return TransportConfig(
        urls=urls,
        compression=args.remote_compression,
        state_dtype=args.remote_state_dtype,
        hedge_after=args.remote_hedge_after,
        **kwargs,
    )


def _run_sweep(args: argparse.Namespace) -> int:
    models = _parse_models(args.models)
    properties = None
    if args.properties:
        properties = [p.strip() for p in args.properties.split(",") if p.strip()]
        unknown = set(properties) - set(available_properties())
        if unknown:
            raise ObservatoryError(f"unknown properties: {sorted(unknown)}")
    try:
        transport = _transport_from_args(args)
        # Unset --exact/--no-exact follows the backend and the wire tier:
        # an explicit `--backend padded` alone must work (padded implies
        # non-exact), as must `--remote-state-dtype float32` (a tolerance
        # tier by definition) — while `--exact --backend padded` and
        # `--exact --remote-state-dtype float32` still error.
        exact = args.exact
        if exact is None:
            exact = args.backend != "padded" and args.remote_state_dtype != "float32"
        runtime = RuntimeConfig(
            enabled=not args.no_cache,
            batch_size=args.batch_size,
            disk_cache_dir=args.disk_cache,
            cache_max_bytes=args.cache_max_bytes,
            cache_max_age=args.cache_max_age,
            max_workers=args.workers,
            execution=args.execution,
            cost_priors=args.cost_priors,
            exact=exact,
            backend=args.backend,
            padding_tier=args.padding_tier,
            async_encode=not args.no_async,
            transport=transport,
        )
    except ValueError as error:
        raise ObservatoryError(str(error)) from None
    if args.resume and not args.journal:
        raise ObservatoryError("--resume requires --journal DIR")
    fault_policy = None
    if args.deadline is not None:
        from repro.runtime.faults import FaultPolicy

        fault_policy = FaultPolicy(deadline=args.deadline)
    observatory = _make_observatory(args, runtime=runtime)

    # SIGINT/SIGTERM: unwind through run_sweep's ``finally`` so the
    # write-ahead journal seals its segment (every completed cell was
    # already fsync'd at record time) and worker pools shut down, then
    # exit 130 with a resume hint instead of a traceback.
    caught: dict = {}

    def _interrupt(signum, frame):
        caught["signum"] = signum
        raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _interrupt)
        except ValueError:  # non-main thread (embedding callers)
            break
    try:
        sweep = observatory.sweep(
            models,
            properties,
            on_error=args.on_error,
            journal_dir=args.journal,
            resume=args.resume,
            fault_policy=fault_policy,
        )
    except KeyboardInterrupt:
        name = signal.Signals(caught.get("signum", signal.SIGINT)).name
        print(f"\nsweep interrupted by {name}.", file=sys.stderr)
        if args.journal:
            print(
                f"journal flushed to {args.journal}; completed cells are "
                f"durable — resume with --resume",
                file=sys.stderr,
            )
        else:
            print(
                "no journal was active; rerun with --journal DIR to make "
                "sweeps crash-resumable",
                file=sys.stderr,
            )
        return 130
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(render_sweep(sweep))
    return 0


def _index_corpus(args: argparse.Namespace):
    """The (pairs, executor) for an index command's column corpus."""
    from repro.data.nextiajd import NextiaJDGenerator, Testbed

    pairs = NextiaJDGenerator(args.seed).generate_pairs(
        args.pairs, Testbed(args.testbed)
    )
    runtime = (
        RuntimeConfig(disk_cache_dir=args.disk_cache) if args.disk_cache else None
    )
    observatory = _make_observatory(args, runtime=runtime)
    return pairs, observatory.executor(args.model)


def _run_index(args: argparse.Namespace) -> int:
    from repro.index import ColumnIndex

    if args.index_action == "info":
        index = ColumnIndex.open(args.dir)
        print(render_index(index.describe()))
        return 0

    pairs, executor = _index_corpus(args)
    if args.index_action == "build":
        index = ColumnIndex(args.dir, dim=executor.dim, create=True)
        known = set(index.keys()) if len(index) else set()
        embeddings = executor.embed_value_columns(
            [(pair.candidate_header, list(pair.candidate_values)) for pair in pairs]
        )
        added = index.append_many(
            (f"cand::{pair.pair_id}", emb)
            for pair, emb in zip(pairs, embeddings)
            if f"cand::{pair.pair_id}" not in known
        )
        print(f"Indexed {added} candidate column(s).")
        print(render_index(index.describe(), cache_stats=executor.cache_stats))
        return 0

    # query
    index = ColumnIndex.open(args.dir)
    selected = pairs if args.queries is None else pairs[: args.queries]
    embeddings = executor.embed_value_columns(
        [(pair.query_header, list(pair.query_values)) for pair in selected]
    )
    results = [
        (f"query::{pair.pair_id}", index.query(emb, args.k, prune=args.prune))
        for pair, emb in zip(selected, embeddings)
    ]
    print(
        render_index(
            index.describe(), cache_stats=executor.cache_stats, results=results
        )
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.analysis.report import render_service
    from repro.service import CharacterizationService, ServiceConfig

    runtime = (
        RuntimeConfig(disk_cache_dir=args.disk_cache) if args.disk_cache else None
    )
    observatory = _make_observatory(args, runtime=runtime)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        runners=args.runners,
        sweep_workers=args.sweep_workers,
        cache_size=args.cache_size,
        state_dir=args.state_dir,
        request_deadline=args.request_deadline,
        retry_after=args.retry_after,
    )
    service = CharacterizationService(observatory, config=config).start()
    print(f"characterization service listening on {service.url}", flush=True)
    print(f"state dir: {service.state_dir}", flush=True)

    stop = threading.Event()

    def _interrupt(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _interrupt)
        except ValueError:  # non-main thread (embedding callers)
            break
    try:
        while not stop.wait(0.2):
            pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.close()
    print(render_service(service.stats_snapshot()), file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list-models":
            print("\n".join(available_models()))
            return 0
        if args.command == "list-properties":
            print("\n".join(available_properties()))
            return 0
        if args.command == "characterize":
            return _run_characterize(args)
        if args.command == "report":
            return _run_report(args)
        if args.command == "sweep":
            return _run_sweep(args)
        if args.command == "index":
            return _run_index(args)
        if args.command == "serve":
            return _run_serve(args)
    except ObservatoryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    sys.exit(main())
