"""Row sampling and column chunking (Measure 5 machinery).

Sample fidelity compares the embedding of a *sampled* column against the
embedding of the *full* column.  Full columns may exceed a model's input
limit, so — following the paper (and TUTA's practice it cites) — the full
column is split into chunks that share the header, each chunk is embedded,
and the chunk embeddings are aggregated.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import DatasetError
from repro.relational.table import Table
from repro.seeding import rng_for


def sample_rows(
    table: Table,
    fraction: float,
    *,
    seed_parts: Tuple = (),
    minimum: int = 1,
) -> Table:
    """Uniformly sample a fraction of a table's rows (without replacement).

    Row order of the sample follows the original table (sampling should not
    double as a shuffle — P1 measures shuffling separately).
    """
    if not 0 < fraction <= 1:
        raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
    n = table.num_rows
    k = max(minimum, round(n * fraction))
    k = min(k, n)
    rng = rng_for("sample_rows", table.table_id, fraction, *seed_parts)
    chosen = sorted(rng.choice(n, size=k, replace=False).tolist())
    return table.take_rows(chosen)


def sample_column_values(
    values: Sequence[object],
    fraction: float,
    *,
    seed_parts: Tuple = (),
    minimum: int = 1,
) -> List[object]:
    """Uniformly sample values from a column, preserving original order."""
    if not 0 < fraction <= 1:
        raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
    n = len(values)
    if n == 0:
        return []
    k = min(n, max(minimum, round(n * fraction)))
    rng = rng_for("sample_values", fraction, *seed_parts)
    chosen = sorted(rng.choice(n, size=k, replace=False).tolist())
    return [values[i] for i in chosen]


def chunk_values(values: Sequence[object], chunk_size: int) -> List[List[object]]:
    """Split column values into consecutive chunks of at most ``chunk_size``.

    Every chunk is non-empty; the final chunk may be shorter.  Chunks share
    the column header when embedded (the caller attaches it).
    """
    if chunk_size < 1:
        raise DatasetError("chunk_size must be positive")
    return [list(values[i : i + chunk_size]) for i in range(0, len(values), chunk_size)]


def distinct_samples(
    values: Sequence[object],
    fraction: float,
    n_samples: int,
    *,
    seed_parts: Tuple = (),
) -> List[List[object]]:
    """Draw ``n_samples`` independent uniform samples of a column.

    Samples are drawn independently (they may collide on tiny columns, where
    fewer distinct subsets exist than requested; the paper's corpora make
    collisions negligible).
    """
    if n_samples < 1:
        raise DatasetError("n_samples must be positive")
    return [
        sample_column_values(values, fraction, seed_parts=(*seed_parts, i))
        for i in range(n_samples)
    ]
