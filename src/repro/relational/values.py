"""Typed cell values and data-type inference.

Observatory's heterogeneous-context property (P8) distinguishes textual from
non-textual columns (dates, ISBNs, postal codes, monetary values, physical
quantities).  This module provides the small type system used to label
columns: a :class:`DataType` enum, per-value type inference, and a
column-level majority-vote inference that tolerates dirty cells.
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from typing import Iterable, Optional, Sequence


class DataType(enum.Enum):
    """Primitive data types recognized in table cells."""

    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    BOOLEAN = "boolean"
    MONEY = "money"
    QUANTITY = "quantity"
    ISBN = "isbn"
    POSTAL_CODE = "postal_code"
    EMPTY = "empty"

    @property
    def is_textual(self) -> bool:
        """True if the type is treated as textual in P8 (heterogeneous context)."""
        return self in (DataType.TEXT, DataType.BOOLEAN)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT, DataType.MONEY, DataType.QUANTITY)


_INT_RE = re.compile(r"^[+-]?\d{1,3}(,\d{3})*$|^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d{1,3}(,\d{3})*|\d*)\.\d+([eE][+-]?\d+)?$|^[+-]?\d+[eE][+-]?\d+$")
_DATE_RES = (
    re.compile(r"^\d{4}-\d{2}-\d{2}$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{4}$"),
    re.compile(
        r"^(January|February|March|April|May|June|July|August|September|October|"
        r"November|December) \d{1,2}, \d{4}$"
    ),
    re.compile(r"^\d{4}$"),  # bare year; counts as a date-ish value
)
_BOOL_VALUES = {"true", "false", "yes", "no"}
_MONEY_RE = re.compile(r"^[$€£¥]\s?\d{1,3}(,\d{3})*(\.\d+)?[MBK]?$|^\d+(\.\d+)? (USD|EUR|GBP|RON|JPY)$")
_QUANTITY_RE = re.compile(
    r"^[+-]?\d+(\.\d+)?\s?(kg|g|mg|lb|oz|km|m|cm|mm|mi|ft|in|l|ml|gal|s|ms|h|min|"
    r"kwh|mph|km/h|%)$",
    re.IGNORECASE,
)
_ISBN_RE = re.compile(r"^(97[89][- ]?)?\d{1,5}[- ]?\d{1,7}[- ]?\d{1,7}[- ]?[\dX]$")
_POSTAL_RE = re.compile(r"^\d{5}(-\d{4})?$|^[A-Z]\d[A-Z] ?\d[A-Z]\d$|^[A-Z]{1,2}\d{1,2} ?\d[A-Z]{2}$")


def infer_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a single cell value.

    Non-string values are classified by their Python type; strings are matched
    against a prioritized set of syntactic patterns (the same precedence a
    human data-profiling pass would use: emptiness, booleans, identifiers with
    checksum-like shapes, money/quantity with units, dates, then bare
    numbers, then free text).
    """
    if value is None:
        return DataType.EMPTY
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    text = str(value).strip()
    if not text:
        return DataType.EMPTY
    lowered = text.lower()
    if lowered in _BOOL_VALUES:
        return DataType.BOOLEAN
    if _MONEY_RE.match(text):
        return DataType.MONEY
    if _QUANTITY_RE.match(text):
        return DataType.QUANTITY
    if _POSTAL_RE.match(text) and not _INT_RE.match(text):
        return DataType.POSTAL_CODE
    if _ISBN_RE.match(text) and sum(ch.isdigit() for ch in text) >= 9:
        return DataType.ISBN
    for pattern in _DATE_RES:
        if pattern.match(text):
            return DataType.DATE
    if _INT_RE.match(text):
        return DataType.INTEGER
    if _FLOAT_RE.match(text):
        return DataType.FLOAT
    return DataType.TEXT


def infer_column_type(values: Sequence[object], threshold: float = 0.6) -> DataType:
    """Infer a column's type by majority vote over non-empty cells.

    A type wins if it covers at least ``threshold`` of the non-empty cells;
    INTEGER and FLOAT votes pool into FLOAT when mixed.  Columns with no
    non-empty cells are EMPTY; columns with no winner fall back to TEXT.
    """
    votes = Counter(infer_type(v) for v in values)
    votes.pop(DataType.EMPTY, None)
    total = sum(votes.values())
    if total == 0:
        return DataType.EMPTY
    # A bare year column is better described as INTEGER unless mixed with
    # richer date formats; keep DATE votes as they are otherwise.
    if votes.get(DataType.INTEGER) and votes.get(DataType.FLOAT):
        merged = votes[DataType.INTEGER] + votes[DataType.FLOAT]
        if merged / total >= threshold:
            return DataType.FLOAT
    winner, count = votes.most_common(1)[0]
    if count / total >= threshold:
        return winner
    return DataType.TEXT


def parse_value(text: str, data_type: Optional[DataType] = None) -> object:
    """Parse ``text`` into a Python value according to ``data_type``.

    With ``data_type=None`` the type is inferred first.  Values that fail to
    parse are returned as stripped strings — dirty cells degrade to text
    rather than raising, mirroring how table corpora are ingested in
    practice.
    """
    if data_type is None:
        data_type = infer_type(text)
    stripped = text.strip() if isinstance(text, str) else text
    if data_type == DataType.EMPTY:
        return None
    if data_type == DataType.BOOLEAN and isinstance(stripped, str):
        return stripped.lower() in ("true", "yes")
    if data_type == DataType.INTEGER and isinstance(stripped, str):
        try:
            return int(stripped.replace(",", ""))
        except ValueError:
            return stripped
    if data_type == DataType.FLOAT and isinstance(stripped, str):
        try:
            return float(stripped.replace(",", ""))
        except ValueError:
            return stripped
    return stripped


def non_empty(values: Iterable[object]) -> list:
    """Return values that are neither None nor blank strings."""
    kept = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, str) and not value.strip():
            continue
        kept.append(value)
    return kept
