"""Relational algebra over :class:`~repro.relational.table.Table`.

The join-relationship property (P3) exists because *joining* is the
operation practitioners discover candidates for; this module closes the
loop by actually executing the operators — selection, projection, inner and
left joins (hash joins on stringified keys), union, distinct, and
group-by aggregation — so examples and tests can verify that discovered
join candidates really join.

All operators are pure: they return new tables and never mutate inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import TableError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.values import infer_column_type

Predicate = Callable[[tuple], bool]
Aggregator = Callable[[List[object]], object]


def _key(value: object) -> str:
    return "" if value is None else str(value)


def select(table: Table, predicate: Predicate) -> Table:
    """Rows satisfying ``predicate`` (called with the row tuple)."""
    kept = [row for row in table.rows if predicate(row)]
    return Table(table.schema, kept, caption=table.caption, table_id=table.table_id)


def select_eq(table: Table, column: str, value: object) -> Table:
    """Shorthand: rows whose ``column`` equals ``value`` (string compare)."""
    index = table.schema.index_of(column)
    return select(table, lambda row: _key(row[index]) == _key(value))


def project(table: Table, columns: Sequence[str]) -> Table:
    """Projection by column names (order follows ``columns``)."""
    indices = [table.schema.index_of(name) for name in columns]
    return table.project(indices)


def distinct(table: Table) -> Table:
    """Duplicate-free copy (first occurrence wins, order preserved)."""
    seen = set()
    kept = []
    for row in table.rows:
        key = tuple(_key(v) for v in row)
        if key not in seen:
            seen.add(key)
            kept.append(row)
    return Table(table.schema, kept, caption=table.caption, table_id=table.table_id)


def union(left: Table, right: Table) -> Table:
    """Set union: schemas must have equal width; headers follow the left."""
    if left.num_columns != right.num_columns:
        raise TableError(
            f"union requires equal arity ({left.num_columns} vs {right.num_columns})"
        )
    return distinct(Table(left.schema, list(left.rows) + list(right.rows)))


def _joined_schema(left: Table, right: Table, right_on: int) -> TableSchema:
    right_columns = [
        col if col.name not in set(left.header) else col.renamed(f"{col.name}_right")
        for i, col in enumerate(right.schema)
        if i != right_on
    ]
    return TableSchema(list(left.schema.columns) + right_columns)


def hash_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    *,
    how: str = "inner",
) -> Table:
    """Equi-join on one column per side (classic build/probe hash join).

    The right join column is dropped from the output (it duplicates the
    left's); clashing right column names get a ``_right`` suffix.
    ``how`` is ``"inner"`` or ``"left"`` (unmatched left rows padded with
    None).
    """
    if how not in ("inner", "left"):
        raise TableError(f"unsupported join type {how!r}")
    li = left.schema.index_of(left_on)
    ri = right.schema.index_of(right_on)
    build: Dict[str, List[tuple]] = {}
    for row in right.rows:
        build.setdefault(_key(row[ri]), []).append(row)
    schema = _joined_schema(left, right, ri)
    out_rows = []
    pad = tuple([None] * (right.num_columns - 1))
    for row in left.rows:
        matches = build.get(_key(row[li]), [])
        if matches:
            for match in matches:
                rest = tuple(v for i, v in enumerate(match) if i != ri)
                out_rows.append(tuple(row) + rest)
        elif how == "left":
            out_rows.append(tuple(row) + pad)
    return Table(schema, out_rows, table_id=f"{left.table_id}|x|{right.table_id}")


def semi_join(left: Table, right: Table, left_on: str, right_on: str) -> Table:
    """Left rows with at least one match on the right."""
    ri = right.schema.index_of(right_on)
    keys = {_key(row[ri]) for row in right.rows}
    li = left.schema.index_of(left_on)
    return select(left, lambda row: _key(row[li]) in keys)


# Common aggregators for group_by.
AGGREGATORS: Dict[str, Aggregator] = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(float(v) for v in values if v is not None),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "avg": lambda values: (
        sum(float(v) for v in values if v is not None)
        / max(1, sum(1 for v in values if v is not None))
    ),
    "first": lambda values: values[0],
}


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregations: Dict[str, Tuple[str, str]],
) -> Table:
    """Group rows by ``keys`` and aggregate.

    ``aggregations`` maps output column name -> (input column, aggregator
    name from :data:`AGGREGATORS`).  Output columns are the keys followed by
    the aggregates, groups in first-seen order.
    """
    key_idx = [table.schema.index_of(k) for k in keys]
    specs = []
    for out_name, (in_name, agg_name) in aggregations.items():
        if agg_name not in AGGREGATORS:
            raise TableError(f"unknown aggregator {agg_name!r}")
        specs.append((out_name, table.schema.index_of(in_name), AGGREGATORS[agg_name]))

    groups: Dict[tuple, List[tuple]] = {}
    order: List[tuple] = []
    for row in table.rows:
        group_key = tuple(_key(row[i]) for i in key_idx)
        if group_key not in groups:
            order.append(group_key)
            groups[group_key] = []
        groups[group_key].append(row)

    out_rows = []
    for group_key in order:
        rows = groups[group_key]
        base = [rows[0][i] for i in key_idx]
        for _, in_idx, aggregator in specs:
            base.append(aggregator([row[in_idx] for row in rows]))
        out_rows.append(tuple(base))

    out_columns = [table.schema[i] for i in key_idx]
    for j, (out_name, _, _) in enumerate(specs):
        sample = [row[len(key_idx) + j] for row in out_rows]
        out_columns.append(ColumnSchema(out_name, infer_column_type(sample)))
    return Table(TableSchema(out_columns), out_rows, table_id=f"{table.table_id}|groupby")


def sort_by(table: Table, column: str, *, descending: bool = False) -> Table:
    """Stable sort by one column (string order for mixed types)."""
    index = table.schema.index_of(column)
    order = sorted(
        range(table.num_rows),
        key=lambda r: _key(table.rows[r][index]),
        reverse=descending,
    )
    return table.take_rows(order)
