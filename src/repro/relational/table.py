"""The Table: the unit every Observatory property operates on.

A :class:`Table` is an immutable rectangle of cell values with a
:class:`~repro.relational.schema.TableSchema`, optional caption, and optional
per-cell entity links (used by TURL-style models and P6 entity stability).
All structural operations — row/column shuffles, projections, sampling —
return *new* tables so that experiment code can hold the original and its
variants side by side.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TableError
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.values import infer_column_type


class Table:
    """An ordered relation: rows of cells under a schema.

    Attributes:
        schema: the table's :class:`TableSchema`.
        rows: tuple of row tuples, each of width ``schema.width``.
        caption: optional table caption (web-table metadata).
        table_id: stable identifier used for seeding and reporting.
        entity_links: mapping from (row, col) to a linked entity id, for
            entity-rich tables.
    """

    def __init__(
        self,
        schema: TableSchema,
        rows: Sequence[Sequence[object]],
        caption: str = "",
        table_id: str = "",
        entity_links: Optional[Dict[Tuple[int, int], str]] = None,
    ):
        width = schema.width
        frozen_rows = []
        for r, row in enumerate(rows):
            row = tuple(row)
            if len(row) != width:
                raise TableError(
                    f"row {r} has {len(row)} cells, expected {width}"
                )
            frozen_rows.append(row)
        self.schema = schema
        self.rows = tuple(frozen_rows)
        self.caption = caption
        self.table_id = table_id
        self.entity_links = dict(entity_links or {})
        for (r, c) in self.entity_links:
            if not (0 <= r < len(self.rows) and 0 <= c < width):
                raise TableError(f"entity link at ({r}, {c}) is out of range")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        named_columns: Sequence[Tuple[str, Sequence[object]]],
        caption: str = "",
        table_id: str = "",
    ) -> "Table":
        """Build a table from ``(header, values)`` pairs.

        Column data types are inferred from the values; all columns must have
        the same length.
        """
        if not named_columns:
            raise TableError("at least one column is required")
        lengths = {len(values) for _, values in named_columns}
        if len(lengths) != 1:
            raise TableError(f"columns have unequal lengths: {sorted(lengths)}")
        schema = TableSchema(
            [
                ColumnSchema(name=name, data_type=infer_column_type(values))
                for name, values in named_columns
            ]
        )
        n_rows = lengths.pop()
        rows = [
            tuple(values[r] for _, values in named_columns) for r in range(n_rows)
        ]
        return cls(schema, rows, caption=caption, table_id=table_id)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return self.schema.width

    @property
    def header(self) -> List[str]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        ident = f" id={self.table_id!r}" if self.table_id else ""
        return f"Table({self.num_rows}x{self.num_columns}{ident})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.rows == other.rows
            and self.caption == other.caption
        )

    def column_values(self, index: int) -> List[object]:
        """Values of column ``index``, top to bottom."""
        if not 0 <= index < self.num_columns:
            raise TableError(f"column index {index} out of range")
        return [row[index] for row in self.rows]

    def column_by_name(self, name: str) -> List[object]:
        return self.column_values(self.schema.index_of(name))

    def cell(self, row: int, col: int) -> object:
        if not (0 <= row < self.num_rows and 0 <= col < self.num_columns):
            raise TableError(f"cell ({row}, {col}) out of range")
        return self.rows[row][col]

    def column_multiset(self, index: int) -> Dict[str, int]:
        """Multiset of stringified values in a column (for overlap measures)."""
        counts: Dict[str, int] = {}
        for value in self.column_values(index):
            key = "" if value is None else str(value)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def subject_column_index(self) -> Optional[int]:
        """Subject column if annotated, else the first textual column.

        P8 context setting (b) uses the subject column as context and, when a
        table has none, falls back to "the first textual column from the
        left" — that fallback lives here so all callers agree on it.
        """
        annotated = self.schema.subject_index()
        if annotated is not None:
            return annotated
        for i, col in enumerate(self.schema):
            if col.data_type.is_textual:
                return i
        return None

    # ------------------------------------------------------------------
    # Structural transforms (all return new tables)
    # ------------------------------------------------------------------

    def with_rows(self, rows: Sequence[Sequence[object]]) -> "Table":
        """Same schema/metadata, different rows (entity links dropped)."""
        return Table(
            self.schema, rows, caption=self.caption, table_id=self.table_id
        )

    def reorder_rows(self, order: Sequence[int]) -> "Table":
        """Permute rows by ``order``; entity links follow their cells."""
        if sorted(order) != list(range(self.num_rows)):
            raise TableError(
                f"order is not a permutation of 0..{self.num_rows - 1}"
            )
        new_pos = {old: new for new, old in enumerate(order)}
        links = {
            (new_pos[r], c): entity for (r, c), entity in self.entity_links.items()
        }
        return Table(
            self.schema,
            [self.rows[i] for i in order],
            caption=self.caption,
            table_id=self.table_id,
            entity_links=links,
        )

    def reorder_columns(self, order: Sequence[int]) -> "Table":
        """Permute columns by ``order``; schema and links follow."""
        if sorted(order) != list(range(self.num_columns)):
            raise TableError(
                f"order is not a permutation of 0..{self.num_columns - 1}"
            )
        new_pos = {old: new for new, old in enumerate(order)}
        links = {
            (r, new_pos[c]): entity for (r, c), entity in self.entity_links.items()
        }
        return Table(
            self.schema.reordered(order),
            [tuple(row[i] for i in order) for row in self.rows],
            caption=self.caption,
            table_id=self.table_id,
            entity_links=links,
        )

    def project(self, indices: Sequence[int]) -> "Table":
        """Keep only the columns in ``indices`` (in the given order)."""
        new_pos = {old: new for new, old in enumerate(indices)}
        links = {
            (r, new_pos[c]): entity
            for (r, c), entity in self.entity_links.items()
            if c in new_pos
        }
        return Table(
            self.schema.projected(indices),
            [tuple(row[i] for i in indices) for row in self.rows],
            caption=self.caption,
            table_id=self.table_id,
            entity_links=links,
        )

    def take_rows(self, indices: Sequence[int]) -> "Table":
        """Keep only the rows in ``indices`` (duplicates allowed)."""
        for i in indices:
            if not 0 <= i < self.num_rows:
                raise TableError(f"row index {i} out of range")
        kept = {old: new for new, old in enumerate(indices)}
        links = {
            (kept[r], c): entity
            for (r, c), entity in self.entity_links.items()
            if r in kept
        }
        return Table(
            self.schema,
            [self.rows[i] for i in indices],
            caption=self.caption,
            table_id=self.table_id,
            entity_links=links,
        )

    def head(self, n: int) -> "Table":
        """First ``n`` rows (fewer if the table is shorter)."""
        return self.take_rows(range(min(n, self.num_rows)))

    def rename_column(self, index: int, new_name: str) -> "Table":
        """Rename one header (P7 schema perturbations)."""
        return Table(
            self.schema.renamed(index, new_name),
            self.rows,
            caption=self.caption,
            table_id=self.table_id,
            entity_links=self.entity_links,
        )

    def replace_column(
        self, index: int, values: Sequence[object], new_schema: Optional[ColumnSchema] = None
    ) -> "Table":
        """Replace one column's values (P7 column-equivalence perturbation)."""
        if len(values) != self.num_rows:
            raise TableError(
                f"replacement column has {len(values)} values, expected {self.num_rows}"
            )
        columns = list(self.schema.columns)
        if new_schema is not None:
            columns[index] = new_schema
        schema = TableSchema(columns)
        rows = [
            tuple(values[r] if c == index else cell for c, cell in enumerate(row))
            for r, row in enumerate(self.rows)
        ]
        return Table(
            schema, rows, caption=self.caption, table_id=self.table_id,
            entity_links=self.entity_links,
        )

    def single_column_table(self, index: int) -> "Table":
        """A one-column table for the P8 no-context setting."""
        return self.project([index])

    def column_fingerprint(self, index: int) -> Tuple:
        """Hashable content identity of a column (multiset + header).

        Two columns with equal fingerprints contain the same header and the
        same multiset of values — the invariant row shuffles must preserve.
        """
        counts = self.column_multiset(index)
        return (self.schema[index].name, tuple(sorted(counts.items())))

    def infer_types(self) -> "Table":
        """Return a copy whose schema data types are re-inferred from values."""
        columns = [
            col.with_type(infer_column_type(self.column_values(i)))
            for i, col in enumerate(self.schema)
        ]
        return Table(
            TableSchema(columns),
            self.rows,
            caption=self.caption,
            table_id=self.table_id,
            entity_links=self.entity_links,
        )

    def to_markdown(self, max_rows: int = 10) -> str:
        """Render the table as GitHub-flavoured markdown (for examples/docs)."""
        header = "| " + " | ".join(self.header) + " |"
        rule = "|" + "|".join(["---"] * self.num_columns) + "|"
        lines = [header, rule]
        for row in self.rows[:max_rows]:
            lines.append("| " + " | ".join("" if v is None else str(v) for v in row) + " |")
        if self.num_rows > max_rows:
            lines.append(f"| … ({self.num_rows - max_rows} more rows) |")
        return "\n".join(lines)
