"""Functional-dependency discovery (HyFD-style).

The paper runs HyFD (Papenbrock & Naumann, SIGMOD 2016) on the Spider
development set with determinant size 1 to mine the FD suite for Property 4.
This module reimplements the relevant machinery:

* :func:`discover_unary_fds` — the paper's configuration: all valid
  ``A -> B`` with single-attribute determinants, via a HyFD-like hybrid of
  sampling-based falsification followed by exact validation with stripped
  partitions;
* :func:`discover_fds` — a TANE-style levelwise lattice search for minimal
  FDs with determinants up to a configurable size, used by tests and the
  ablation benchmarks.

Both return FDs that *provably hold* on the input table (validation is
exact; sampling only prunes candidates early).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.relational.fd import FunctionalDependency
from repro.relational.table import Table
from repro.seeding import rng_for

Partition = List[List[int]]  # stripped partition: clusters of size >= 2


def stripped_partition(table: Table, columns: Sequence[int]) -> Partition:
    """Stripped partition of row indices by their projection on ``columns``.

    Clusters of size one are stripped (they can never violate an FD), the
    classic TANE representation.
    """
    clusters: Dict[Tuple, List[int]] = {}
    for r, row in enumerate(table.rows):
        key = tuple("" if row[c] is None else str(row[c]) for c in columns)
        clusters.setdefault(key, []).append(r)
    return [rows for rows in clusters.values() if len(rows) >= 2]


def partition_error(partition: Partition, n_rows: int) -> float:
    """e(X): fraction of rows that must be removed to make X a key."""
    if n_rows == 0:
        return 0.0
    extra = sum(len(cluster) - 1 for cluster in partition)
    return extra / n_rows


def refines(table: Table, lhs: Sequence[int], rhs: Sequence[int]) -> bool:
    """Exact check that the partition by ``lhs`` refines the one by ``rhs``.

    Equivalent to ``satisfies(table, lhs -> rhs)`` but computed cluster-wise
    so the common case (many singleton clusters) is fast.
    """
    for cluster in stripped_partition(table, lhs):
        first = None
        for r in cluster:
            value = tuple(
                "" if table.rows[r][c] is None else str(table.rows[r][c]) for c in rhs
            )
            if first is None:
                first = value
            elif value != first:
                return False
    return True


def _sampled_violations(
    table: Table, n_pairs: int, seed_parts: Tuple = ()
) -> Dict[Tuple[int, int], bool]:
    """HyFD's sampling phase for unary candidates.

    Draws random row pairs and records, for every column pair (A, B), whether
    some sampled pair agreed on A but disagreed on B — proof that A -> B does
    not hold.  Neighbouring rows after sorting by each column are also
    compared (HyFD's cluster-focused sampling), which catches violations
    uniform pairs miss on high-cardinality columns.
    """
    n_rows = table.num_rows
    n_cols = table.num_columns
    violated: Dict[Tuple[int, int], bool] = {}
    if n_rows < 2:
        return violated

    def record(row_a: Sequence[object], row_b: Sequence[object]) -> None:
        for a in range(n_cols):
            if str(row_a[a]) != str(row_b[a]):
                continue
            for b in range(n_cols):
                if a == b:
                    continue
                if str(row_a[b]) != str(row_b[b]):
                    violated[(a, b)] = True

    rng = rng_for("hyfd_sample", table.table_id, *seed_parts)
    for _ in range(n_pairs):
        i, j = rng.integers(0, n_rows, size=2)
        if i != j:
            record(table.rows[int(i)], table.rows[int(j)])
    # Focused sampling: compare neighbours in each column's sort order.
    for col in range(n_cols):
        order = sorted(range(n_rows), key=lambda r: str(table.rows[r][col]))
        for i in range(n_rows - 1):
            record(table.rows[order[i]], table.rows[order[i + 1]])
    return violated


def discover_unary_fds(
    table: Table,
    *,
    sample_pairs: int = 256,
    exclude_trivial_keys: bool = True,
) -> List[FunctionalDependency]:
    """All valid unary FDs ``A -> B`` of ``table`` (the paper's setting).

    Hybrid search: a sampling phase falsifies most non-FDs cheaply, then the
    surviving candidates are validated exactly.  With
    ``exclude_trivial_keys`` (default), FDs whose determinant is unique on
    every row (a key column) are dropped — key columns functionally determine
    everything, which says nothing about semantic value relationships, and
    their FD groups are all singletons so Measure 4's per-group variance is
    undefined.
    """
    n_cols = table.num_columns
    violated = _sampled_violations(table, sample_pairs)
    keys = set()
    if exclude_trivial_keys:
        for col in range(n_cols):
            if not stripped_partition(table, [col]):
                keys.add(col)

    found: List[FunctionalDependency] = []
    for lhs in range(n_cols):
        if lhs in keys:
            continue
        for rhs in range(n_cols):
            if lhs == rhs or violated.get((lhs, rhs)):
                continue
            if refines(table, [lhs], [rhs]):
                found.append(FunctionalDependency.unary(lhs, rhs))
    return found


def discover_fds(
    table: Table,
    max_determinant_size: int = 2,
    *,
    exclude_trivial_keys: bool = True,
) -> List[FunctionalDependency]:
    """Minimal FDs ``X -> A`` with ``|X| <= max_determinant_size`` (TANE-style).

    Levelwise search over the attribute lattice: a dependency ``X -> A`` is
    reported only if no proper subset of ``X`` already determines ``A``
    (minimality), so the output is non-redundant.
    """
    if max_determinant_size < 1:
        raise ValueError("max_determinant_size must be positive")
    n_cols = table.num_columns
    columns = list(range(n_cols))
    keys = set()
    if exclude_trivial_keys:
        for col in columns:
            if not stripped_partition(table, [col]):
                keys.add(col)

    # determined[A] = set of frozensets X already known with X -> A (minimal).
    determined: Dict[int, List[FrozenSet[int]]] = {a: [] for a in columns}
    found: List[FunctionalDependency] = []
    for size in range(1, max_determinant_size + 1):
        for lhs in itertools.combinations(columns, size):
            if any(c in keys for c in lhs):
                continue
            lhs_set = frozenset(lhs)
            for rhs in columns:
                if rhs in lhs_set:
                    continue
                if any(prior <= lhs_set for prior in determined[rhs]):
                    continue  # a subset already determines rhs: not minimal
                if refines(table, list(lhs), [rhs]):
                    determined[rhs].append(lhs_set)
                    found.append(
                        FunctionalDependency(determinant=tuple(lhs), dependent=(rhs,))
                    )
    return found


def non_fd_column_pairs(
    table: Table,
    count: int,
    *,
    seed_parts: Tuple = (),
) -> List[Tuple[int, int]]:
    """Random column pairs (lhs, rhs) for which ``lhs -> rhs`` does NOT hold.

    Used to build the paper's control set T_not_FD.  Pairs are drawn without
    replacement from all violating ordered pairs; fewer than ``count`` may be
    returned if the table has few violating pairs.
    """
    violating = [
        (a, b)
        for a in range(table.num_columns)
        for b in range(table.num_columns)
        if a != b and not refines(table, [a], [b])
    ]
    rng = rng_for("non_fd_pairs", table.table_id, *seed_parts)
    rng.shuffle(violating)
    return violating[:count]
