"""Relational data-model substrate.

This subpackage implements the relational machinery Observatory measures are
defined over: typed values, schemas, tables with provenance-preserving
shuffles and projections, permutation sampling, row sampling and column
chunking, value-overlap measures, and functional dependencies (definition,
verification, and HyFD-style discovery).
"""

from repro.relational.values import DataType, infer_type, infer_column_type, parse_value
from repro.relational.schema import ColumnSchema, TableSchema
from repro.relational.table import Table
from repro.relational.permutations import sample_permutations, permutation_count
from repro.relational.sampling import sample_rows, sample_column_values, chunk_values
from repro.relational.overlap import (
    containment,
    jaccard,
    multiset_jaccard,
    OVERLAP_MEASURES,
)
from repro.relational.fd import FunctionalDependency, fd_groups, satisfies
from repro.relational.fd_discovery import discover_fds, discover_unary_fds
from repro.relational.algebra import (
    distinct,
    group_by,
    hash_join,
    project,
    select,
    semi_join,
    sort_by,
    union,
)

__all__ = [
    "DataType",
    "infer_type",
    "infer_column_type",
    "parse_value",
    "ColumnSchema",
    "TableSchema",
    "Table",
    "sample_permutations",
    "permutation_count",
    "sample_rows",
    "sample_column_values",
    "chunk_values",
    "containment",
    "jaccard",
    "multiset_jaccard",
    "OVERLAP_MEASURES",
    "FunctionalDependency",
    "fd_groups",
    "satisfies",
    "discover_fds",
    "discover_unary_fds",
    "select",
    "project",
    "distinct",
    "union",
    "hash_join",
    "semi_join",
    "group_by",
    "sort_by",
]
