"""Functional dependencies: definition, verification, and FD groups.

A relation T over attributes U satisfies the functional dependency X -> Y
when any two tuples agreeing on X also agree on Y.  Property 4 probes
whether embedding spaces preserve FDs as stable translations: within each
FD group (the tuples sharing one determinant value), the vector from the
determinant-cell embedding to the dependent-cell embedding should be
constant if the relationship is preserved.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.errors import TableError
from repro.relational.table import Table


@dataclasses.dataclass(frozen=True)
class FunctionalDependency:
    """X -> Y over column indices of a specific table.

    Attributes:
        determinant: column indices of X (the paper mines |X| = 1).
        dependent: column indices of Y.
    """

    determinant: Tuple[int, ...]
    dependent: Tuple[int, ...]

    def __post_init__(self):
        if not self.determinant or not self.dependent:
            raise ValueError("determinant and dependent must be non-empty")
        if set(self.determinant) & set(self.dependent):
            raise ValueError("determinant and dependent must be disjoint")

    @classmethod
    def unary(cls, lhs: int, rhs: int) -> "FunctionalDependency":
        """Single-column determinant and dependent (the paper's setting)."""
        return cls(determinant=(lhs,), dependent=(rhs,))

    def describe(self, table: Table) -> str:
        names = table.header
        lhs = ", ".join(names[i] for i in self.determinant)
        rhs = ", ".join(names[i] for i in self.dependent)
        return f"{lhs} -> {rhs}"


def _projection(row: Sequence[object], indices: Tuple[int, ...]) -> Tuple:
    return tuple("" if row[i] is None else str(row[i]) for i in indices)


def satisfies(table: Table, fd: FunctionalDependency) -> bool:
    """Check whether ``table`` satisfies ``fd`` exactly."""
    _check_indices(table, fd)
    seen: Dict[Tuple, Tuple] = {}
    for row in table.rows:
        lhs = _projection(row, fd.determinant)
        rhs = _projection(row, fd.dependent)
        if lhs in seen:
            if seen[lhs] != rhs:
                return False
        else:
            seen[lhs] = rhs
    return True


def violation_pairs(
    table: Table, fd: FunctionalDependency, limit: int = 10
) -> List[Tuple[int, int]]:
    """Row-index pairs witnessing FD violations (up to ``limit``), for tests."""
    _check_indices(table, fd)
    first_row: Dict[Tuple, int] = {}
    rhs_of: Dict[Tuple, Tuple] = {}
    violations: List[Tuple[int, int]] = []
    for r, row in enumerate(table.rows):
        lhs = _projection(row, fd.determinant)
        rhs = _projection(row, fd.dependent)
        if lhs in rhs_of and rhs_of[lhs] != rhs:
            violations.append((first_row[lhs], r))
            if len(violations) >= limit:
                return violations
        elif lhs not in rhs_of:
            rhs_of[lhs] = rhs
            first_row[lhs] = r
    return violations


def fd_groups(table: Table, fd: FunctionalDependency) -> Dict[Tuple, List[int]]:
    """Partition row indices by determinant value (the FD groups of Measure 4).

    Keys are the projected determinant values, values are the row indices in
    that group, in table order.  The groups partition the table: every row
    appears in exactly one group.
    """
    _check_indices(table, fd)
    groups: Dict[Tuple, List[int]] = {}
    for r, row in enumerate(table.rows):
        groups.setdefault(_projection(row, fd.determinant), []).append(r)
    return groups


def group_value_pairs(
    table: Table, fd: FunctionalDependency
) -> List[List[Tuple[int, int, int, int]]]:
    """Per-group lists of (row, lhs_col, row, rhs_col) cell coordinate pairs.

    For unary FDs this yields, per FD group, the (determinant cell,
    dependent cell) coordinates whose embeddings Measure 4 subtracts.
    Multi-attribute FDs are flattened pairwise (each determinant column is
    paired with each dependent column).
    """
    coords: List[List[Tuple[int, int, int, int]]] = []
    for rows in fd_groups(table, fd).values():
        group_coords = []
        for r in rows:
            for lhs in fd.determinant:
                for rhs in fd.dependent:
                    group_coords.append((r, lhs, r, rhs))
        coords.append(group_coords)
    return coords


def _check_indices(table: Table, fd: FunctionalDependency) -> None:
    for i in fd.determinant + fd.dependent:
        if not 0 <= i < table.num_columns:
            raise TableError(f"FD column index {i} out of range for {table!r}")
