"""Seeded sampling of distinct permutations.

Measures 1 and 2 need up to ``n`` distinct row- or column-wise shuffles of a
table.  The number of permutations of ``k`` items is ``k!`` which overflows
quickly, so the sampler enumerates exhaustively when ``k!`` is small and
rejection-samples distinct permutations otherwise, exactly as the paper's
"at most 1000 randomly generated permutations" protocol requires.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Tuple

from repro.seeding import rng_for

# Beyond this many items we never try to enumerate k! permutations.
_ENUMERATION_LIMIT = 5040  # 7!


def permutation_count(n_items: int) -> int:
    """Number of permutations of ``n_items`` (i.e. n!)."""
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    return math.factorial(n_items)


def sample_permutations(
    n_items: int,
    max_permutations: int,
    *,
    seed_parts: Tuple = (),
    include_identity: bool = True,
) -> List[Tuple[int, ...]]:
    """Sample up to ``max_permutations`` distinct permutations of ``n_items``.

    The identity permutation is returned first when ``include_identity`` is
    set (property runners use it as the reference ordering).  When the full
    permutation space is at most ``max_permutations``, all permutations are
    returned (identity first, remainder deterministically shuffled);
    otherwise distinct permutations are rejection-sampled with a seeded RNG.

    Args:
        n_items: number of rows or columns to permute.
        max_permutations: cap on how many permutations to return.
        seed_parts: extra namespace parts mixed into the RNG seed so each
            table gets its own permutation stream.
        include_identity: whether the identity must be among the results.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if max_permutations < 1:
        raise ValueError("max_permutations must be positive")
    if n_items <= 1:
        return [tuple(range(n_items))]

    identity = tuple(range(n_items))
    total = permutation_count(n_items)
    rng = rng_for("permutations", n_items, *seed_parts)

    if total <= min(max_permutations, _ENUMERATION_LIMIT):
        everything = list(itertools.permutations(range(n_items)))
        everything.remove(identity)
        rng.shuffle(everything)
        out = ([identity] if include_identity else []) + everything
        return out[:max_permutations]

    seen = set()
    out: List[Tuple[int, ...]] = []
    if include_identity:
        seen.add(identity)
        out.append(identity)
    # Rejection sampling: collisions are vanishingly rare when total >> cap.
    while len(out) < max_permutations:
        perm = tuple(int(i) for i in rng.permutation(n_items))
        if perm in seen:
            continue
        seen.add(perm)
        out.append(perm)
    return out


def derangement_fraction(perms: List[Tuple[int, ...]]) -> float:
    """Fraction of sampled permutations with no fixed point (diagnostics)."""
    if not perms:
        return 0.0
    count = sum(1 for p in perms if all(i != v for i, v in enumerate(p)))
    return count / len(perms)


def swap_distance(perm: Tuple[int, ...]) -> int:
    """Minimum number of transpositions to sort ``perm`` (n - #cycles)."""
    seen = [False] * len(perm)
    cycles = 0
    for start in range(len(perm)):
        if seen[start]:
            continue
        cycles += 1
        node: Optional[int] = start
        while node is not None and not seen[node]:
            seen[node] = True
            node = perm[node]
    return len(perm) - cycles
