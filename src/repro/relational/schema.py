"""Column and table schemas.

Schemas carry the metadata Observatory's properties need beyond raw values:
header names (perturbed in P7), data types (textual vs non-textual split in
P8), semantic types (ground truth for the Section 6 column-type-prediction
harness), and the subject-column flag (context setting (b) in P8).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.values import DataType


@dataclasses.dataclass(frozen=True)
class ColumnSchema:
    """Schema of one column.

    Attributes:
        name: header string; empty string means the table is headerless.
        data_type: primitive :class:`DataType` of the column's values.
        semantic_type: optional fine-grained label (e.g. ``"country"``),
            used as ground truth by downstream harnesses.
        is_subject: whether this is the table's subject column (the column
            holding the entities the table is about).
    """

    name: str
    data_type: DataType = DataType.TEXT
    semantic_type: Optional[str] = None
    is_subject: bool = False

    def renamed(self, new_name: str) -> "ColumnSchema":
        """Return a copy with a different header (used by P7 perturbations)."""
        return dataclasses.replace(self, name=new_name)

    def with_type(self, data_type: DataType) -> "ColumnSchema":
        return dataclasses.replace(self, data_type=data_type)


class TableSchema:
    """Ordered collection of :class:`ColumnSchema` with name lookup.

    Column order is significant here — the whole point of P2 is to measure
    what happens to embeddings when it changes — so the schema is a sequence,
    not a mapping.  Duplicate names are allowed (they occur in web tables);
    name lookup returns the first match.
    """

    def __init__(self, columns: Sequence[ColumnSchema]):
        self._columns = tuple(columns)
        if not self._columns:
            raise SchemaError("a table schema needs at least one column")

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "TableSchema":
        """Build a schema of TEXT columns from header names."""
        return cls([ColumnSchema(name=name) for name in names])

    @property
    def columns(self) -> tuple:
        return self._columns

    @property
    def names(self) -> list:
        return [col.name for col in self._columns]

    @property
    def width(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnSchema]:
        return iter(self._columns)

    def __getitem__(self, index: int) -> ColumnSchema:
        return self._columns[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"TableSchema({list(self.names)!r})"

    def index_of(self, name: str) -> int:
        """Index of the first column named ``name``; raises SchemaError."""
        for i, col in enumerate(self._columns):
            if col.name == name:
                return i
        raise SchemaError(f"no column named {name!r}")

    def subject_index(self) -> Optional[int]:
        """Index of the subject column, or None if the table has none."""
        for i, col in enumerate(self._columns):
            if col.is_subject:
                return i
        return None

    def reordered(self, order: Sequence[int]) -> "TableSchema":
        """Return the schema with columns permuted by ``order``."""
        if sorted(order) != list(range(self.width)):
            raise SchemaError(
                f"order {order!r} is not a permutation of 0..{self.width - 1}"
            )
        return TableSchema([self._columns[i] for i in order])

    def projected(self, indices: Sequence[int]) -> "TableSchema":
        """Return the schema restricted to ``indices`` (order preserved)."""
        for i in indices:
            if not 0 <= i < self.width:
                raise SchemaError(f"column index {i} out of range")
        return TableSchema([self._columns[i] for i in indices])

    def renamed(self, index: int, new_name: str) -> "TableSchema":
        """Return the schema with column ``index`` renamed."""
        if not 0 <= index < self.width:
            raise SchemaError(f"column index {index} out of range")
        columns = list(self._columns)
        columns[index] = columns[index].renamed(new_name)
        return TableSchema(columns)
