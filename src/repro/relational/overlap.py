"""Value-overlap measures between columns (Measure 3).

The join-relationship property correlates embedding cosine similarity with a
syntactic value-overlap measure R over (query, candidate) column pairs.  The
paper uses three: containment |Q ∩ C| / |Q| (set semantics, asymmetric, not
biased toward small sets), Jaccard |Q ∩ C| / |Q ∪ C| (set semantics), and
multiset Jaccard |Q ∩ C| / (|Q| + |C|) with multiset semantics, whose maximum
attainable value is 1/2.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Mapping, Sequence

from repro.errors import MeasureError


def _normalize(values: Iterable[object]) -> list:
    """Stringify and strip values; drop empties (join keys are non-null)."""
    out = []
    for value in values:
        if value is None:
            continue
        text = str(value).strip()
        if text:
            out.append(text)
    return out


def _as_multiset(values: Iterable[object]) -> Counter:
    return Counter(_normalize(values))


def containment(query: Sequence[object], candidate: Sequence[object]) -> float:
    """Set containment |Q ∩ C| / |Q| of the query's distinct values.

    Ranges in [0, 1]; equals 1 when every distinct query value appears in
    the candidate.  Asymmetric: ``containment(q, c) != containment(c, q)``
    in general.
    """
    q = set(_normalize(query))
    if not q:
        raise MeasureError("containment is undefined for an empty query column")
    c = set(_normalize(candidate))
    return len(q & c) / len(q)


def jaccard(query: Sequence[object], candidate: Sequence[object]) -> float:
    """Set Jaccard similarity |Q ∩ C| / |Q ∪ C|, in [0, 1]."""
    q = set(_normalize(query))
    c = set(_normalize(candidate))
    union = q | c
    if not union:
        raise MeasureError("jaccard is undefined when both columns are empty")
    return len(q & c) / len(union)


def multiset_jaccard(query: Sequence[object], candidate: Sequence[object]) -> float:
    """Multiset Jaccard |Q ∩ C| / (|Q| + |C|) with multiplicity-aware ∩.

    The intersection counts each value min(count_Q, count_C) times and the
    denominator is the *sum* of multiset cardinalities, so the measure is
    bounded above by 1/2 (attained when the multisets are identical).  This
    is the variant the paper finds most correlated with embedding cosine
    similarity, because embedding inference consumes all values including
    duplicates.
    """
    q = _as_multiset(query)
    c = _as_multiset(candidate)
    total = sum(q.values()) + sum(c.values())
    if total == 0:
        raise MeasureError("multiset jaccard is undefined when both columns are empty")
    inter = sum(min(count, c[value]) for value, count in q.items())
    return inter / total


def weighted_containment(
    query: Mapping[str, int], candidate: Mapping[str, int]
) -> float:
    """Multiset containment over precomputed multisets (extension measure).

    Counts query duplicates: sum(min(q_v, c_v)) / |Q| with multiset |Q|.
    Included as an ablation alternative; not used by the paper's Table 3.
    """
    total = sum(query.values())
    if total == 0:
        raise MeasureError("weighted containment is undefined for an empty query")
    inter = sum(min(count, candidate.get(value, 0)) for value, count in query.items())
    return inter / total


OverlapFn = Callable[[Sequence[object], Sequence[object]], float]

# Registry used by the join-relationship property and its benchmarks; keys
# match the row labels of the paper's Table 3.
OVERLAP_MEASURES: Dict[str, OverlapFn] = {
    "containment": containment,
    "jaccard": jaccard,
    "multiset_jaccard": multiset_jaccard,
}
