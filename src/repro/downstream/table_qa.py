"""TableQA robustness under schema perturbations (Section 6, P7).

The paper connects TAPAS's sensitivity to semantics-preserving schema
perturbations (P7) to accuracy drops of fine-tuned TAPAS on perturbed
TableQA benchmarks (6.2/8.3 points on WikiTableQuestions, 19.0/22.2 on
WikiSQL for synonym/abbreviation perturbations).

The harness implements cell-selection QA over embeddings: a question names
a row entity and a target attribute ("What is the <attribute> of <entity>?");
the system answers with the cell whose (row entity, header) embeddings best
match the question.  Schema perturbations change header embeddings, and
schema-sensitive models lose accuracy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import TableCorpus
from repro.data.drspider import PerturbationKind, perturb_table
from repro.errors import DatasetError
from repro.models.base import EmbeddingModel
from repro.seeding import rng_for
from repro.text.tokenizer import Tokenizer


@dataclasses.dataclass(frozen=True)
class QAExample:
    """One question: find cell (row, col) of ``table``."""

    table_id: str
    question: str
    target_row: int
    target_col: int


def make_qa_examples(
    corpus: TableCorpus, *, per_table: int = 3, seed: int = 0
) -> Dict[str, List[QAExample]]:
    """Synthesize lookup questions against each table's subject column.

    Questions follow the WikiSQL-style lookup pattern: the subject cell of a
    row identifies the row; a non-subject column is the asked attribute.
    """
    if per_table < 1:
        raise DatasetError("per_table must be positive")
    examples: Dict[str, List[QAExample]] = {}
    for table in corpus:
        subject = table.subject_column_index()
        if subject is None or table.num_columns < 2:
            continue
        rng = rng_for("qa-examples", seed, table.table_id)
        rows = rng.choice(table.num_rows, size=min(per_table, table.num_rows), replace=False)
        table_examples = []
        for r in rows:
            candidates = [c for c in range(table.num_columns) if c != subject]
            col = int(candidates[int(rng.integers(0, len(candidates)))])
            entity = table.cell(int(r), subject)
            attribute = table.header[col] or f"column {col}"
            table_examples.append(
                QAExample(
                    table_id=table.table_id,
                    question=f"What is the {attribute} of {entity}?",
                    target_row=int(r),
                    target_col=col,
                )
            )
        if table_examples:
            examples[table.table_id] = table_examples
    if not examples:
        raise DatasetError("no QA examples could be generated")
    return examples


class CellSelectionQA:
    """Answer lookup questions by embedding-based cell selection.

    Row selection scores each row's subject cell against the question;
    column selection scores each header against the question.  Scores are
    soft lexical-semantic matches in the shared content space: every target
    token is matched against its most similar question token and the
    per-token maxima are averaged — the alignment pattern fine-tuned QA
    heads learn.  The predicted cell is the (argmax row, argmax column)
    pair, which is exactly the mechanism schema perturbations break: a
    perturbed header no longer matches the question's attribute words.
    """

    def __init__(self, model: EmbeddingModel):
        self.model = model
        self.tokenizer = Tokenizer()
        self._vector_cache: Dict[str, np.ndarray] = {}

    def _piece_matrix(self, text: str) -> Optional[np.ndarray]:
        """[n_pieces, dim] of unit-normalized content vectors for ``text``."""
        from repro.seeding import token_vector

        pieces = self.tokenizer.tokenize(text)
        if not pieces:
            return None
        rows = []
        for piece in pieces:
            vec = self._vector_cache.get(piece)
            if vec is None:
                raw = token_vector(piece, self.model.dim)
                vec = raw / np.linalg.norm(raw)
                self._vector_cache[piece] = vec
            rows.append(vec)
        return np.stack(rows)

    def _match_score(self, target: str, question: np.ndarray) -> float:
        """Mean over target pieces of the best question-piece similarity."""
        matrix = self._piece_matrix(target)
        if matrix is None:
            return 0.0
        return float((matrix @ question.T).max(axis=1).mean())

    def answer(self, table, example: QAExample) -> Tuple[int, int]:
        """Predicted (row, col) for the question."""
        question = self._piece_matrix(example.question)
        if question is None:
            raise DatasetError(f"question {example.question!r} tokenized to nothing")
        subject = table.subject_column_index()
        if subject is None:
            subject = 0
        row_scores = [
            self._match_score(str(table.cell(r, subject)), question)
            for r in range(table.num_rows)
        ]
        col_scores = []
        for c in range(table.num_columns):
            if c == subject:
                col_scores.append(-np.inf)
                continue
            col_scores.append(self._match_score(table.header[c], question))
        return int(np.argmax(row_scores)), int(np.argmax(col_scores))

    def accuracy(
        self, corpus: TableCorpus, examples: Dict[str, List[QAExample]]
    ) -> float:
        """Exact-cell accuracy over all examples."""
        tables = {t.table_id: t for t in corpus}
        correct = 0
        total = 0
        for table_id, table_examples in examples.items():
            table = tables.get(table_id)
            if table is None:
                continue
            for example in table_examples:
                row, col = self.answer(table, example)
                total += 1
                if row == example.target_row and col == example.target_col:
                    correct += 1
        if total == 0:
            raise DatasetError("no examples matched the corpus")
        return correct / total


@dataclasses.dataclass
class QARobustnessReport:
    """Accuracy on original vs perturbed tables, per perturbation kind."""

    accuracy_original: float
    accuracy_perturbed: Dict[str, float]

    def drop(self, kind: str) -> float:
        """Accuracy drop in points (paper reports 6.2-22.2)."""
        return 100.0 * (self.accuracy_original - self.accuracy_perturbed[kind])

    def summary(self) -> str:
        parts = [
            f"{kind}: {acc:.3f} (drop {self.drop(kind):.1f} pts)"
            for kind, acc in sorted(self.accuracy_perturbed.items())
        ]
        return f"original: {self.accuracy_original:.3f}; " + "; ".join(parts)


def _perturb_corpus(corpus: TableCorpus, kind: PerturbationKind) -> TableCorpus:
    """Perturb every applicable header of every table."""
    perturbed_tables = []
    for table in corpus:
        current = table
        for col in range(table.num_columns):
            variant = perturb_table(current, col, kind)
            if variant is not None:
                current = variant
        perturbed_tables.append(current)
    return TableCorpus(f"{corpus.name}/{kind.value}", perturbed_tables)


def evaluate_qa_robustness(
    model: EmbeddingModel,
    corpus: TableCorpus,
    *,
    per_table: int = 3,
    kinds: Sequence[PerturbationKind] = (
        PerturbationKind.SCHEMA_SYNONYM,
        PerturbationKind.SCHEMA_ABBREVIATION,
    ),
    seed: int = 0,
) -> QARobustnessReport:
    """Accuracy on original tables vs schema-perturbed variants.

    The questions are fixed (they refer to the *original* attribute names,
    as real users would); only the tables are perturbed.
    """
    qa = CellSelectionQA(model)
    examples = make_qa_examples(corpus, per_table=per_table, seed=seed)
    original = qa.accuracy(corpus, examples)
    perturbed: Dict[str, float] = {}
    for kind in kinds:
        variant_corpus = _perturb_corpus(corpus, kind)
        perturbed[kind.value] = qa.accuracy(variant_corpus, examples)
    return QARobustnessReport(accuracy_original=original, accuracy_perturbed=perturbed)
