"""Downstream-task connections (Section 6 of the paper).

Three harnesses that test whether the property characterizations predict
model behaviour on real tasks: column-type-prediction stability under row
permutations (P1/P2 -> DODUO), sample-efficient join discovery
(P5 -> T5), and TableQA robustness under schema perturbations (P7 -> TAPAS).
"""

from repro.downstream.column_type_prediction import (
    ColumnTypePredictor,
    PermutationStabilityReport,
    permutation_stability,
)
from repro.downstream.join_discovery import (
    JoinDiscoveryIndex,
    JoinDiscoveryReport,
    evaluate_join_discovery,
)
from repro.downstream.table_qa import CellSelectionQA, QARobustnessReport, evaluate_qa_robustness

__all__ = [
    "ColumnTypePredictor",
    "PermutationStabilityReport",
    "permutation_stability",
    "JoinDiscoveryIndex",
    "JoinDiscoveryReport",
    "evaluate_join_discovery",
    "CellSelectionQA",
    "QARobustnessReport",
    "evaluate_qa_robustness",
]
