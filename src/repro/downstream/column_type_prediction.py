"""Column-type prediction stability under row permutations (Section 6, P1/P2).

The paper trains nothing new: it reuses DODUO's own task — semantic column
type prediction — and counts how many of a table's predicted column types
*change* when rows are shuffled.  Over 1,000 WikiTables with ~5.8 columns,
34.0% of permuted tables changed at least one prediction, 12.8% at least
two, 5.4% at least three.

This module provides a nearest-centroid column-type classifier over column
embeddings (the standard probe for frozen representations) and the
permutation-stability experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.data.corpus import TableCorpus
from repro.errors import DatasetError
from repro.models.base import EmbeddingModel
from repro.relational.permutations import sample_permutations
from repro.relational.table import Table


class ColumnTypePredictor:
    """Nearest-centroid semantic-type classifier over column embeddings.

    Fit on labelled columns (labels come from the generators'
    ``semantic_type`` annotations); predicts by cosine similarity to class
    centroids.
    """

    def __init__(self, model: EmbeddingModel):
        self.model = model
        self._centroids: Dict[str, np.ndarray] = {}

    @property
    def classes(self) -> List[str]:
        return sorted(self._centroids)

    def fit(self, corpus: TableCorpus) -> "ColumnTypePredictor":
        """Build class centroids from every labelled column in the corpus."""
        sums: Dict[str, np.ndarray] = {}
        counts: Dict[str, int] = {}
        for table in corpus:
            embeddings = self.model.embed_columns(table)
            for i, column in enumerate(table.schema):
                label = column.semantic_type
                if label is None or np.linalg.norm(embeddings[i]) < 1e-12:
                    continue
                if label in sums:
                    sums[label] += embeddings[i]
                    counts[label] += 1
                else:
                    sums[label] = embeddings[i].copy()
                    counts[label] = 1
        if not sums:
            raise DatasetError("corpus has no labelled columns to fit on")
        self._centroids = {label: sums[label] / counts[label] for label in sums}
        return self

    def predict_table(self, table: Table) -> List[str]:
        """Predicted semantic type of every column of ``table``."""
        if not self._centroids:
            raise DatasetError("predictor is not fitted")
        labels = list(self._centroids)
        matrix = np.stack([self._centroids[l] for l in labels])
        matrix = matrix / np.linalg.norm(matrix, axis=1, keepdims=True)
        embeddings = self.model.embed_columns(table)
        out = []
        for i in range(table.num_columns):
            vec = embeddings[i]
            norm = np.linalg.norm(vec)
            if norm < 1e-12:
                out.append(labels[0])
                continue
            scores = matrix @ (vec / norm)
            out.append(labels[int(np.argmax(scores))])
        return out


@dataclasses.dataclass
class PermutationStabilityReport:
    """Fractions of permuted tables with >= k changed type predictions."""

    n_tables: int
    n_permutations: int
    mean_columns: float
    fraction_at_least: Dict[int, float]

    def summary(self) -> str:
        parts = [
            f">= {k} changed: {fraction:.1%}"
            for k, fraction in sorted(self.fraction_at_least.items())
        ]
        return (
            f"{self.n_tables} tables x {self.n_permutations} permutations "
            f"({self.mean_columns:.1f} columns avg): " + ", ".join(parts)
        )


def permutation_stability(
    predictor: ColumnTypePredictor,
    corpus: TableCorpus,
    *,
    n_permutations: int = 20,
    thresholds: Sequence[int] = (1, 2, 3),
) -> PermutationStabilityReport:
    """Measure prediction flips across row permutations (Section 6, P1).

    For every table, predictions on each row-wise permutation are compared
    against predictions on the original order; a permutation "changes k
    predictions" if k columns received a different type.  The report gives,
    averaged over all (table, permutation) pairs, the fraction with at
    least 1/2/3 changes — the paper's 34.0% / 12.8% / 5.4% numbers.
    """
    if n_permutations < 1:
        raise DatasetError("n_permutations must be positive")
    changed_counts: List[int] = []
    total_columns = 0
    for table in corpus:
        baseline = predictor.predict_table(table)
        total_columns += table.num_columns
        perms = sample_permutations(
            table.num_rows,
            n_permutations + 1,
            seed_parts=(table.table_id, "ctp"),
        )
        for perm in perms[1:]:  # skip identity
            variant = table.reorder_rows(list(perm))
            predictions = predictor.predict_table(variant)
            changed = sum(1 for a, b in zip(baseline, predictions) if a != b)
            changed_counts.append(changed)
    counts = np.asarray(changed_counts)
    fraction_at_least = {
        k: float((counts >= k).mean()) for k in thresholds
    }
    return PermutationStabilityReport(
        n_tables=len(corpus),
        n_permutations=n_permutations,
        mean_columns=total_columns / len(corpus),
        fraction_at_least=fraction_at_least,
    )
