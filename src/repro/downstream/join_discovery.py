"""Sample-efficient join discovery (Section 6, P5).

The paper implements WarpGate-style embedding join discovery with T5: index
candidate-column embeddings, retrieve nearest neighbours of a query column,
and compare *sampled* against *full-value* embeddings.  On NextiaJD-XS with
~5% samples, precision/recall moved less than ±3% while indexing was >7x
and lookup >2x faster.

:class:`JoinDiscoveryIndex` is an exact cosine index (brute force — the
fidelity comparison, not ANN engineering, is the point);
:func:`evaluate_join_discovery` runs the sampled-vs-full comparison with
wall-clock timings.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.nextiajd import JoinPair, join_quality
from repro.errors import DatasetError
from repro.models.base import EmbeddingModel
from repro.relational.overlap import containment
from repro.relational.sampling import sample_column_values


class JoinDiscoveryIndex:
    """Exact cosine-similarity index over named column embeddings.

    Rows live in a geometrically-grown buffer: ``add`` appends into
    spare capacity and only reallocates when full (doubling), so *n*
    adds cost O(log n) reallocations — amortized O(1) per add — instead
    of the former rebuild-on-every-query-after-add O(n²) pattern.  A
    matmul over the ``[:count]`` view is bit-identical to one over the
    previously stacked matrix, so lookup results are unchanged.
    ``growths`` counts reallocations for the regression test.
    """

    def __init__(self, dim: int):
        self.dim = dim
        self._keys: List[str] = []
        self._buffer = np.empty((0, dim), dtype=np.float64)
        self._count = 0
        self.growths = 0

    def add(self, key: str, embedding: np.ndarray) -> None:
        embedding = np.asarray(embedding, dtype=np.float64).ravel()
        if embedding.shape != (self.dim,):
            raise DatasetError(f"expected a {self.dim}-d embedding")
        norm = np.linalg.norm(embedding)
        if norm < 1e-12:
            raise DatasetError("cannot index a zero embedding")
        if self._count == self._buffer.shape[0]:
            grown = np.empty(
                (max(8, 2 * self._buffer.shape[0]), self.dim), dtype=np.float64
            )
            grown[: self._count] = self._buffer[: self._count]
            self._buffer = grown
            self.growths += 1
        self._buffer[self._count] = embedding / norm
        self._keys.append(key)
        self._count += 1

    def __len__(self) -> int:
        return len(self._keys)

    def _ensure_matrix(self) -> np.ndarray:
        if not self._count:
            raise DatasetError("index is empty")
        return self._buffer[: self._count]

    def lookup(self, embedding: np.ndarray, k: int) -> List[Tuple[str, float]]:
        """Top-k (key, cosine) for a query embedding."""
        matrix = self._ensure_matrix()
        if not 1 <= k <= len(self._keys):
            raise DatasetError(f"k must be in [1, {len(self._keys)}]")
        query = np.asarray(embedding, dtype=np.float64).ravel()
        norm = np.linalg.norm(query)
        if norm < 1e-12:
            raise DatasetError("cannot look up a zero embedding")
        scores = matrix @ (query / norm)
        order = np.argsort(-scores, kind="stable")[:k]
        return [(self._keys[int(i)], float(scores[int(i)])) for i in order]


@dataclasses.dataclass
class JoinDiscoveryReport:
    """Sampled-vs-full comparison on one testbed."""

    k: int
    sample_fraction: float
    precision_full: float
    recall_full: float
    precision_sampled: float
    recall_sampled: float
    index_time_full: float
    index_time_sampled: float
    lookup_time_full: float
    lookup_time_sampled: float
    engine: str = "exact"
    prune: str = "off"

    @property
    def precision_delta(self) -> float:
        return self.precision_sampled - self.precision_full

    @property
    def recall_delta(self) -> float:
        return self.recall_sampled - self.recall_full

    @property
    def index_speedup(self) -> float:
        return self.index_time_full / max(self.index_time_sampled, 1e-9)

    @property
    def lookup_speedup(self) -> float:
        return self.lookup_time_full / max(self.lookup_time_sampled, 1e-9)

    def summary(self) -> str:
        return (
            f"k={self.k} sample={self.sample_fraction:.0%}: "
            f"precision {self.precision_full:.3f} -> {self.precision_sampled:.3f} "
            f"(delta {self.precision_delta:+.3f}), "
            f"recall {self.recall_full:.3f} -> {self.recall_sampled:.3f} "
            f"(delta {self.recall_delta:+.3f}); "
            f"indexing {self.index_speedup:.1f}x faster, "
            f"lookup {self.lookup_speedup:.1f}x faster"
        )


def _build_ground_truth(pairs: Sequence[JoinPair]) -> Dict[str, set]:
    """query pair_id -> keys of *all* joinable indexed candidates.

    Every candidate column in the repository is checked against every query
    by the NextiaJD labelling rule (containment x cardinality proportion),
    not just the candidate the query was generated with — columns drawn
    from a shared value universe genuinely overlap across pairs.
    """
    truth: Dict[str, set] = {}
    for query in pairs:
        relevant = set()
        query_distinct = len(set(query.query_values))
        for candidate in pairs:
            c = containment(query.query_values, candidate.candidate_values)
            proportion = query_distinct / max(1, len(set(candidate.candidate_values)))
            if join_quality(c, proportion) > 0:
                relevant.add(f"cand::{candidate.pair_id}")
        truth[query.pair_id] = relevant
    return truth


JOIN_DISCOVERY_ENGINES = ("exact", "index")


def evaluate_join_discovery(
    model: EmbeddingModel,
    pairs: Sequence[JoinPair],
    *,
    k: int = 5,
    sample_fraction: float = 0.05,
    min_sample: int = 5,
    engine: str = "exact",
    prune: str = "off",
    index_dir: Optional[str] = None,
    quantize: bool = False,
) -> JoinDiscoveryReport:
    """Compare full-value and sampled join discovery end to end.

    Candidates of every pair form the indexed repository; each query column
    retrieves its top-k.  A retrieval is a hit when it returns the query's
    labelled joinable candidate.  The same protocol runs twice — embeddings
    from full values, then from a uniform ``sample_fraction`` sample — and
    the report carries quality deltas plus indexing/lookup timings.

    Column embeddings go through a fingerprint-keyed
    :class:`~repro.runtime.planner.EmbeddingExecutor` (``model`` may be a
    raw model or an executor), so repeat evaluations against a cached
    executor hit the embedding cache instead of re-encoding.

    ``engine`` selects the retrieval backend: ``"exact"`` is the
    brute-force :class:`JoinDiscoveryIndex` oracle; ``"index"`` serves
    lookups from a persistent :class:`~repro.index.ColumnIndex` (stored
    under ``index_dir`` when given, else a throwaway directory) under the
    requested ``prune`` mode.  The index stores float32, so with
    ``quantize=True`` the exact engine sees the same float32-quantized
    embeddings and — with ``prune="off"`` — both engines provably return
    identical results.
    """
    if not pairs:
        raise DatasetError("no join pairs supplied")
    if engine not in JOIN_DISCOVERY_ENGINES:
        raise DatasetError(
            f"engine must be one of {JOIN_DISCOVERY_ENGINES}, got {engine!r}"
        )
    from repro.index import ColumnIndex
    from repro.runtime.planner import as_executor

    executor = as_executor(model)
    truth = _build_ground_truth(pairs)

    def run(sampled: bool, scratch: str) -> Tuple[float, float, float, float]:
        variant = "sampled" if sampled else "full"

        def column_values(values: Sequence[object], role: str, pair_id: str):
            if not sampled:
                return list(values)
            return sample_column_values(
                list(values),
                sample_fraction,
                seed_parts=(f"jd-{role}", pair_id),
                minimum=min_sample,
            )

        t0 = time.perf_counter()
        embeddings = executor.embed_value_columns(
            [
                (pair.candidate_header, column_values(pair.candidate_values, "cand", pair.pair_id))
                for pair in pairs
            ]
        )
        if quantize:
            embeddings = [ColumnIndex.quantize(emb) for emb in embeddings]
        items = [(f"cand::{pair.pair_id}", emb) for pair, emb in zip(pairs, embeddings)]
        if engine == "index":
            index = ColumnIndex.build(
                os.path.join(scratch, variant), items, dim=executor.dim
            )

            def lookup(embedding: np.ndarray) -> List[Tuple[str, float]]:
                return index.query(embedding, k, prune=prune)

        else:
            oracle = JoinDiscoveryIndex(executor.dim)
            for key, emb in items:
                oracle.add(key, emb)

            def lookup(embedding: np.ndarray) -> List[Tuple[str, float]]:
                return oracle.lookup(embedding, k)

        index_time = time.perf_counter() - t0

        expected = 0
        retrieved_relevant = 0
        t0 = time.perf_counter()
        query_embeddings = executor.embed_value_columns(
            [
                (pair.query_header, column_values(pair.query_values, "query", pair.pair_id))
                for pair in pairs
            ]
        )
        if quantize:
            query_embeddings = [ColumnIndex.quantize(emb) for emb in query_embeddings]
        for pair, query_emb in zip(pairs, query_embeddings):
            results = {key for key, _ in lookup(query_emb)}
            relevant = truth[pair.pair_id]
            expected += len(relevant)
            retrieved_relevant += len(results & relevant)
        lookup_time = time.perf_counter() - t0
        precision = retrieved_relevant / (k * len(pairs))
        recall = retrieved_relevant / max(expected, 1)
        return precision, recall, index_time, lookup_time

    with contextlib.ExitStack() as stack:
        if engine == "index" and index_dir is None:
            scratch = stack.enter_context(tempfile.TemporaryDirectory())
        else:
            scratch = index_dir or ""
        precision_full, recall_full, index_full, lookup_full = run(False, scratch)
        precision_sampled, recall_sampled, index_sampled, lookup_sampled = run(
            True, scratch
        )
    return JoinDiscoveryReport(
        k=k,
        sample_fraction=sample_fraction,
        precision_full=precision_full,
        recall_full=recall_full,
        precision_sampled=precision_sampled,
        recall_sampled=recall_sampled,
        index_time_full=index_full,
        index_time_sampled=index_sampled,
        lookup_time_full=lookup_full,
        lookup_time_sampled=lookup_sampled,
        engine=engine,
        prune=prune,
    )
