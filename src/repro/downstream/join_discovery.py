"""Sample-efficient join discovery (Section 6, P5).

The paper implements WarpGate-style embedding join discovery with T5: index
candidate-column embeddings, retrieve nearest neighbours of a query column,
and compare *sampled* against *full-value* embeddings.  On NextiaJD-XS with
~5% samples, precision/recall moved less than ±3% while indexing was >7x
and lookup >2x faster.

:class:`JoinDiscoveryIndex` is an exact cosine index (brute force — the
fidelity comparison, not ANN engineering, is the point);
:func:`evaluate_join_discovery` runs the sampled-vs-full comparison with
wall-clock timings.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.nextiajd import JoinPair, join_quality
from repro.errors import DatasetError
from repro.models.base import EmbeddingModel
from repro.relational.overlap import containment
from repro.relational.sampling import sample_column_values


class JoinDiscoveryIndex:
    """Exact cosine-similarity index over named column embeddings."""

    def __init__(self, dim: int):
        self.dim = dim
        self._keys: List[str] = []
        self._rows: List[np.ndarray] = []
        self._matrix: Optional[np.ndarray] = None

    def add(self, key: str, embedding: np.ndarray) -> None:
        embedding = np.asarray(embedding, dtype=np.float64).ravel()
        if embedding.shape != (self.dim,):
            raise DatasetError(f"expected a {self.dim}-d embedding")
        norm = np.linalg.norm(embedding)
        if norm < 1e-12:
            raise DatasetError("cannot index a zero embedding")
        self._keys.append(key)
        self._rows.append(embedding / norm)
        self._matrix = None

    def __len__(self) -> int:
        return len(self._keys)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if not self._rows:
                raise DatasetError("index is empty")
            self._matrix = np.stack(self._rows)
        return self._matrix

    def lookup(self, embedding: np.ndarray, k: int) -> List[Tuple[str, float]]:
        """Top-k (key, cosine) for a query embedding."""
        matrix = self._ensure_matrix()
        if not 1 <= k <= len(self._keys):
            raise DatasetError(f"k must be in [1, {len(self._keys)}]")
        query = np.asarray(embedding, dtype=np.float64).ravel()
        norm = np.linalg.norm(query)
        if norm < 1e-12:
            raise DatasetError("cannot look up a zero embedding")
        scores = matrix @ (query / norm)
        order = np.argsort(-scores, kind="stable")[:k]
        return [(self._keys[int(i)], float(scores[int(i)])) for i in order]


@dataclasses.dataclass
class JoinDiscoveryReport:
    """Sampled-vs-full comparison on one testbed."""

    k: int
    sample_fraction: float
    precision_full: float
    recall_full: float
    precision_sampled: float
    recall_sampled: float
    index_time_full: float
    index_time_sampled: float
    lookup_time_full: float
    lookup_time_sampled: float

    @property
    def precision_delta(self) -> float:
        return self.precision_sampled - self.precision_full

    @property
    def recall_delta(self) -> float:
        return self.recall_sampled - self.recall_full

    @property
    def index_speedup(self) -> float:
        return self.index_time_full / max(self.index_time_sampled, 1e-9)

    @property
    def lookup_speedup(self) -> float:
        return self.lookup_time_full / max(self.lookup_time_sampled, 1e-9)

    def summary(self) -> str:
        return (
            f"k={self.k} sample={self.sample_fraction:.0%}: "
            f"precision {self.precision_full:.3f} -> {self.precision_sampled:.3f} "
            f"(delta {self.precision_delta:+.3f}), "
            f"recall {self.recall_full:.3f} -> {self.recall_sampled:.3f} "
            f"(delta {self.recall_delta:+.3f}); "
            f"indexing {self.index_speedup:.1f}x faster, "
            f"lookup {self.lookup_speedup:.1f}x faster"
        )


def _build_ground_truth(pairs: Sequence[JoinPair]) -> Dict[str, set]:
    """query pair_id -> keys of *all* joinable indexed candidates.

    Every candidate column in the repository is checked against every query
    by the NextiaJD labelling rule (containment x cardinality proportion),
    not just the candidate the query was generated with — columns drawn
    from a shared value universe genuinely overlap across pairs.
    """
    truth: Dict[str, set] = {}
    for query in pairs:
        relevant = set()
        query_distinct = len(set(query.query_values))
        for candidate in pairs:
            c = containment(query.query_values, candidate.candidate_values)
            proportion = query_distinct / max(1, len(set(candidate.candidate_values)))
            if join_quality(c, proportion) > 0:
                relevant.add(f"cand::{candidate.pair_id}")
        truth[query.pair_id] = relevant
    return truth


def evaluate_join_discovery(
    model: EmbeddingModel,
    pairs: Sequence[JoinPair],
    *,
    k: int = 5,
    sample_fraction: float = 0.05,
    min_sample: int = 5,
) -> JoinDiscoveryReport:
    """Compare full-value and sampled join discovery end to end.

    Candidates of every pair form the indexed repository; each query column
    retrieves its top-k.  A retrieval is a hit when it returns the query's
    labelled joinable candidate.  The same protocol runs twice — embeddings
    from full values, then from a uniform ``sample_fraction`` sample — and
    the report carries quality deltas plus indexing/lookup timings.
    """
    if not pairs:
        raise DatasetError("no join pairs supplied")
    truth = _build_ground_truth(pairs)

    def run(sampled: bool) -> Tuple[float, float, float, float]:
        t0 = time.perf_counter()
        index = JoinDiscoveryIndex(model.dim)
        for pair in pairs:
            values: Sequence[object] = pair.candidate_values
            if sampled:
                values = sample_column_values(
                    list(values),
                    sample_fraction,
                    seed_parts=("jd-cand", pair.pair_id),
                    minimum=min_sample,
                )
            index.add(
                f"cand::{pair.pair_id}",
                model.embed_value_column(pair.candidate_header, list(values)),
            )
        index_time = time.perf_counter() - t0

        hits = 0
        expected = 0
        retrieved_relevant = 0
        t0 = time.perf_counter()
        for pair in pairs:
            values = pair.query_values
            if sampled:
                values = sample_column_values(
                    list(values),
                    sample_fraction,
                    seed_parts=("jd-query", pair.pair_id),
                    minimum=min_sample,
                )
            query_emb = model.embed_value_column(pair.query_header, list(values))
            results = {key for key, _ in index.lookup(query_emb, k)}
            relevant = truth[pair.pair_id]
            expected += len(relevant)
            retrieved_relevant += len(results & relevant)
            hits += 1 if results & relevant else 0
        lookup_time = time.perf_counter() - t0
        precision = retrieved_relevant / (k * len(pairs))
        recall = retrieved_relevant / max(expected, 1)
        return precision, recall, index_time, lookup_time

    precision_full, recall_full, index_full, lookup_full = run(sampled=False)
    precision_sampled, recall_sampled, index_sampled, lookup_sampled = run(sampled=True)
    return JoinDiscoveryReport(
        k=k,
        sample_fraction=sample_fraction,
        precision_full=precision_full,
        recall_full=recall_full,
        precision_sampled=precision_sampled,
        recall_sampled=recall_sampled,
        index_time_full=index_full,
        index_time_sampled=index_sampled,
        lookup_time_full=lookup_full,
        lookup_time_sampled=lookup_sampled,
    )
