"""Write-ahead sweep journal: durable per-cell progress for ``sweep``.

A sweep is expensive and deterministic per cell, but historically
all-or-nothing: a SIGKILL/OOM of the parent lost every finished cell and
re-planned the whole matrix.  :class:`SweepJournal` makes progress
durable at cell granularity so ``Observatory.sweep(journal_dir=...,
resume=True)`` replays what already finished and dispatches only the
remainder.

Layout of a journal directory::

    plan.json             # fingerprint header, written temp-then-rename
    segment-000001.jsonl  # sealed segment (renamed from .part on close)
    segment-000002.jsonl.part  # active segment of the live/killed session

Design rules, each earned by a crash mode:

- **Plan fingerprint header.**  ``plan.json`` records a SHA-256 over the
  sweep's identity — seed, dataset sizes, models, properties, backend
  namespace, and the runnable cell list.  Resume refuses a journal whose
  fingerprint differs (:class:`~repro.errors.StaleJournalError`): mixing
  cells computed under different numerics would be silent corruption.
  The fingerprint deliberately *excludes* execution mode and worker
  count — results are bit-identical across engines by contract, so a
  thread-engine journal may resume under the process engine.
- **Append-only JSONL segments, one per session.**  Each writing session
  appends to its own ``.part`` file (flush + fsync per record) and seals
  it by rename on clean close.  A crash leaves a ``.part`` tail; replay
  reads sealed and unsealed segments alike.
- **Digest-verified records.**  Every line carries the SHA-256 of its
  canonical record JSON.  Replay drops torn tails and garbage lines
  individually — one bad line never poisons the records after it.
- **First record wins.**  A cell journaled twice (crash between write
  and dedup bookkeeping) replays its first outcome, so replay is
  idempotent.

Failure records (degraded cells) are journaled for audit but are *not*
treated as completed: a resume retries them — a transient fault should
not be sticky across restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import JournalError, StaleJournalError

PLAN_FILE = "plan.json"
JOURNAL_VERSION = 1

_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.jsonl(\.part)?$")

CellKey = Tuple[str, str]  # (model_name, property_name)


def _canonical(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_digest(record: Dict[str, object]) -> str:
    """SHA-256 hex digest of a record's canonical JSON form."""
    return hashlib.sha256(_canonical(record).encode("utf-8")).hexdigest()


def plan_fingerprint(plan: Dict[str, object]) -> str:
    """SHA-256 hex digest identifying a sweep plan (order-insensitive keys)."""
    return hashlib.sha256(_canonical(plan).encode("utf-8")).hexdigest()


def _write_atomic(path: str, payload: str) -> None:
    """Write-temp-then-rename so readers never observe a torn header."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class SweepJournal:
    """Durable record of one sweep's planned and completed cells.

    Construct via :meth:`start` (fresh journal; discards any prior
    contents of the directory) or :meth:`resume` (replays completed
    cells; refuses a fingerprint mismatch).  Not process-shared: exactly
    one sweep parent writes a journal at a time.  Appends are
    thread-safe (re-entrant lock) because the CLI's signal handlers may
    flush while the sweep loop is mid-append.
    """

    def __init__(
        self,
        directory: str,
        fingerprint: str,
        *,
        completed: Optional[Dict[CellKey, Dict[str, object]]] = None,
        dropped_records: int = 0,
        segment_index: int = 1,
    ):
        self.directory = directory
        self.fingerprint = fingerprint
        #: Cell outcomes recovered on resume, keyed by (model, property).
        self.completed: Dict[CellKey, Dict[str, object]] = dict(completed or {})
        #: Torn/garbage lines skipped during replay (observability only).
        self.dropped_records = dropped_records
        self._lock = threading.RLock()
        self._segment_index = segment_index
        self._part_path = os.path.join(
            directory, f"segment-{segment_index:06d}.jsonl.part"
        )
        self._handle = None  # opened lazily on first append
        self._closed = False

    # -- construction -------------------------------------------------

    @classmethod
    def start(cls, directory: str, plan: Dict[str, object]) -> "SweepJournal":
        """Open a fresh journal, discarding any previous one in ``directory``.

        A fresh (non-resume) sweep owns the directory: stale segments
        from an earlier plan must not survive to be replayed into a
        later ``--resume``.
        """
        os.makedirs(directory, exist_ok=True)
        for name in os.listdir(directory):
            if _SEGMENT_RE.match(name) or name in (PLAN_FILE, PLAN_FILE + ".tmp"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass
        fingerprint = plan_fingerprint(plan)
        header = {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "plan": plan,
        }
        _write_atomic(
            os.path.join(directory, PLAN_FILE),
            json.dumps(header, sort_keys=True, indent=2) + "\n",
        )
        return cls(directory, fingerprint)

    @classmethod
    def resume(cls, directory: str, plan: Dict[str, object]) -> "SweepJournal":
        """Reopen a journal, replaying completed cells from its segments.

        Raises:
            JournalError: no journal exists at ``directory``, or its
                header is unreadable.
            StaleJournalError: the journal was written for a different
                plan (models, corpora, sizes, seed, or backend differ).
        """
        plan_path = os.path.join(directory, PLAN_FILE)
        try:
            with open(plan_path, "r", encoding="utf-8") as handle:
                header = json.load(handle)
        except FileNotFoundError:
            raise JournalError(
                f"no sweep journal at {directory!r} (missing {PLAN_FILE}); "
                "run without --resume to start one"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"unreadable sweep journal header {plan_path!r}: {exc}"
            ) from exc
        if not isinstance(header, dict) or "fingerprint" not in header:
            raise JournalError(
                f"malformed sweep journal header {plan_path!r}: no fingerprint"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"sweep journal {directory!r} has version "
                f"{header.get('version')!r}; this build reads version "
                f"{JOURNAL_VERSION}"
            )
        fingerprint = plan_fingerprint(plan)
        if header["fingerprint"] != fingerprint:
            raise StaleJournalError(
                f"journal at {directory!r} was written for a different sweep "
                f"plan (journal fingerprint {header['fingerprint'][:12]}…, "
                f"requested {fingerprint[:12]}…); models, corpora, sizes, "
                "seed, or backend changed — start a fresh journal instead"
            )
        completed, dropped = _replay_segments(directory)
        next_index = _next_segment_index(directory)
        return cls(
            directory,
            fingerprint,
            completed=completed,
            dropped_records=dropped,
            segment_index=next_index,
        )

    # -- appends ------------------------------------------------------

    def record_planned(self, cells: Sequence[CellKey]) -> None:
        """Journal the session's dispatch plan (the write-ahead half)."""
        self._append(
            {
                "type": "planned",
                "cells": [[m, p] for m, p in cells],
            }
        )

    def record_cell(
        self, model_name: str, property_name: str, cell: Dict[str, object]
    ) -> None:
        """Journal one completed cell outcome (lossless jsonable form)."""
        record = {
            "type": "cell",
            "model": model_name,
            "property": property_name,
            "cell": cell,
        }
        self._append(record)
        with self._lock:
            self.completed.setdefault((model_name, property_name), cell)

    def record_failure(self, failure: Dict[str, object]) -> None:
        """Journal a degraded cell (audit only — retried on resume)."""
        self._append({"type": "failure", "failure": failure})

    def _append(self, record: Dict[str, object]) -> None:
        line = json.dumps(
            {"r": record, "d": record_digest(record)},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            if self._closed:
                raise JournalError("sweep journal is closed")
            try:
                if self._handle is None:
                    self._handle = open(self._part_path, "a", encoding="utf-8")
                self._handle.write(line + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as exc:
                # A journal that cannot persist progress is a sweep
                # failure, not an I/O detail: surface it typed so abort
                # mode stops before claiming durability it doesn't have.
                raise JournalError(
                    f"cannot append to sweep journal {self._part_path!r}: {exc}"
                ) from exc

    # -- lifecycle ----------------------------------------------------

    def flush(self) -> None:
        """Force buffered records to disk (safe from signal handlers)."""
        with self._lock:
            if self._handle is not None and not self._closed:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Seal the active segment (rename ``.part`` → ``.jsonl``).

        Idempotent.  A session that appended nothing leaves no segment.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    self._handle.close()
                    sealed = self._part_path[: -len(".part")]
                    os.replace(self._part_path, sealed)
                except OSError as exc:
                    raise JournalError(
                        f"cannot seal sweep journal segment "
                        f"{self._part_path!r}: {exc}"
                    ) from exc
                finally:
                    self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _segment_paths(directory: str) -> List[str]:
    """Sealed and unsealed segments in index order (crash tails last-equal)."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return [path for _, path in found]


def _next_segment_index(directory: str) -> int:
    indices = [
        int(_SEGMENT_RE.match(os.path.basename(p)).group(1))
        for p in _segment_paths(directory)
    ]
    return (max(indices) + 1) if indices else 1


def iter_records(
    directory: str, *, on_drop: Optional[Callable[[str], None]] = None
) -> Iterator[Dict[str, object]]:
    """Yield digest-verified records from every segment, in append order.

    The public replay seam: sealed and unsealed (``.part``) segments are
    read alike, torn tails and garbage lines are skipped individually
    (``on_drop`` is called with the offending line when given), and
    first-record-wins dedup is the *caller's* concern — this yields the
    raw verified stream.  Safe to call while a journal is still
    appending: every append is fsynced, so a concurrent read only ever
    lags by in-flight records.  Both the sweep journal's resume and the
    service's request journal / live cell streaming are built on it.
    """
    for path in _segment_paths(directory):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines: Iterable[str] = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                envelope = json.loads(line)
                record = envelope["r"]
                if envelope["d"] != record_digest(record):
                    raise ValueError("digest mismatch")
            except (ValueError, KeyError, TypeError):
                if on_drop is not None:
                    on_drop(line)  # torn tail or garbage — skip this line
                continue
            if isinstance(record, dict):
                yield record


def _replay_segments(
    directory: str,
) -> Tuple[Dict[CellKey, Dict[str, object]], int]:
    """Recover completed-cell outcomes; count (don't fail on) bad lines."""
    completed: Dict[CellKey, Dict[str, object]] = {}
    dropped = 0

    def _count(_line: str) -> None:
        nonlocal dropped
        dropped += 1

    for record in iter_records(directory, on_drop=_count):
        if record.get("type") == "cell":
            key = (record["model"], record["property"])
            completed.setdefault(key, record["cell"])
    return completed, dropped
