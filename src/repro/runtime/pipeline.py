"""The async encode loop behind the streaming executor.

:class:`EncodeLoop` owns one background thread running an asyncio event
loop.  The :class:`~repro.runtime.planner.EmbeddingExecutor` submits
``EncoderBackend.aencode_batch`` coroutines to it and keeps working —
fingerprinting, serializing, cache-probing the *next* chunk — while the
submitted chunk's forward passes run.  Since the token plane went
columnar, each submitted chunk is a list of
:class:`~repro.models.token_array.TokenArray` — four NumPy arrays per
sequence, no per-token objects — so handing a chunk to the loop (and, for
a future remote backend, onto the wire) moves flat buffers, not object
graphs.  Because numpy's BLAS kernels
release the GIL, the overlap is real parallelism on multi-core hosts and
harmless interleaving on one core.  Synchronous callers never see the
loop: the executor's public surface blocks on the returned futures, so
every existing call site (property runners, both sweep engines, the
benchmarks) works unchanged — the asynchrony is an implementation detail
behind a synchronous facade.

:class:`PipelineStats` quantifies the win: ``encode_seconds`` is the
background busy time, ``wait_seconds`` how long the submitting thread
actually blocked on results; their gap is encode time hidden behind
useful foreground work (the ``overlap_ratio`` benchmarks and
``render_sweep`` report).
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from concurrent.futures import Future
from typing import Coroutine, Dict, Optional, Sequence

from repro.errors import ObservatoryError


@dataclasses.dataclass
class PipelineStats:
    """Cumulative async-encode accounting (picklable, lock kept outside)."""

    batches: int = 0
    sequences: int = 0
    encode_seconds: float = 0.0
    wait_seconds: float = 0.0

    @property
    def overlap_seconds(self) -> float:
        """Background encode time hidden behind foreground work."""
        return max(0.0, self.encode_seconds - self.wait_seconds)

    @property
    def overlap_ratio(self) -> float:
        """Fraction of encode time the caller did not block for."""
        return self.overlap_seconds / self.encode_seconds if self.encode_seconds else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "sequences": self.sequences,
            "encode_seconds": self.encode_seconds,
            "wait_seconds": self.wait_seconds,
            "overlap_ratio": self.overlap_ratio,
        }

    @classmethod
    def merged(cls, many: Sequence["PipelineStats"]) -> "PipelineStats":
        out = cls()
        for stats in many:
            out.batches += stats.batches
            out.sequences += stats.sequences
            out.encode_seconds += stats.encode_seconds
            out.wait_seconds += stats.wait_seconds
        return out

    def since(self, baseline: "PipelineStats") -> "PipelineStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        Executors keep cumulative totals; a sweep reports only its own
        work by snapshotting before it starts and diffing after.
        """
        return PipelineStats(
            batches=self.batches - baseline.batches,
            sequences=self.sequences - baseline.sequences,
            encode_seconds=self.encode_seconds - baseline.encode_seconds,
            wait_seconds=self.wait_seconds - baseline.wait_seconds,
        )


class EncodeLoopClosedError(ObservatoryError, RuntimeError):
    """Submission refused: the encode loop was closed (or died wedged).

    Doubly derived: :class:`~repro.errors.ObservatoryError` so sweep
    failure paths stay typed (degrade mode records it as a named
    :class:`CellFailure`), ``RuntimeError`` for callers that predate the
    unified hierarchy.
    """


class EncodeLoopStuckError(ObservatoryError, RuntimeError):
    """The encode loop's thread failed to stop within the close timeout."""


class EncodeLoop:
    """A daemon thread running an asyncio loop for encode submissions.

    Lifecycle contract (remote-backend deadline semantics depend on it):
    :meth:`close` either confirms the loop thread exited or raises — it
    never returns silently with the thread still alive, which used to let
    a backend coroutine blocked on a dead socket wedge the loop while
    later ``submit`` calls kept enqueueing onto it.  Once ``close`` has
    been called (successfully or not), ``submit`` fails fast with
    :class:`EncodeLoopClosedError` instead of scheduling work that would
    never run.
    """

    def __init__(self):
        self._closed = False
        # Serializes the closed-flag check in submit() against close()
        # setting it: without this, a submit racing close could schedule
        # onto a loop that stops before the callback runs, handing the
        # caller a future that never completes.
        self._lifecycle_lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-encode-loop", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def closed(self) -> bool:
        return self._closed

    def is_alive(self) -> bool:
        return not self._closed and self._thread.is_alive()

    def submit(self, coro: Coroutine) -> Future:
        """Schedule a coroutine on the loop; returns a blocking future.

        Raises :class:`EncodeLoopClosedError` after :meth:`close` — a
        stopping loop would accept the coroutine and never run it, leaving
        the caller blocked on a future that cannot complete.  The check
        and the scheduling are atomic against :meth:`close`: a submission
        that wins the race is queued before the stop callback, one that
        loses it fails fast here.
        """
        with self._lifecycle_lock:
            if self._closed:
                coro.close()  # suppress the "never awaited" warning
                raise EncodeLoopClosedError(
                    "encode loop is closed; create a fresh loop via encode_loop()"
                )
            return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def close(self, timeout: float = 2.0) -> None:
        """Stop the loop and join its thread; raise if the thread wedged.

        A loop thread that outlives ``timeout`` means some backend
        coroutine is blocked in non-cooperative code (a dead socket, a
        stuck syscall).  That is surfaced as
        :class:`EncodeLoopStuckError` — the daemon
        thread cannot hurt interpreter shutdown, but pretending the close
        succeeded would hide exactly the failures remote-backend deadline
        tests need to see.  The loop is marked closed first either way, so
        later submits fail fast; a submit that *won* the race has its
        still-pending task cancelled on the loop before the stop, so its
        future resolves with ``CancelledError`` — every racer gets a
        terminal outcome, never a forever-pending future.
        """
        with self._lifecycle_lock:
            self._closed = True

        async def _shutdown() -> None:
            # Runs on the loop thread: cancel whatever is still pending
            # and wait for the cancellations to be processed (so their
            # submit() futures resolve), then stop the loop.
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            # One extra iteration: task completion hands results to
            # submit()'s concurrent futures via call_soon callbacks
            # (_chain_future); stopping in the same batch would strand
            # them and hang the submitter despite the task being done.
            await asyncio.sleep(0)
            self._loop.stop()

        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise EncodeLoopStuckError(
                f"encode loop thread failed to stop within {timeout:.1f}s — "
                "a backend coroutine is wedged (dead socket? missing "
                "deadline?); submissions are refused from now on"
            )


_loop_lock = threading.Lock()
_shared_loop: Optional[EncodeLoop] = None


def encode_loop() -> EncodeLoop:
    """The process-wide encode loop, created lazily (one daemon thread).

    Spawned sweep workers each get their own — nothing here survives a
    process boundary, which is exactly the isolation the process engine
    promises.
    """
    global _shared_loop
    with _loop_lock:
        if _shared_loop is None or not _shared_loop.is_alive():
            _shared_loop = EncodeLoop()
        return _shared_loop
