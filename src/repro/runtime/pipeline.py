"""The async encode loop behind the streaming executor.

:class:`EncodeLoop` owns one background thread running an asyncio event
loop.  The :class:`~repro.runtime.planner.EmbeddingExecutor` submits
``EncoderBackend.aencode_batch`` coroutines to it and keeps working —
fingerprinting, serializing, cache-probing the *next* chunk — while the
submitted chunk's forward passes run.  Since the token plane went
columnar, each submitted chunk is a list of
:class:`~repro.models.token_array.TokenArray` — four NumPy arrays per
sequence, no per-token objects — so handing a chunk to the loop (and, for
a future remote backend, onto the wire) moves flat buffers, not object
graphs.  Because numpy's BLAS kernels
release the GIL, the overlap is real parallelism on multi-core hosts and
harmless interleaving on one core.  Synchronous callers never see the
loop: the executor's public surface blocks on the returned futures, so
every existing call site (property runners, both sweep engines, the
benchmarks) works unchanged — the asynchrony is an implementation detail
behind a synchronous facade.

:class:`PipelineStats` quantifies the win: ``encode_seconds`` is the
background busy time, ``wait_seconds`` how long the submitting thread
actually blocked on results; their gap is encode time hidden behind
useful foreground work (the ``overlap_ratio`` benchmarks and
``render_sweep`` report).
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from concurrent.futures import Future
from typing import Coroutine, Dict, Optional, Sequence


@dataclasses.dataclass
class PipelineStats:
    """Cumulative async-encode accounting (picklable, lock kept outside)."""

    batches: int = 0
    sequences: int = 0
    encode_seconds: float = 0.0
    wait_seconds: float = 0.0

    @property
    def overlap_seconds(self) -> float:
        """Background encode time hidden behind foreground work."""
        return max(0.0, self.encode_seconds - self.wait_seconds)

    @property
    def overlap_ratio(self) -> float:
        """Fraction of encode time the caller did not block for."""
        return self.overlap_seconds / self.encode_seconds if self.encode_seconds else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "sequences": self.sequences,
            "encode_seconds": self.encode_seconds,
            "wait_seconds": self.wait_seconds,
            "overlap_ratio": self.overlap_ratio,
        }

    @classmethod
    def merged(cls, many: Sequence["PipelineStats"]) -> "PipelineStats":
        out = cls()
        for stats in many:
            out.batches += stats.batches
            out.sequences += stats.sequences
            out.encode_seconds += stats.encode_seconds
            out.wait_seconds += stats.wait_seconds
        return out

    def since(self, baseline: "PipelineStats") -> "PipelineStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        Executors keep cumulative totals; a sweep reports only its own
        work by snapshotting before it starts and diffing after.
        """
        return PipelineStats(
            batches=self.batches - baseline.batches,
            sequences=self.sequences - baseline.sequences,
            encode_seconds=self.encode_seconds - baseline.encode_seconds,
            wait_seconds=self.wait_seconds - baseline.wait_seconds,
        )


class EncodeLoop:
    """A daemon thread running an asyncio loop for encode submissions."""

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-encode-loop", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def submit(self, coro: Coroutine) -> Future:
        """Schedule a coroutine on the loop; returns a blocking future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=2.0)


_loop_lock = threading.Lock()
_shared_loop: Optional[EncodeLoop] = None


def encode_loop() -> EncodeLoop:
    """The process-wide encode loop, created lazily (one daemon thread).

    Spawned sweep workers each get their own — nothing here survives a
    process boundary, which is exactly the isolation the process engine
    promises.
    """
    global _shared_loop
    with _loop_lock:
        if _shared_loop is None or not _shared_loop.is_alive():
            _shared_loop = EncodeLoop()
        return _shared_loop
