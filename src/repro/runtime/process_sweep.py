"""Static process-sharded sweep engine (the work-stealing oracle).

Thread-pool sweeps only scale the numpy-bound half of the characterization
matrix: serializers, aggregates, and planner bookkeeping hold the GIL, so
Python-heavy cells serialize onto one core.  :class:`ProcessShardedSweep`
partitions the runnable (model, property) cells into per-process shards
and runs each shard in a **spawned** worker process.

``execution="process"`` sweeps now run on the work-stealing scheduler
(:mod:`repro.runtime.scheduler`), which replaces these fixed shards with
dynamically pulled corpus-affinity groups.  This engine is deliberately
**retained as an executable oracle**: its one-shot ``pool.map`` over
static shards is the simplest possible process execution, so equivalence
tests (and ``benchmarks/bench_runtime_sweep.py``'s static-vs-stealing
section) diff the scheduler against it for every worker count.

Isolation contract:

- Workers never receive pickled encoders or datasets.  A shard payload is
  ``(seed, DatasetSizes, RuntimeConfig, cells)`` — plain dataclasses of
  primitives — and the worker rebuilds its own Observatory, models (from
  the registry / :class:`~repro.models.config.ModelConfig`), and corpora
  from the seed.  Spawn-safety follows: nothing crosses the process
  boundary except configuration in and results out.  Token sequences in
  particular never ship raw: piece ids are process-local interner state,
  and :class:`~repro.models.token_array.TokenArray` pickles through its
  wire format (piece *strings* + provenance arrays, re-interned on the
  receiving side) should one ever ride a payload or result.
- The only *shared* state is the on-disk cache tier
  (``RuntimeConfig.disk_cache_dir``), whose atomic writes and locked index
  make concurrent workers safe; without a disk dir each worker runs a
  private memory cache.
- Every cell is a pure function of (seed, model, property, sizes), so
  results are bit-identical to thread mode and to ``workers=1`` for any
  shard count — ``tests/test_runtime_process_sweep.py`` locks this in.

Shards are contiguous chunks of the cache-aware cell order
(:func:`repro.runtime.sweep.order_cells`), so cells sharing a model and a
corpus land in the same worker and hit its warm memory tier.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservatoryError
from repro.models.backends.padded import PaddingStats
from repro.models.backends.remote import TransportStats
from repro.runtime.cache import CacheStats
from repro.runtime.pipeline import PipelineStats

_DEFAULT_PROCESS_CAP = 4


@dataclasses.dataclass
class ShardOutcome:
    """What the parent gets back from a process engine (pre-ordering).

    ``scheduler`` carries the work-stealing engine's per-worker
    busy/idle/steal telemetry
    (:class:`~repro.runtime.scheduler.SchedulerTelemetry`); the static
    engine leaves it ``None``.  ``failures`` carries degraded cells
    (:class:`~repro.runtime.sweep.CellFailure`) under
    ``on_error="degrade"``; the static engine always aborts, so it
    leaves the list empty.
    """

    cells: List["SweepCell"]
    workers: int
    cache_stats: Optional[CacheStats]
    pipeline: Optional[PipelineStats] = None
    padding: Optional[PaddingStats] = None
    transport: Optional[TransportStats] = None
    scheduler: Optional["SchedulerTelemetry"] = None  # noqa: F821
    failures: List["CellFailure"] = dataclasses.field(  # noqa: F821
        default_factory=list
    )


def partition_shards(
    cells: Sequence[Tuple[str, str]], n_shards: int
) -> List[List[Tuple[str, str]]]:
    """Split ``cells`` into ``n_shards`` contiguous, near-equal chunks.

    Contiguity preserves the cache-aware ordering inside each shard; the
    first ``len(cells) % n_shards`` shards take one extra cell.  Empty
    shards are never produced.
    """
    n_shards = max(1, min(n_shards, len(cells)))
    base, extra = divmod(len(cells), n_shards)
    shards: List[List[Tuple[str, str]]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(list(cells[start : start + size]))
        start += size
    return shards


def _run_shard(payload: Dict[str, object]) -> Dict[str, object]:
    """Spawn-safe worker entrypoint: rebuild everything, run the shard.

    Top-level so the spawned interpreter can import it by qualified name;
    imports live inside the function to keep this module import-light and
    free of parent-module cycles (framework → sweep → here).
    """
    import repro.telemetry as telemetry
    from repro.core.framework import Observatory
    from repro.runtime.sweep import SweepCell

    observatory = Observatory(
        seed=payload["seed"],
        sizes=payload["sizes"],
        runtime=payload["runtime"],
    )
    cells = []
    for model_name, property_name in payload["cells"]:
        timings = telemetry.start_cell()
        t0 = time.perf_counter()
        try:
            result = observatory.characterize(model_name, property_name)
        finally:
            telemetry.stop_cell()
        cells.append(
            SweepCell(
                model_name,
                property_name,
                result,
                time.perf_counter() - t0,
                serialize_seconds=timings.serialize_seconds,
                encode_seconds=timings.encode_seconds,
                aggregate_seconds=timings.aggregate_seconds,
            )
        )
    stats = observatory.cache.stats if observatory.cache is not None else None
    return {
        "cells": cells,
        "stats": stats,
        "pipeline": observatory.pipeline_stats(),
        "padding": observatory.padding_stats(),
        "transport": observatory.transport_stats(),
    }


class ProcessShardedSweep:
    """Run sweep cells across spawned worker processes.

    Args:
        observatory: the parent Observatory; only its ``seed``, ``sizes``,
            and ``runtime`` config travel to workers (models and datasets
            are rebuilt per process, never pickled).
        max_workers: shard count; defaults to
            ``min(4, cpu_count, len(cells))``.
    """

    def __init__(self, observatory, *, max_workers: Optional[int] = None):
        self.observatory = observatory
        self.max_workers = max_workers

    def _worker_runtime(self):
        """The runtime config a worker rebuilds its Observatory with.

        Workers run their shard serially (``execution="thread"`` with the
        cells already assigned), so the parent's execution/worker settings
        must not recurse into them.
        """
        return dataclasses.replace(
            self.observatory.runtime, execution="thread", max_workers=1
        )

    def run(self, cells: Sequence[Tuple[str, str]]) -> ShardOutcome:
        """Execute ``cells`` (already cache-aware-ordered) in shards."""
        workers = self.max_workers or min(
            _DEFAULT_PROCESS_CAP, os.cpu_count() or 1, max(1, len(cells))
        )
        shards = partition_shards(cells, workers)
        payloads = [
            {
                "seed": self.observatory.seed,
                "sizes": self.observatory.sizes,
                "runtime": self._worker_runtime(),
                "cells": shard,
            }
            for shard in shards
        ]
        # spawn, not fork: workers must rebuild state from configuration
        # (fork would silently share the parent's loaded models and numpy
        # state, masking pickling bugs and breaking on non-POSIX hosts).
        context = multiprocessing.get_context("spawn")
        try:
            with ProcessPoolExecutor(
                max_workers=len(shards), mp_context=context
            ) as pool:
                outcomes = list(pool.map(_run_shard, payloads))
        except BrokenProcessPool as error:
            raise ObservatoryError(
                "process-sharded sweep worker died; rerun with "
                "execution='thread' to debug in-process"
            ) from error
        merged_cells = [cell for outcome in outcomes for cell in outcome["cells"]]
        shard_stats = [o["stats"] for o in outcomes if o["stats"] is not None]
        stats = CacheStats.merged(shard_stats) if shard_stats else None
        pipelines = [o["pipeline"] for o in outcomes if o["pipeline"] is not None]
        pipeline = PipelineStats.merged(pipelines) if pipelines else None
        if pipeline is not None and not pipeline.batches:
            pipeline = None
        paddings = [o["padding"] for o in outcomes if o["padding"] is not None]
        padding = PaddingStats.merged(paddings) if paddings else None
        if padding is not None and not padding.padded_batches:
            padding = None
        transports = [
            o.get("transport") for o in outcomes if o.get("transport") is not None
        ]
        transport = TransportStats.merged(transports) if transports else None
        if transport is not None and not transport.chunks:
            transport = None
        return ShardOutcome(
            cells=merged_cells,
            workers=len(shards),
            cache_stats=stats,
            pipeline=pipeline,
            padding=padding,
            transport=transport,
        )
