"""Work-stealing sweep scheduler.

The static process engine (:mod:`repro.runtime.process_sweep`) cuts the
cache-aware cell order into contiguous shards and hands each worker one
fixed shard up front.  That bounds every sweep by its unluckiest shard:
a ``heterogeneous_context`` cell costs ~3x a shuffle cell, and a fleet
:class:`~repro.models.backends.remote.RemoteBackend` adds per-replica
latency variance on top.  This module replaces the one-shot
``pool.map`` with a dynamic scheduler:

- **Corpus-affinity work groups** — consecutive cells of the cache-aware
  order (:func:`repro.runtime.sweep.order_cells`) sharing a (model,
  corpus) pair form one :class:`WorkGroup`.  Groups, not cells, are the
  unit of dispatch and of stealing, so a stolen unit still lands with
  its warm-memory-tier locality intact.
- **LPT dispatch from cost priors** — a :class:`CostModel` (built-in
  property priors, or telemetry-measured per-cell phase seconds reloaded
  from a ``BENCH_*.json`` record) orders groups
  longest-processing-time-first, the classic makespan heuristic.
- **Persistent pulling workers** — spawned once, workers pull groups
  from the parent dispatcher until the queue drains, so a worker that
  lands short groups simply pulls more instead of idling behind a fixed
  shard.
- **Straggler re-dispatch** — when the queue is empty, an idle worker
  duplicates the oldest in-flight group; the first completed result
  wins and the loser is discarded.  Safe because every cell is a pure
  function of ``(seed, model, property, sizes)``: duplicates are
  bit-identical, so which copy wins is unobservable.
- **Crash salvage** — a dead worker loses only its in-flight group,
  which is re-queued on the survivors under a bounded retry budget;
  completed groups are never discarded.  A group that keeps killing
  workers is reported as poisoned, naming its cells.

Determinism contract: the scheduler changes *wall-clock*, never
*numbers*.  Results are bit-identical to ``execution="thread"`` and to
the retained static-shard engine for any worker count and any
steal/crash interleaving — ``tests/test_runtime_scheduler.py`` locks
this in against both oracles.

The dispatch loop (:class:`GroupScheduler`) is transport-agnostic: it
drives anything satisfying the small worker-handle protocol (``send`` /
``is_alive`` / ``join`` / ``terminate`` plus a fan-in result channel
with ``get(timeout)``).  Production workers are spawned processes
(:class:`WorkStealingSweep`) reporting over per-worker pipes — never a
shared queue, whose feeder-thread write lock a hard-dying worker can
leak, wedging every survivor (see :class:`_FanInResults`).  The
Hypothesis suite drives the same loop with in-process fake workers to
explore steal/crash interleavings cheaply.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import multiprocessing.connection
import os
import queue as queue_module
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CellPoisonedError,
    DeadlineExceededError,
    ObservatoryError,
    WorkerCrashError,
)
from repro.models.backends.padded import PaddingStats
from repro.models.backends.remote import TransportStats
from repro.runtime.cache import CacheStats
from repro.runtime.faults import Deadline
from repro.runtime.pipeline import PipelineStats
from repro.runtime.process_sweep import _DEFAULT_PROCESS_CAP, ShardOutcome
from repro.runtime.sweep import PROPERTY_CORPUS, CellFailure

# Telemetry-prior source for LPT ordering: path to a BENCH_*.json record
# written by benchmarks/bench_runtime_sweep.py --json (its cell_records
# carry measured per-cell seconds).  RuntimeConfig.cost_priors beats it.
COST_PRIORS_ENV = "REPRO_SWEEP_COST_PRIORS"

# Fault-injection hooks for the crash/straggler regression tests.  Read
# once per spawned worker; unset (the default) they are inert.
#   REPRO_SCHEDULER_TEST_CRASH="worker:<id>"        -> worker <id> dies
#       (os._exit) at the start of its first group.
#   REPRO_SCHEDULER_TEST_CRASH="cell:<model>/<prop>" -> any worker dies
#       when it reaches that cell (the poisoned-cell scenario).
#   REPRO_SCHEDULER_TEST_STALL="<id>:<seconds>"     -> worker <id>
#       sleeps before its first group (the straggler scenario).
CRASH_ENV = "REPRO_SCHEDULER_TEST_CRASH"
STALL_ENV = "REPRO_SCHEDULER_TEST_STALL"

# Relative cell costs when no telemetry record is available, normalized
# to a P1/P2 shuffle cell.  heterogeneous_context is the known ~3x hot
# class (paper Table 5 workload: per-cell context variants over sotab);
# perturbation runs the widest variant fan-out of the wikitables group.
DEFAULT_PROPERTY_COST = {
    "heterogeneous_context": 3.0,
    "perturbation_robustness": 1.6,
    "functional_dependencies": 1.3,
    "join_relationship": 1.2,
    "sample_fidelity": 1.1,
    "row_order_insignificance": 1.0,
    "column_order_insignificance": 1.0,
    "entity_stability": 1.0,
}
_FALLBACK_CELL_COST = 1.0


# ----------------------------------------------------------------------
# Work groups
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorkGroup:
    """One steal-unit: consecutive cells sharing a (model, corpus) pair."""

    group_id: int
    model_name: str
    corpus: str
    cells: Tuple[Tuple[str, str], ...]

    def __len__(self) -> int:
        return len(self.cells)


def build_groups(cells: Sequence[Tuple[str, str]]) -> List[WorkGroup]:
    """Cut the cache-aware cell order into corpus-affinity work groups.

    Consecutive cells with the same model *and* the same dataset corpus
    (:data:`~repro.runtime.sweep.PROPERTY_CORPUS`) join one group, so
    stealing a group moves the whole warm-locality run, never splits it.
    Concatenating the groups in ``group_id`` order reproduces the input
    order exactly — that is what keeps merged results deterministic.
    """
    groups: List[WorkGroup] = []
    current: List[Tuple[str, str]] = []
    current_key: Optional[Tuple[str, str]] = None
    for model_name, property_name in cells:
        key = (model_name, PROPERTY_CORPUS.get(property_name, property_name))
        if key != current_key and current:
            groups.append(
                WorkGroup(len(groups), current_key[0], current_key[1], tuple(current))
            )
            current = []
        current_key = key
        current.append((model_name, property_name))
    if current:
        groups.append(
            WorkGroup(len(groups), current_key[0], current_key[1], tuple(current))
        )
    return groups


# ----------------------------------------------------------------------
# Cost model (LPT dispatch order)
# ----------------------------------------------------------------------


@dataclasses.dataclass
class CostModel:
    """Per-cell cost priors feeding longest-processing-time-first dispatch.

    Estimates resolve most-specific-first: an exact ``(model, property)``
    prior (telemetry-measured seconds), then the property's mean over
    models, then the static :data:`DEFAULT_PROPERTY_COST` relative
    weight.  Units don't matter — only the induced order does.
    """

    cell_priors: Dict[Tuple[str, str], float] = dataclasses.field(default_factory=dict)
    property_priors: Dict[str, float] = dataclasses.field(default_factory=dict)
    source: str = "default"

    def estimate_cell(self, model_name: str, property_name: str) -> float:
        exact = self.cell_priors.get((model_name, property_name))
        if exact is not None:
            return exact
        by_property = self.property_priors.get(property_name)
        if by_property is not None:
            return by_property
        return DEFAULT_PROPERTY_COST.get(property_name, _FALLBACK_CELL_COST)

    def estimate_group(self, group: WorkGroup) -> float:
        return sum(self.estimate_cell(m, p) for m, p in group.cells)

    @classmethod
    def default(cls) -> "CostModel":
        return cls(source="default")

    @classmethod
    def from_records(
        cls, records: Sequence[Dict[str, object]], *, source: str = "records"
    ) -> "CostModel":
        """Priors from per-cell observability records (model/property/seconds)."""
        cell_priors: Dict[Tuple[str, str], float] = {}
        sums: Dict[str, List[float]] = {}
        for record in records:
            model = record.get("model")
            prop = record.get("property")
            seconds = record.get("seconds")
            if not model or not prop or not isinstance(seconds, (int, float)):
                continue
            cell_priors[(str(model), str(prop))] = float(seconds)
            sums.setdefault(str(prop), []).append(float(seconds))
        property_priors = {p: sum(v) / len(v) for p, v in sums.items()}
        return cls(cell_priors, property_priors, source=source)

    @classmethod
    def from_bench_json(cls, path: str) -> "CostModel":
        """Reload priors a benchmark run persisted (``--json BENCH_*.json``).

        Accepts the thread-mode record (top-level ``cell_records``) and
        the process/scheduler record (``scheduler.cell_records``).
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as error:
            raise ObservatoryError(
                f"cannot load sweep cost priors from {path!r}: {error}"
            ) from None
        records = payload.get("cell_records")
        if records is None:
            records = (payload.get("scheduler") or {}).get("cell_records")
        if not isinstance(records, list) or not records:
            raise ObservatoryError(
                f"no cell_records in cost-prior file {path!r}; expected a "
                "BENCH_*.json written by benchmarks/bench_runtime_sweep.py --json"
            )
        return cls.from_records(records, source=path)


def load_cost_model(path: Optional[str] = None) -> CostModel:
    """Resolve the dispatch cost model: explicit path > env > defaults."""
    path = path or os.environ.get(COST_PRIORS_ENV) or None
    if path:
        return CostModel.from_bench_json(path)
    return CostModel.default()


def lpt_order(groups: Sequence[WorkGroup], cost_model: CostModel) -> List[WorkGroup]:
    """Longest-processing-time-first dispatch order (stable on ties)."""
    return sorted(groups, key=lambda g: (-cost_model.estimate_group(g), g.group_id))


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------


@dataclasses.dataclass
class WorkerTelemetry:
    """Busy/idle/steal accounting for one scheduler worker."""

    worker_id: int
    groups: int = 0
    cells: int = 0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    steals: int = 0  # duplicated (stolen) groups this worker ran
    crashed: bool = False

    @property
    def busy_fraction(self) -> float:
        total = self.busy_seconds + self.idle_seconds
        return self.busy_seconds / total if total > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "groups": self.groups,
            "cells": self.cells,
            "busy_seconds": self.busy_seconds,
            "idle_seconds": self.idle_seconds,
            "busy_fraction": self.busy_fraction,
            "steals": self.steals,
            "crashed": self.crashed,
        }


@dataclasses.dataclass
class SchedulerTelemetry:
    """What the dispatch loop observed: per-worker counters + event log."""

    groups: int = 0
    workers: List[WorkerTelemetry] = dataclasses.field(default_factory=list)
    redispatches: int = 0  # straggler duplicates issued
    duplicates_discarded: int = 0  # losing duplicate results dropped
    crashes: int = 0  # workers that died
    salvaged_groups: int = 0  # crashed in-flight groups re-queued
    dispatch_log: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "groups": self.groups,
            "workers": [w.to_dict() for w in self.workers],
            "redispatches": self.redispatches,
            "duplicates_discarded": self.duplicates_discarded,
            "crashes": self.crashes,
            "salvaged_groups": self.salvaged_groups,
            "dispatch_log": list(self.dispatch_log),
        }


@dataclasses.dataclass
class SchedulerRun:
    """Outcome of one :meth:`GroupScheduler.run`.

    ``payloads`` maps ``group_id`` to the *winning* worker payload (first
    completion under duplication); ``snapshots`` keeps each worker's
    latest cumulative payload so stats merging survives a worker that was
    terminated mid-duplicate.  ``failures`` maps ``group_id`` to the
    typed error that degraded it (poisoned group, expired deadline) —
    populated only under ``on_error="degrade"``; ``"abort"`` raises
    instead.
    """

    payloads: Dict[int, object]
    snapshots: Dict[int, object]
    telemetry: SchedulerTelemetry
    failures: Dict[int, ObservatoryError] = dataclasses.field(default_factory=dict)


# ----------------------------------------------------------------------
# Dispatch loop
# ----------------------------------------------------------------------


class GroupScheduler:
    """Transport-agnostic work-stealing dispatch loop.

    Drives worker *handles* — anything with ``worker_id``, ``send(msg)``,
    ``is_alive()``, ``join(timeout)``, and ``terminate()`` — plus one
    fan-in result channel (``get(timeout)`` -> message, raising
    :class:`queue.Empty` on timeout).  The wire protocol:

    - worker -> parent: ``("ready", worker_id)`` once its state is built;
      ``("done", worker_id, group_id, busy_seconds, payload)`` per group.
    - parent -> worker: ``("run", group_id, cells, duplicate)`` and
      ``("stop",)``.

    A worker that stops being alive without having been sent ``stop`` is
    a crash: its in-flight group re-queues (bounded by ``max_retries``
    extra attempts) unless another worker is already running a duplicate
    of it.  Workers with nothing to pull stay parked (not stopped) until
    every group completes, so a late crash still finds survivors.

    Fault handling: under ``on_error="abort"`` (default) a poisoned
    group or expired ``deadline`` raises the typed error; under
    ``"degrade"`` the group is recorded on ``SchedulerRun.failures`` and
    the loop keeps dispatching the rest.  Every worker dying is total
    failure either way (:class:`~repro.errors.WorkerCrashError`) —
    nothing could make progress, so the caller's resume path is the
    recovery, not a degraded result.  ``on_group_done`` fires with
    ``(group, payload)`` the moment a group's winning payload lands —
    the write-ahead journal's incremental-persistence hook.
    """

    def __init__(
        self,
        groups: Sequence[WorkGroup],
        *,
        max_retries: int = 2,
        max_duplicates: int = 1,
        poll_interval: float = 0.05,
        join_timeout: float = 1.0,
        steal_min_age: float = 0.5,
        steal_age_factor: float = 1.5,
        on_error: str = "abort",
        deadline: Optional[Deadline] = None,
        on_group_done=None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_duplicates < 0:
            raise ValueError("max_duplicates must be >= 0")
        if on_error not in ("abort", "degrade"):
            raise ValueError(f"on_error must be 'abort' or 'degrade', got {on_error!r}")
        self.groups = list(groups)
        self.max_retries = max_retries
        self.max_duplicates = max_duplicates
        self.poll_interval = poll_interval
        self.join_timeout = join_timeout
        self.on_error = on_error
        self.deadline = deadline if deadline is not None else Deadline(None)
        self.on_group_done = on_group_done
        # A group only counts as a straggler — and becomes stealable —
        # once it has been in flight longer than both the absolute floor
        # and ``steal_age_factor`` x the mean completed-group duration.
        # Duplicating healthy tail groups the instant the queue drains
        # would burn a core racing a worker that is about to finish.
        self.steal_min_age = steal_min_age
        self.steal_age_factor = steal_age_factor

    def run(self, handles: Sequence[object], results) -> SchedulerRun:
        if not self.groups:
            return SchedulerRun({}, {}, SchedulerTelemetry())
        if not handles:
            raise ObservatoryError("scheduler needs at least one worker")
        telemetry = SchedulerTelemetry(groups=len(self.groups))
        worker_stats = {h.worker_id: WorkerTelemetry(h.worker_id) for h in handles}
        telemetry.workers = [worker_stats[h.worker_id] for h in handles]

        pending = deque(self.groups)
        live = {h.worker_id: h for h in handles}
        idle: set = set()  # ready workers with nothing to pull right now
        ready_at: Dict[int, float] = {}
        finished_at: Dict[int, float] = {}
        # worker_id -> (group, dispatched_at, duplicate, log_entry)
        in_flight: Dict[int, Tuple[WorkGroup, float, bool, Dict[str, object]]] = {}
        payloads: Dict[int, object] = {}
        snapshots: Dict[int, object] = {}
        failed: Dict[int, ObservatoryError] = {}  # degraded groups
        attempts = {g.group_id: 0 for g in self.groups}  # crash retries used
        outstanding_dups = {g.group_id: 0 for g in self.groups}
        completed_seconds: List[float] = []  # feeds the straggler threshold

        def settled() -> int:
            return len(payloads) + len(failed)

        def runners_of(group_id: int) -> List[int]:
            return [
                wid for wid, (g, _, _, _) in in_flight.items() if g.group_id == group_id
            ]

        def dispatch(worker_id: int) -> None:
            """Hand ``worker_id`` its next group, stealing if the queue is dry."""
            duplicate = False
            if pending:
                group = pending.popleft()
            else:
                group = self._steal_victim(
                    in_flight, payloads, outstanding_dups, worker_id, completed_seconds
                )
                if group is None:
                    idle.add(worker_id)
                    return
                duplicate = True
                outstanding_dups[group.group_id] += 1
                telemetry.redispatches += 1
                worker_stats[worker_id].steals += 1
            entry = {
                "group": group.group_id,
                "worker": worker_id,
                "model": group.model_name,
                "corpus": group.corpus,
                "cells": len(group.cells),
                "duplicate": duplicate,
                "outcome": "in_flight",
                "seconds": None,
            }
            telemetry.dispatch_log.append(entry)
            in_flight[worker_id] = (group, time.perf_counter(), duplicate, entry)
            live[worker_id].send(("run", group.group_id, group.cells, duplicate))

        def wake_idle() -> None:
            while pending and idle:
                worker_id = idle.pop()
                dispatch(worker_id)

        def retry_idle() -> None:
            """Parked workers re-poll each tick: a salvaged group may be
            pending, or an in-flight group may have aged into a straggler."""
            for worker_id in list(idle):
                idle.discard(worker_id)
                dispatch(worker_id)  # re-parks itself if still nothing

        def reap_crashes() -> None:
            for worker_id, handle in list(live.items()):
                if handle.is_alive():
                    continue
                del live[worker_id]
                idle.discard(worker_id)
                finished_at[worker_id] = time.perf_counter()
                worker_stats[worker_id].crashed = True
                telemetry.crashes += 1
                entry = in_flight.pop(worker_id, None)
                if entry is not None:
                    group, _, duplicate, log_entry = entry
                    log_entry["outcome"] = "crashed"
                    if duplicate:
                        outstanding_dups[group.group_id] -= 1
                    if group.group_id not in payloads and not runners_of(group.group_id):
                        attempts[group.group_id] += 1
                        if attempts[group.group_id] > self.max_retries:
                            error = CellPoisonedError(
                                f"sweep group {group.group_id} poisoned: crashed "
                                f"{attempts[group.group_id]} worker(s) (retry "
                                f"budget {self.max_retries}); cells "
                                + ", ".join(f"{m}/{p}" for m, p in group.cells)
                            )
                            if self.on_error == "degrade":
                                # The group becomes a named failure; the
                                # rest of the sweep keeps running.
                                log_entry["outcome"] = "poisoned"
                                failed[group.group_id] = error
                            else:
                                self._shutdown(live, in_flight, telemetry)
                                raise error
                        else:
                            telemetry.salvaged_groups += 1
                            # Front of the queue: a salvaged group is
                            # already late, so it outranks everything
                            # still pending.
                            pending.appendleft(group)
                if not live and settled() < len(self.groups):
                    missing = [
                        g
                        for g in self.groups
                        if g.group_id not in payloads and g.group_id not in failed
                    ]
                    # Total failure even under degrade: with no workers
                    # left nothing can progress, and the caller's
                    # journal+resume path is the recovery.
                    raise WorkerCrashError(
                        "every sweep worker died; "
                        f"{len(payloads)}/{len(self.groups)} groups were "
                        "salvaged before the last crash; unfinished cells: "
                        + ", ".join(
                            f"{m}/{p}" for g in missing for m, p in g.cells
                        )
                    )
                wake_idle()

        def record_win(group_id: int, payload: object) -> None:
            payloads[group_id] = payload
            if self.on_group_done is not None:
                group = next(g for g in self.groups if g.group_id == group_id)
                self.on_group_done(group, payload)

        try:
            while settled() < len(self.groups):
                if self.deadline.expired():
                    error = DeadlineExceededError(
                        "fault-policy deadline exceeded with "
                        f"{len(self.groups) - settled()}/{len(self.groups)} "
                        "sweep groups unfinished"
                    )
                    if self.on_error != "degrade":
                        raise error  # the finally clause shuts workers down
                    for group in self.groups:
                        if group.group_id not in payloads and group.group_id not in failed:
                            failed[group.group_id] = error
                    break
                try:
                    message = results.get(timeout=self.poll_interval)
                except queue_module.Empty:
                    reap_crashes()
                    retry_idle()
                    continue
                kind = message[0]
                worker_id = message[1]
                if worker_id not in live:
                    # Late message from a worker already reaped/terminated.
                    continue
                if kind == "ready":
                    ready_at[worker_id] = time.perf_counter()
                    dispatch(worker_id)
                elif kind == "done":
                    _, worker_id, group_id, busy_seconds, payload = message
                    entry = in_flight.pop(worker_id, None)
                    stats = worker_stats[worker_id]
                    stats.groups += 1
                    stats.busy_seconds += busy_seconds
                    snapshots[worker_id] = payload
                    if entry is not None:
                        group, dispatched_at, duplicate, log_entry = entry
                        stats.cells += len(group.cells)
                        log_entry["seconds"] = time.perf_counter() - dispatched_at
                        completed_seconds.append(log_entry["seconds"])
                        if duplicate:
                            outstanding_dups[group_id] -= 1
                        if group_id in payloads:
                            telemetry.duplicates_discarded += 1
                            log_entry["outcome"] = "discarded"
                        else:
                            record_win(group_id, payload)
                            log_entry["outcome"] = "won"
                    elif group_id not in payloads:
                        # Defensive: a result without a tracked assignment
                        # still wins if the group is open (first-wins rule).
                        record_win(group_id, payload)
                    dispatch(worker_id)
        finally:
            self._shutdown(live, in_flight, telemetry)
        end = time.perf_counter()
        for worker_id, stats in worker_stats.items():
            started = ready_at.get(worker_id)
            if started is not None:
                wall = finished_at.get(worker_id, end) - started
                stats.idle_seconds = max(0.0, wall - stats.busy_seconds)
        return SchedulerRun(payloads, snapshots, telemetry, failed)

    def _steal_victim(
        self,
        in_flight: Dict[int, Tuple[WorkGroup, float, bool, Dict[str, object]]],
        payloads: Dict[int, object],
        outstanding_dups: Dict[int, int],
        thief_id: int,
        completed_seconds: Sequence[float],
    ) -> Optional[WorkGroup]:
        """Oldest in-flight group that has aged into a straggler.

        Eligibility requires the group to have been in flight longer
        than ``max(steal_min_age, steal_age_factor * mean completed
        duration)`` — an idle worker waits for evidence of straggling
        rather than instantly racing a healthy tail group.
        """
        threshold = self.steal_min_age
        if completed_seconds:
            mean = sum(completed_seconds) / len(completed_seconds)
            threshold = max(threshold, self.steal_age_factor * mean)
        now = time.perf_counter()
        candidates = [
            (dispatched_at, group)
            for wid, (group, dispatched_at, _, _) in in_flight.items()
            if wid != thief_id
            and group.group_id not in payloads
            and outstanding_dups[group.group_id] < self.max_duplicates
            and now - dispatched_at >= threshold
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda pair: pair[0])[1]

    def _shutdown(self, live, in_flight, telemetry) -> None:
        """Stop every live worker; terminate any that outlives the join.

        A worker still grinding a duplicated group whose result already
        arrived from elsewhere is abandoned (terminated if it outlives
        the join): its output can only be a bit-identical copy nobody is
        waiting for.
        """
        for entry in in_flight.values():
            if entry[3]["outcome"] == "in_flight":
                entry[3]["outcome"] = "abandoned"
        for handle in live.values():
            try:
                handle.send(("stop",))
            except (OSError, ValueError):
                pass  # its queue died with it
        for handle in live.values():
            handle.join(self.join_timeout)
            if handle.is_alive():
                handle.terminate()
                handle.join(self.join_timeout)


# ----------------------------------------------------------------------
# Process transport
# ----------------------------------------------------------------------


def _parse_crash_spec(spec: str) -> Tuple[Optional[int], Optional[Tuple[str, str]]]:
    """``worker:<id>`` / ``cell:<model>/<prop>`` -> (worker_id, cell)."""
    if spec.startswith("worker:"):
        return int(spec.split(":", 1)[1]), None
    if spec.startswith("cell:"):
        model, prop = spec.split(":", 1)[1].split("/", 1)
        return None, (model, prop)
    return None, None


def _worker_main(worker_id: int, payload: Dict[str, object], inbox, results) -> None:
    """Spawn-safe persistent worker: rebuild state once, pull groups forever.

    Same isolation contract as the static engine's ``_run_shard``: the
    payload is plain configuration (seed, sizes, runtime), the worker
    rebuilds its own Observatory/models/corpora, and only configuration
    crosses in / results cross out.  ``results`` is this worker's own
    pipe connection, written from the main thread — a crash here can
    tear this channel but can never block a sibling's (see
    :class:`_FanInResults`).  Imports live inside the function so the
    spawned interpreter resolves them by qualified name without
    dragging parent-module cycles along.
    """
    import repro.telemetry as telemetry
    from repro.core.framework import Observatory
    from repro.errors import CellExecutionError, DeadlineExceededError, ObservatoryError
    from repro.runtime.faults import Deadline
    from repro.runtime.sweep import CellFailure, SweepCell

    crash_worker, crash_cell = _parse_crash_spec(os.environ.get(CRASH_ENV, ""))
    stall_spec = os.environ.get(STALL_ENV, "")
    stall_seconds = 0.0
    if stall_spec:
        stall_id, seconds = stall_spec.split(":", 1)
        if int(stall_id) == worker_id:
            stall_seconds = float(seconds)

    observatory = Observatory(
        seed=payload["seed"],
        sizes=payload["sizes"],
        runtime=payload["runtime"],
    )
    on_error = payload.get("on_error", "abort")
    # The parent's monotonic countdown can't cross the spawn boundary;
    # it ships as an absolute epoch and restarts here.
    deadline = Deadline.from_epoch(payload.get("deadline_epoch"))
    if hasattr(observatory, "apply_deadline"):
        observatory.apply_deadline(deadline)
    results.send(("ready", worker_id))
    first_group = True
    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        _, group_id, cells, _duplicate = message
        if first_group:
            if crash_worker == worker_id:
                os._exit(3)  # hard death: no cleanup, no result
            if stall_seconds:
                time.sleep(stall_seconds)  # injected straggler
        started = time.perf_counter()
        out_cells = []
        out_failures = []
        for model_name, property_name in cells:
            if crash_cell == (model_name, property_name):
                os._exit(3)  # poisoned cell: kills whoever runs it
            if on_error == "degrade" and deadline.expired():
                # Budget spent mid-group: remaining cells degrade to
                # named failures instead of burning more wall clock.
                out_failures.append(
                    CellFailure(
                        model_name,
                        property_name,
                        DeadlineExceededError.__name__,
                        "fault-policy deadline exceeded before "
                        f"cell {model_name}/{property_name}",
                    )
                )
                continue
            timings = telemetry.start_cell()
            t0 = time.perf_counter()
            try:
                result = observatory.characterize(model_name, property_name)
            except Exception as exc:
                if on_error != "degrade":
                    raise  # the worker dies; parent salvage takes over
                if not isinstance(exc, ObservatoryError):
                    exc = CellExecutionError(model_name, property_name, str(exc))
                # cause stays None: a live traceback may not survive
                # pickling back through the result pipe.
                out_failures.append(
                    CellFailure(
                        model_name, property_name, type(exc).__name__, str(exc)
                    )
                )
                continue
            finally:
                telemetry.stop_cell()
            out_cells.append(
                SweepCell(
                    model_name,
                    property_name,
                    result,
                    time.perf_counter() - t0,
                    serialize_seconds=timings.serialize_seconds,
                    encode_seconds=timings.encode_seconds,
                    aggregate_seconds=timings.aggregate_seconds,
                )
            )
        busy = time.perf_counter() - started
        # Stats ride every result as *cumulative* snapshots: the parent
        # keeps the latest per worker, so a worker later terminated
        # mid-duplicate forfeits only that duplicate's deltas.
        results.send(
            (
                "done",
                worker_id,
                group_id,
                busy,
                {
                    "cells": out_cells,
                    "failures": out_failures,
                    "stats": (
                        observatory.cache.stats
                        if observatory.cache is not None
                        else None
                    ),
                    "pipeline": observatory.pipeline_stats(),
                    "padding": observatory.padding_stats(),
                    "transport": observatory.transport_stats(),
                },
            )
        )
        first_group = False


class _FanInResults:
    """Single-reader fan-in over per-worker result pipes.

    One results queue shared by every worker is the classic hard-crash
    hazard: ``multiprocessing.Queue`` sends through a feeder thread that
    takes an interprocess write lock, and a worker dying abruptly
    (``os._exit``, segfault, OOM kill) between acquiring and releasing
    it leaves the semaphore held forever — every *other* worker's sends
    then wedge silently and the sweep hangs.  Per-worker pipes have
    exactly one writer each, written from the worker's main thread, so
    a crash can tear at most the crasher's own channel; the parent sees
    EOF there and the scheduler's is_alive polling salvages as usual.

    Presents the one-method channel contract :class:`GroupScheduler`
    consumes: ``get(timeout)`` returning the next message or raising
    :class:`queue.Empty`.
    """

    def __init__(self):
        self._connections: List[object] = []
        self._buffer: deque = deque()

    def register(self, connection) -> None:
        self._connections.append(connection)

    def get(self, timeout: float):
        if self._buffer:
            return self._buffer.popleft()
        if not self._connections:
            time.sleep(timeout)
            raise queue_module.Empty
        ready = multiprocessing.connection.wait(self._connections, timeout)
        for connection in ready:
            try:
                self._buffer.append(connection.recv())
            except (EOFError, OSError):
                # Writer died (possibly mid-frame): drop the torn
                # channel; reap_crashes handles the worker itself.
                self._connections.remove(connection)
        if not self._buffer:
            raise queue_module.Empty
        return self._buffer.popleft()


class _ProcessWorkerHandle:
    """Worker-handle protocol over one spawned process + its inbox queue."""

    def __init__(self, worker_id: int, process, inbox):
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox

    def send(self, message) -> None:
        self.inbox.put(message)

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout)

    def terminate(self) -> None:
        self.process.terminate()


class WorkStealingSweep:
    """Run sweep cells through the work-stealing scheduler on spawned workers.

    The drop-in successor to
    :class:`~repro.runtime.process_sweep.ProcessShardedSweep` (which is
    retained as the static-shard oracle): same isolation contract, same
    bit-identical results, but dispatch is dynamic — LPT-ordered
    corpus-affinity groups pulled by persistent workers, with straggler
    re-dispatch and crash salvage.

    Args:
        observatory: the parent Observatory; only ``seed``/``sizes``/
            ``runtime`` travel to workers.
        max_workers: worker-process count; defaults to
            ``min(4, cpu_count, n_groups)`` and is always capped at the
            group count (an extra worker could never receive work).
        cost_model: LPT dispatch priors; defaults to
            :func:`load_cost_model` (``RuntimeConfig.cost_priors``, then
            ``$REPRO_SWEEP_COST_PRIORS``, then built-in property priors).
        max_retries: extra attempts a crashed group gets before the sweep
            fails naming its cells.
        max_duplicates: straggler copies allowed in flight per group.
        steal_min_age / steal_age_factor: straggler threshold — see
            :class:`GroupScheduler`.
        on_error: ``"abort"`` raises typed errors; ``"degrade"`` turns
            poisoned groups / per-cell failures / expired deadlines into
            :class:`~repro.runtime.sweep.CellFailure` records on the
            returned :class:`ShardOutcome`.
        deadline: the sweep's live wall-clock budget (also shipped to
            workers as an absolute epoch).
        on_group_done: called with the winning group's ``List[SweepCell]``
            the moment it lands — the journal's persistence hook.
    """

    def __init__(
        self,
        observatory,
        *,
        max_workers: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        max_retries: int = 2,
        max_duplicates: int = 1,
        steal_min_age: float = 0.5,
        steal_age_factor: float = 1.5,
        on_error: str = "abort",
        deadline: Optional[Deadline] = None,
        on_group_done=None,
    ):
        self.observatory = observatory
        self.max_workers = max_workers
        self.cost_model = cost_model
        self.max_retries = max_retries
        self.max_duplicates = max_duplicates
        self.steal_min_age = steal_min_age
        self.steal_age_factor = steal_age_factor
        self.on_error = on_error
        self.deadline = deadline if deadline is not None else Deadline(None)
        self.on_group_done = on_group_done

    def _worker_runtime(self):
        """Workers run their groups serially; never recurse the engine."""
        return dataclasses.replace(
            self.observatory.runtime, execution="thread", max_workers=1
        )

    def run(self, cells: Sequence[Tuple[str, str]]) -> ShardOutcome:
        """Execute ``cells`` (already cache-aware-ordered); see class doc."""
        groups = build_groups(cells)
        cost_model = self.cost_model or load_cost_model(
            getattr(self.observatory.runtime, "cost_priors", None)
        )
        ordered = lpt_order(groups, cost_model)
        workers = self.max_workers or min(
            _DEFAULT_PROCESS_CAP, os.cpu_count() or 1, max(1, len(groups))
        )
        workers = max(1, min(workers, len(groups)))
        payload = {
            "seed": self.observatory.seed,
            "sizes": self.observatory.sizes,
            "runtime": self._worker_runtime(),
            "on_error": self.on_error,
            "deadline_epoch": self.deadline.epoch(),
        }
        # spawn, not fork — same reasoning as the static engine: workers
        # must rebuild from configuration, so pickling bugs surface and
        # non-POSIX hosts behave identically.
        context = multiprocessing.get_context("spawn")
        # One result pipe per worker (not a shared Queue): a hard-dying
        # worker must not be able to wedge the survivors' result sends —
        # see _FanInResults.
        results = _FanInResults()
        handles: List[_ProcessWorkerHandle] = []
        try:
            for worker_id in range(workers):
                inbox = context.Queue()
                reader, writer = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker_main,
                    args=(worker_id, payload, inbox, writer),
                    daemon=True,
                )
                process.start()
                # Drop the parent's copy of the write end so a dead
                # worker's channel reads as EOF instead of blocking.
                writer.close()
                results.register(reader)
                handles.append(_ProcessWorkerHandle(worker_id, process, inbox))
            notify = None
            if self.on_group_done is not None:
                notify = lambda group, payload: self.on_group_done(  # noqa: E731
                    list(payload["cells"])
                )
            scheduler = GroupScheduler(
                ordered,
                max_retries=self.max_retries,
                max_duplicates=self.max_duplicates,
                steal_min_age=self.steal_min_age,
                steal_age_factor=self.steal_age_factor,
                on_error=self.on_error,
                deadline=self.deadline,
                on_group_done=notify,
            )
            run = scheduler.run(handles, results)
        finally:
            for handle in handles:
                if handle.is_alive():
                    handle.terminate()
                handle.join(1.0)
        return self._merge(groups, run, len(handles))

    def _merge(
        self, groups: List[WorkGroup], run: SchedulerRun, workers: int
    ) -> ShardOutcome:
        """Winner payloads -> ShardOutcome, in original (cache-aware) order."""
        merged_cells: List[object] = []
        failures: List[CellFailure] = []
        for group in groups:
            payload = run.payloads.get(group.group_id)
            if payload is not None:
                merged_cells.extend(payload["cells"])
                failures.extend(payload.get("failures") or [])
            else:
                # The whole group degraded (poisoned / deadline): every
                # cell becomes a named failure carrying the group error.
                error = run.failures.get(group.group_id)
                if error is not None:
                    failures.extend(
                        CellFailure.from_exception(m, p, error)
                        for m, p in group.cells
                    )
        snapshots = list(run.snapshots.values())
        shard_stats = [s["stats"] for s in snapshots if s["stats"] is not None]
        stats = CacheStats.merged(shard_stats) if shard_stats else None
        pipelines = [s["pipeline"] for s in snapshots if s["pipeline"] is not None]
        pipeline = PipelineStats.merged(pipelines) if pipelines else None
        if pipeline is not None and not pipeline.batches:
            pipeline = None
        paddings = [s["padding"] for s in snapshots if s["padding"] is not None]
        padding = PaddingStats.merged(paddings) if paddings else None
        if padding is not None and not padding.padded_batches:
            padding = None
        transports = [s["transport"] for s in snapshots if s["transport"] is not None]
        transport = TransportStats.merged(transports) if transports else None
        if transport is not None and not transport.chunks:
            transport = None
        return ShardOutcome(
            cells=merged_cells,
            workers=workers,
            cache_stats=stats,
            pipeline=pipeline,
            padding=padding,
            transport=transport,
            scheduler=run.telemetry,
            failures=failures,
        )
