"""Unified fault policy: one deadline and one set of retry/backoff knobs.

Before this module, fault handling was fragmented across three private
knob sets: the work-stealing scheduler's crash-salvage ``max_retries``,
the remote transport's ``retries``/backoff envelope, and the disk tiers'
``lock_timeout``/``stale_lock_age`` patience.  None of them shared a
budget, so a sweep configured to "give up after a minute" could not
actually give up — each layer would happily keep retrying inside its own
silo.

:class:`FaultPolicy` is the single typed source of those knobs, threaded
from :class:`~repro.runtime.planner.RuntimeConfig` through
``Observatory.sweep`` into every layer; :class:`Deadline` is the
live countdown a sweep starts from ``FaultPolicy.deadline`` and hands
down so the *same* wall clock bounds scheduler dispatch, transport
attempts and backoff sleeps, and disk-lock waits.  Layers treat an
expired deadline according to their contract: the sweep loop and the
transport raise :class:`~repro.errors.DeadlineExceededError` (degradable
to a :class:`~repro.runtime.sweep.CellFailure` under
``on_error="degrade"``), while the best-effort disk tier merely stops
waiting on locks — a cache must degrade to a miss, never to an error.

Deadlines cross process boundaries as absolute ``time.time`` epochs
(monotonic clocks are per-process): ``Deadline.epoch()`` ships on a
worker payload and ``Deadline.from_epoch`` rebuilds the countdown on the
other side, so a sweep's budget keeps counting down inside its workers.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

from repro.errors import DeadlineExceededError

# Defaults mirror the per-layer values they replace, so an unconfigured
# FaultPolicy() changes nothing about existing behavior.
DEFAULT_SCHEDULER_RETRIES = 2
DEFAULT_LOCK_TIMEOUT = 5.0
DEFAULT_STALE_LOCK_AGE = 10.0
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """How a sweep spends its failure budget, in one typed object.

    Attributes:
        deadline: wall-clock seconds the whole sweep may take; ``None``
            means unbounded.  The countdown starts when the sweep starts
            and propagates into scheduler dispatch, transport attempts,
            and disk-lock waits — one clock, not three.
        scheduler_retries: extra attempts a crashed work group gets
            before it is declared poisoned (the scheduler's crash-salvage
            budget).
        transport_retries: overrides
            :attr:`~repro.models.backends.transport.TransportConfig.retries`
            when set — the remote backend's transient-fault budget.
            ``None`` keeps the transport's own value.
        lock_timeout: seconds to wait for a disk-tier ``index.lock``
            before assuming its holder crashed and reclaiming it
            (:class:`~repro.runtime.disk.DiskTier` and
            :class:`~repro.index.store.ShardStore`).
        stale_lock_age: a lock file older than this is reclaimed
            immediately.
        backoff_base / backoff_cap: exponential-backoff envelope for
            retried transport requests (first delay / ceiling).
    """

    deadline: Optional[float] = None
    scheduler_retries: int = DEFAULT_SCHEDULER_RETRIES
    transport_retries: Optional[int] = None
    lock_timeout: float = DEFAULT_LOCK_TIMEOUT
    stale_lock_age: float = DEFAULT_STALE_LOCK_AGE
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_cap: float = DEFAULT_BACKOFF_CAP

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive seconds or None")
        if self.scheduler_retries < 0:
            raise ValueError("scheduler_retries must be >= 0")
        if self.transport_retries is not None and self.transport_retries < 0:
            raise ValueError("transport_retries must be >= 0 or None")
        if self.lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive")
        if self.stale_lock_age <= 0:
            raise ValueError("stale_lock_age must be positive")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")

    def start_deadline(self) -> "Deadline":
        """A live countdown for one sweep (unbounded when no deadline)."""
        return Deadline.start(self.deadline)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "deadline": self.deadline,
            "scheduler_retries": self.scheduler_retries,
            "transport_retries": self.transport_retries,
            "lock_timeout": self.lock_timeout,
            "stale_lock_age": self.stale_lock_age,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, object]) -> "FaultPolicy":
        if not isinstance(payload, dict):
            raise ValueError(f"FaultPolicy payload must be a dict, got {payload!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPolicy keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**payload)

    def describe(self) -> str:
        deadline = "unbounded" if self.deadline is None else f"{self.deadline:g}s"
        return (
            f"deadline {deadline}, scheduler retries {self.scheduler_retries}, "
            f"transport retries "
            f"{'transport default' if self.transport_retries is None else self.transport_retries}, "
            f"lock timeout {self.lock_timeout:g}s, "
            f"backoff {self.backoff_base:g}s..{self.backoff_cap:g}s"
        )


class Deadline:
    """A started wall-clock budget that every layer can consult.

    ``None`` budget means "never expires": every method degenerates to a
    no-op, so call sites never special-case the unbounded sweep.  Within
    a process the countdown runs on the monotonic clock; ``epoch()`` /
    ``from_epoch`` translate to/from absolute ``time.time`` so the same
    budget can ship to spawned workers.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: Optional[float], *, clock=time.monotonic):
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def start(cls, seconds: Optional[float], *, clock=time.monotonic) -> "Deadline":
        """Begin counting ``seconds`` down from now (``None`` = never)."""
        if seconds is None:
            return cls(None, clock=clock)
        return cls(clock() + seconds, clock=clock)

    @classmethod
    def from_epoch(cls, epoch: Optional[float]) -> "Deadline":
        """Rebuild a countdown from an absolute ``time.time`` deadline."""
        if epoch is None:
            return cls(None)
        return cls.start(epoch - time.time())

    def epoch(self) -> Optional[float]:
        """The deadline as an absolute ``time.time`` (for worker payloads)."""
        remaining = self.remaining()
        if remaining is None:
            return None
        return time.time() + remaining

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0); ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def bound(self, timeout: float) -> float:
        """``timeout`` capped by the remaining budget (never negative)."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        return max(0.0, min(timeout, remaining))

    def check(self, what: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"fault-policy deadline exceeded before {what}"
            )

    def __repr__(self) -> str:
        remaining = self.remaining()
        if remaining is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={remaining:.3f}s)"


#: A shared never-expiring deadline for call sites that want to treat
#: "no deadline configured" uniformly.
UNBOUNDED = Deadline(None)
