"""Batched embedding planner.

:class:`EmbeddingExecutor` sits between property runners and an
:class:`~repro.models.base.EmbeddingModel`.  Runners declare *what* they
need — "column/row/table embeddings of these 200 variant tables", "these
400 standalone value columns" — and the executor decides *how* to get it:

1. **Deduplicate** requests by content fingerprint (shuffle sweeps and
   context settings re-embed identical tables constantly).
2. **Probe the cache** keyed ``(model, level, fingerprint)`` so variants
   shared across properties (e.g. the identity permutation P1 and P2 both
   embed) are computed once per model.
3. **Bundle levels**: one encoder forward pass yields column, row, *and*
   table embeddings of a table (the legacy path ran three).
4. **Batch the encoder**: misses are driven through
   ``EmbeddingModel.embed_levels_batch`` in configurable batches rather
   than one-table-at-a-time loops.

The executor also duck-types the single-call ``embed_*`` surface of
:class:`EmbeddingModel` (with caching), so any code written against a raw
model — entity catalogs, downstream harnesses, custom properties — works
unchanged against an executor.

A ``naive=True`` executor disables every optimization and reproduces the
pre-runtime compute profile (separate encode per level, no dedup, no
cache); it is the baseline ``benchmarks/bench_runtime_sweep.py`` measures
against.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.core.levels import EmbeddingLevel
from repro.errors import ModelError
from repro.models.backends import (
    DEFAULT_TIER_WIDTH,
    EncoderBackend,
    LocalBackend,
    PaddedBackend,
    TransportConfig,
    available_backends,
)
from repro.relational.table import Table
from repro.runtime.cache import CacheStats, EmbeddingCache
from repro.runtime.faults import FaultPolicy
from repro.runtime.fingerprint import (
    coords_fingerprint,
    table_fingerprint,
    value_column_fingerprint,
)
from repro.runtime.pipeline import PipelineStats, encode_loop

# Levels the bundle path covers; CELL and ENTITY requests carry extra
# arguments and go through their dedicated cached entry points.
BUNDLE_LEVELS = (EmbeddingLevel.COLUMN, EmbeddingLevel.ROW, EmbeddingLevel.TABLE)


@dataclasses.dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the characterization runtime.

    Attributes:
        enabled: when False the Observatory runs every embedding request
            through the legacy one-call-at-a-time path (no cache, no
            batching) — the baseline configuration for benchmarks.
        batch_size: tables per encoder batch in ``embed_levels_batch``.
        cache_entries: memory-tier LRU capacity of the shared cache.
        disk_cache_dir: optional directory for the persistent cache tier.
        cache_max_bytes: byte budget of the disk tier (``None`` =
            unbounded); size eviction is least-recently-used.
        cache_max_age: seconds after which disk entries expire and are
            reclaimed before any younger entry (``None`` = never).
        max_workers: default worker count for ``Observatory.sweep``
            (``None`` defers to the ``REPRO_SWEEP_WORKERS`` environment
            variable, falling back to one worker per unit of work,
            capped at 4).
        execution: default sweep execution mode — ``"thread"`` (one pool of
            threads sharing this process's cache) or ``"process"``
            (spawned worker processes pulling corpus-affinity work groups
            from the work-stealing scheduler, sharing only the disk
            tier).  ``None`` defers to the ``REPRO_SWEEP_EXECUTION``
            environment variable, falling back to ``"thread"``.
        cost_priors: optional path to a ``BENCH_*.json`` record (written
            by ``benchmarks/bench_runtime_sweep.py --json``) whose
            measured per-cell seconds seed the work-stealing scheduler's
            longest-processing-time-first dispatch order.  ``None``
            defers to ``$REPRO_SWEEP_COST_PRIORS``, falling back to the
            built-in property priors.  Priors only reorder dispatch —
            results are bit-identical for any priors.
        exact: numerics mode.  ``True`` (default) keeps every embedding
            bit-identical to single-sequence encoding (same-length
            batching only).  ``False`` opts into the padded backend:
            heterogeneous-length sequences are batched inside tolerance
            tiers, within the documented per-element
            :data:`~repro.models.backends.PADDED_TOLERANCE` of exact.
        backend: explicit encoder backend name (``"local"``/``"padded"``/
            ``"remote"`` or anything registered); ``None`` derives it from
            ``exact``.  Naming a non-exact backend with ``exact=True`` is
            rejected — exactness is a promise, not a preference.
        padding_tier: tier width in tokens for the padded backend (also
            forwarded to the service when the remote backend runs in
            padded mode).
        transport: the remote encoder fleet's
            :class:`~repro.models.backends.TransportConfig` — replica
            URLs, timeout/retries, compression, state dtype, hedging, and
            pool size in one typed object (``backend="remote"``).  A
            plain dict in :meth:`TransportConfig.to_jsonable` form is
            accepted and coerced.  ``None`` with ``backend="remote"``
            falls back to ``$REPRO_REMOTE_URL``.
        remote_url / remote_timeout / remote_retries: **deprecated** flat
            forms of ``transport`` — still honored (they fold into a
            :class:`TransportConfig` and warn; with no ``remote_url`` the
            replica list comes from ``$REPRO_REMOTE_URL``), but new code
            should pass ``transport=`` directly; the fleet knobs
            (multiple URLs, compression, float32 states, hedging) only
            exist there.  After construction the flat fields read back
            as ``None`` — ``transport`` is the single source of truth.
        async_encode: stream encoder batches through the background
            asyncio encode loop so serialization/fingerprinting of the
            next chunk overlaps the current chunk's forward passes.
            Results are unchanged (the local backend stays bit-identical);
            this is purely a scheduling knob.
        on_error: default failure mode for ``Observatory.sweep`` —
            ``"abort"`` (raise the typed error) or ``"degrade"`` (record
            a :class:`~repro.runtime.sweep.CellFailure` on
            ``SweepResult.failures`` and keep sweeping).  ``None`` means
            abort.
        fault_policy: the sweep's unified
            :class:`~repro.runtime.faults.FaultPolicy` — wall-clock
            deadline, scheduler crash-salvage retries, transport retry
            override, disk-lock patience, and backoff envelope in one
            typed object, threaded through every layer.  A plain dict in
            :meth:`FaultPolicy.to_jsonable` form is accepted and coerced.
            ``None`` means the per-layer defaults (identical behavior to
            before this knob existed).
    """

    enabled: bool = True
    batch_size: int = 8
    cache_entries: int = 16384
    disk_cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    cache_max_age: Optional[float] = None
    max_workers: Optional[int] = None
    execution: Optional[str] = None
    cost_priors: Optional[str] = None
    exact: bool = True
    backend: Optional[str] = None
    padding_tier: int = DEFAULT_TIER_WIDTH
    async_encode: bool = True
    transport: Optional[TransportConfig] = None
    remote_url: Optional[str] = None
    remote_timeout: Optional[float] = None
    remote_retries: Optional[int] = None
    on_error: Optional[str] = None
    fault_policy: Optional[FaultPolicy] = None

    def __post_init__(self):
        if self.on_error not in (None, "abort", "degrade"):
            raise ValueError(
                f"on_error must be 'abort' or 'degrade', got {self.on_error!r}"
            )
        if self.fault_policy is not None and not isinstance(
            self.fault_policy, FaultPolicy
        ):
            # Accept the canonical JSON form (process-shard payloads,
            # config files) and coerce — from_jsonable re-validates.
            object.__setattr__(
                self, "fault_policy", FaultPolicy.from_jsonable(self.fault_policy)
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be positive")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be positive")
        if self.cache_max_age is not None and self.cache_max_age <= 0:
            raise ValueError("cache_max_age must be positive")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        if self.execution not in (None, "thread", "process"):
            raise ValueError(
                f"execution must be 'thread' or 'process', got {self.execution!r}"
            )
        if self.cost_priors is not None and not isinstance(self.cost_priors, str):
            # Existence/shape are checked when the scheduler loads the
            # record, not here: a sweep may legitimately be configured
            # before its bench artifact lands on disk.
            raise ValueError("cost_priors must be a path string or None")
        if self.padding_tier < 1:
            raise ValueError("padding_tier must be positive")
        if self.transport is not None and not isinstance(self.transport, TransportConfig):
            # Accept the canonical JSON form (process-shard payloads,
            # config files) and coerce — from_jsonable re-validates.
            object.__setattr__(
                self, "transport", TransportConfig.from_jsonable(self.transport)
            )
        if self.remote_timeout is not None and self.remote_timeout <= 0:
            raise ValueError("remote_timeout must be positive")
        if self.remote_retries is not None and self.remote_retries < 0:
            raise ValueError("remote_retries must be >= 0")
        legacy = (self.remote_url, self.remote_timeout, self.remote_retries)
        if any(value is not None for value in legacy):
            warnings.warn(
                "RuntimeConfig(remote_url=/remote_timeout=/remote_retries=) is "
                "deprecated; pass RuntimeConfig(transport=TransportConfig(...)) "
                "— the typed transport config also carries the fleet options "
                "(multiple replica URLs, compression, state_dtype, hedging).",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.transport is not None:
                raise ValueError(
                    "pass transport= or the legacy remote_* kwargs, not both"
                )
            if self.remote_url is not None:
                urls = (self.remote_url,)
            else:
                # remote_timeout/remote_retries without a URL: the tuning
                # must still reach the backend, so resolve the replica
                # list from $REPRO_REMOTE_URL (the same fallback
                # RemoteBackend applies) instead of dropping the values.
                from repro.models.backends.remote import REMOTE_URL_ENV

                env = os.environ.get(REMOTE_URL_ENV, "")
                urls = tuple(u.strip() for u in env.split(",") if u.strip())
                if not urls:
                    raise ValueError(
                        "remote_timeout/remote_retries need replica URLs: "
                        "pass remote_url= (or transport=) or set "
                        f"${REMOTE_URL_ENV}"
                    )
            object.__setattr__(
                self,
                "transport",
                TransportConfig(
                    urls=urls,
                    timeout=(
                        self.remote_timeout
                        if self.remote_timeout is not None
                        else TransportConfig.__dataclass_fields__["timeout"].default
                    ),
                    retries=(
                        self.remote_retries
                        if self.remote_retries is not None
                        else TransportConfig.__dataclass_fields__["retries"].default
                    ),
                ),
            )
            # Fold exactly once: dataclasses.replace() re-runs this
            # __post_init__ (process-shard shipping does), and a copy
            # carrying both the coerced transport and the flat kwargs
            # would trip the conflict check above.
            object.__setattr__(self, "remote_url", None)
            object.__setattr__(self, "remote_timeout", None)
            object.__setattr__(self, "remote_retries", None)
        if self.backend is not None:
            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {', '.join(available_backends())}"
                )
            # Probe the actual backend rather than special-casing names:
            # misconfiguration (a remote backend without a URL) and
            # non-exact backends under exact=True must both fail at
            # configuration time, not mid-sweep.  Exactness is a promise,
            # not a preference.
            try:
                probe = self.build_backend()
            except ModelError as error:
                raise ValueError(str(error)) from None
            if self.exact and not probe.exact:
                raise ValueError(
                    f"backend={self.backend!r} is not exact; pass "
                    "exact=False to opt into tolerance batching"
                )

    def backend_name(self) -> str:
        """The resolved backend: explicit name, else derived from exact."""
        if self.backend is not None:
            return self.backend
        return "local" if self.exact else "padded"

    def build_backend(self) -> EncoderBackend:
        """One backend instance per call (stats are per-instance)."""
        name = self.backend_name()
        if name == "padded":
            return PaddedBackend(tier_width=self.padding_tier)
        if name == "local":
            return LocalBackend()
        if name == "remote":
            from repro.models.backends.remote import RemoteBackend

            # transport=None falls through to RemoteBackend's own
            # $REPRO_REMOTE_URL fallback (the legacy kwargs were already
            # folded into self.transport by the deprecation shim).  The
            # FaultPolicy's transport knobs override the TransportConfig
            # retry budget and set the backoff envelope — one failure
            # budget, not two.
            policy = self.fault_policy
            config = self.transport
            kwargs = {}
            if policy is not None:
                kwargs = {
                    "backoff_base": policy.backoff_base,
                    "backoff_cap": policy.backoff_cap,
                }
                if policy.transport_retries is not None:
                    if config is not None:
                        if config.retries != policy.transport_retries:
                            config = dataclasses.replace(
                                config, retries=policy.transport_retries
                            )
                    else:
                        kwargs["retries"] = policy.transport_retries
            return RemoteBackend(
                config=config,
                exact=self.exact,
                padding_tier=self.padding_tier,
                **kwargs,
            )
        from repro.models.backends import resolve_backend

        return resolve_backend(name)

    def build_cache(self) -> Optional[EmbeddingCache]:
        if not self.enabled:
            return None
        policy = self.fault_policy or FaultPolicy()
        return EmbeddingCache(
            max_entries=self.cache_entries,
            disk_dir=self.disk_cache_dir,
            disk_max_bytes=self.cache_max_bytes,
            disk_max_age=self.cache_max_age,
            lock_timeout=policy.lock_timeout,
            stale_lock_age=policy.stale_lock_age,
        )


class EmbeddingExecutor:
    """Plan, deduplicate, cache, and batch embedding requests for one model.

    With ``async_encode`` (the default), pending encode work streams
    through the shared background :func:`~repro.runtime.pipeline.encode_loop`
    in chunks: while chunk *k* runs its forward passes (BLAS, GIL
    released), the executor serializes chunk *k+1* and aggregates chunk
    *k-1* on the calling thread.  The public surface stays fully
    synchronous — callers never touch the event loop — and outputs are
    unchanged: chunking only regroups independent sequences.
    """

    def __init__(
        self,
        model,
        cache: Optional[EmbeddingCache] = None,
        *,
        batch_size: int = 8,
        naive: bool = False,
        async_encode: bool = True,
        pipeline_chunk: Optional[int] = None,
    ):
        self.model = model
        self.cache = cache
        self.batch_size = batch_size
        self.naive = naive
        self.async_encode = async_encode
        # One encoder batch per submission: a chunk's encode (~10ms+)
        # dwarfs the event-loop round-trip (~0.1ms), so fine granularity
        # buys overlap without measurable overhead; streaming engages only
        # when at least two chunks exist.
        self.pipeline_chunk = pipeline_chunk or max(4, batch_size)
        self.name = model.name
        self.dim = model.dim
        backend = getattr(getattr(model, "encoder", None), "backend", None)
        # The backend declares its own cache key space (EncoderBackend.
        # cache_namespace): tolerance-tier results must never cross into
        # an exact run through a shared/persistent cache, and remote
        # results stay isolated even when exact (the producer lives
        # outside this process's trust boundary).  Plain exact in-process
        # backends return None and share the model's namespace — their
        # entries are bit-identical by contract, so interchangeable.
        namespace = getattr(backend, "cache_namespace", None)
        if namespace is None and backend is not None and not getattr(backend, "exact", True):
            # Duck-typed third-party backends without the property still
            # get the PR 3 isolation rule.
            namespace = getattr(backend, "name", "inexact")
        self._cache_space = f"{model.name}|{namespace}" if namespace else model.name
        self._pipeline_lock = threading.Lock()
        self._pipeline_stats = PipelineStats()

    def __repr__(self) -> str:
        mode = "naive" if self.naive else "batched"
        return f"EmbeddingExecutor({self.name!r}, mode={mode}, cached={self.cache is not None})"

    @property
    def pipeline_stats(self) -> PipelineStats:
        """Snapshot of this executor's async-encode accounting."""
        with self._pipeline_lock:
            return dataclasses.replace(self._pipeline_stats)

    # ------------------------------------------------------------------
    # EmbeddingModel surface (duck-typed, cached)
    # ------------------------------------------------------------------

    def supported_levels(self) -> frozenset:
        return self.model.supported_levels()

    def supports(self, level: EmbeddingLevel) -> bool:
        return self.model.supports(level)

    def embed_columns(self, table: Table) -> np.ndarray:
        return self.embed_levels(table, (EmbeddingLevel.COLUMN,))[EmbeddingLevel.COLUMN]

    def embed_rows(self, table: Table) -> np.ndarray:
        return self.embed_levels(table, (EmbeddingLevel.ROW,))[EmbeddingLevel.ROW]

    def embed_table(self, table: Table) -> np.ndarray:
        return self.embed_levels(table, (EmbeddingLevel.TABLE,))[EmbeddingLevel.TABLE]

    def embed_cells(
        self, table: Table, coords: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        if self.naive or self.cache is None:
            return self.model.embed_cells(table, coords)
        key = (
            self._cache_space,
            f"cells/{coords_fingerprint(coords)}",
            table_fingerprint(table),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        value = self.model.embed_cells(table, coords)
        self.cache.put(key, value)
        return value

    def embed_entities(self, table: Table) -> Dict[str, np.ndarray]:
        if self.naive or self.cache is None:
            return self.model.embed_entities(table)
        key = (self._cache_space, "entity", table_fingerprint(table))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        value = self.model.embed_entities(table)
        self.cache.put(key, value)
        return value

    def embed_value_column(self, header: str, values: Sequence[object]) -> np.ndarray:
        return self.embed_value_columns([(header, list(values))])[0]

    # ------------------------------------------------------------------
    # Batch planning API
    # ------------------------------------------------------------------

    def embed_levels(
        self, table: Table, levels: Sequence[EmbeddingLevel]
    ) -> Dict[EmbeddingLevel, np.ndarray]:
        """Requested level embeddings of one table (one encode when possible)."""
        return self.embed_levels_many([table], levels)[0]

    def embed_levels_many(
        self,
        tables: Sequence[Table],
        levels: Sequence[EmbeddingLevel],
    ) -> List[Dict[EmbeddingLevel, np.ndarray]]:
        """Level embeddings for every table, deduplicated, cached, batched.

        Returns one ``{level: array}`` dict per input table, in input
        order.  Duplicate tables (by content fingerprint) are embedded
        once; cache hits skip computation entirely; the remaining misses
        are driven through the model's batch encoder.
        """
        levels = tuple(levels)
        unknown = set(levels) - set(BUNDLE_LEVELS)
        if unknown:
            raise ValueError(f"embed_levels_many covers {BUNDLE_LEVELS}, got {unknown}")
        if self.naive:
            return [self._compute_naive(table, levels) for table in tables]

        fingerprints = [table_fingerprint(t) for t in tables]
        # One slot per *unique* table, preserving first-seen order.
        slots: Dict[str, Dict[EmbeddingLevel, np.ndarray]] = {}
        pending: List[Tuple[str, Table, Tuple[EmbeddingLevel, ...]]] = []
        for fp, table in zip(fingerprints, tables):
            if fp in slots:
                continue
            bundle: Dict[EmbeddingLevel, np.ndarray] = {}
            if self.cache is not None:
                for level in levels:
                    hit = self.cache.get((self._cache_space, level.value, fp))
                    if hit is not None:
                        bundle[level] = hit
            slots[fp] = bundle
            missing = tuple(lv for lv in levels if lv not in bundle)
            if missing:
                pending.append((fp, table, missing))

        if pending:
            computed = self._compute_pending(
                [t for _, t, _ in pending], [lv for _, _, lv in pending]
            )
            for (fp, _, missing), bundle in zip(pending, computed):
                slots[fp].update(bundle)
                if self.cache is not None:
                    for level in missing:
                        self.cache.put((self._cache_space, level.value, fp), bundle[level])

        return [dict(slots[fp]) for fp in fingerprints]

    def embed_value_columns(
        self, requests: Sequence[Tuple[str, Sequence[object]]]
    ) -> List[np.ndarray]:
        """Standalone column embeddings for many (header, values) requests."""
        if self.naive:
            return [
                self.model.embed_value_column(header, list(values))
                for header, values in requests
            ]
        out: List[Optional[np.ndarray]] = [None] * len(requests)
        first_seen: Dict[str, List[int]] = {}
        for i, (header, values) in enumerate(requests):
            fp = value_column_fingerprint(header, values)
            first_seen.setdefault(fp, []).append(i)
        misses: List[str] = []
        for fp, indices in first_seen.items():
            # `is not None`, not truthiness: an empty memory tier is
            # falsy (__len__ == 0) but may still front a warm disk tier.
            value = (
                self.cache.get((self._cache_space, "valuecol", fp))
                if self.cache is not None
                else None
            )
            if value is None:
                misses.append(fp)
            else:
                for i in indices:
                    out[i] = value
        if misses:
            miss_requests = [
                (requests[first_seen[fp][0]][0], list(requests[first_seen[fp][0]][1]))
                for fp in misses
            ]
            batch_api = getattr(self.model, "embed_value_columns_batch", None)
            if batch_api is not None:
                values = batch_api(miss_requests, batch_size=self.batch_size)
            else:
                values = [
                    self.model.embed_value_column(h, v) for h, v in miss_requests
                ]
            for fp, value in zip(misses, values):
                if self.cache is not None:
                    self.cache.put((self._cache_space, "valuecol", fp), value)
                for i in first_seen[fp]:
                    out[i] = value
        return out

    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        return self.cache.stats if self.cache is not None else None

    _LEVEL_METHODS = {
        EmbeddingLevel.COLUMN: "embed_columns",
        EmbeddingLevel.ROW: "embed_rows",
        EmbeddingLevel.TABLE: "embed_table",
    }

    def _compute_naive(
        self, table: Table, levels: Tuple[EmbeddingLevel, ...]
    ) -> Dict[EmbeddingLevel, np.ndarray]:
        """Legacy path: one dedicated model call (one encode) per level."""
        return {
            level: getattr(self.model, self._LEVEL_METHODS[level])(table)
            for level in levels
        }

    def _compute_pending(
        self,
        tables: Sequence[Table],
        levels_list: Sequence[Tuple[EmbeddingLevel, ...]],
    ) -> List[Dict[EmbeddingLevel, np.ndarray]]:
        """Compute cache misses: streamed through the encode loop when
        worthwhile, plain batch otherwise."""
        if self.async_encode and len(tables) > self.pipeline_chunk:
            computed = self._compute_streaming(tables, levels_list)
            if computed is not None:
                return computed
        return self._compute_batch(tables, levels_list)

    def _compute_batch(
        self,
        tables: Sequence[Table],
        levels_list: Sequence[Tuple[EmbeddingLevel, ...]],
    ) -> List[Dict[EmbeddingLevel, np.ndarray]]:
        batch_api = getattr(self.model, "embed_levels_batch", None)
        if batch_api is not None:
            return batch_api(tables, levels_list, batch_size=self.batch_size)
        bundle_api = getattr(self.model, "embed_levels", None)
        if bundle_api is not None:
            return [bundle_api(t, lv) for t, lv in zip(tables, levels_list)]
        # Generic EmbeddingModel: no shared-encode capability, call per level.
        return [
            self._compute_naive(t, lv) for t, lv in zip(tables, levels_list)
        ]

    def _compute_streaming(
        self,
        tables: Sequence[Table],
        levels_list: Sequence[Tuple[EmbeddingLevel, ...]],
    ) -> Optional[List[Dict[EmbeddingLevel, np.ndarray]]]:
        """Producer/consumer plan over the background encode loop.

        Chunk *k*'s token arrays (columnar
        :class:`~repro.models.token_array.TokenArray` sequences) encode on
        the loop while this thread serializes chunk *k+1* and aggregates
        chunk *k-1*.  Returns
        ``None`` when the model offers no serialize/encode/finish split
        (generic models, ROW_TEMPLATE serialization) — callers fall back
        to the synchronous batch path.
        """
        serialize = getattr(self.model, "serialize_levels", None)
        finish = getattr(self.model, "finish_levels", None)
        encoder = getattr(self.model, "encoder", None)
        if serialize is None or finish is None or encoder is None:
            return None
        timings = telemetry.current()
        loop = encode_loop()
        # Latency-aware chunk sizing: a backend that measures round trips
        # (the remote transport) suggests how many sequences one in-flight
        # chunk should carry — big enough to amortize network latency,
        # small enough to keep the pipeline overlapping.  Local backends
        # expose no sizer and the static default stands.
        sizer = getattr(
            getattr(encoder, "backend", None), "suggest_pipeline_chunk", None
        )
        out: List[Dict[EmbeddingLevel, np.ndarray]] = []
        prev: Optional[Tuple[object, object]] = None  # (plan, future)

        def collect(plan, future) -> None:
            t0 = time.perf_counter()
            states = future.result()
            waited = time.perf_counter() - t0
            with self._pipeline_lock:
                self._pipeline_stats.wait_seconds += waited
            out.extend(finish(plan, states))

        start = 0
        while start < len(tables):
            chunk_size = self.pipeline_chunk
            if sizer is not None:
                # Re-consulted per chunk so the size adapts within one
                # plan as round-trip measurements accumulate.
                chunk_size = max(1, int(sizer(self.pipeline_chunk)))
            plan = serialize(
                tables[start : start + chunk_size],
                levels_list[start : start + chunk_size],
            )
            if plan is None:
                # No shared encoder pass for this model; first chunk, so
                # nothing is in flight yet — let the sync path handle all.
                return None
            future = loop.submit(
                self._encode_on_loop(encoder, plan.token_lists, timings)
            )
            if prev is not None:
                collect(*prev)  # aggregate k-1 while k encodes
            prev = (plan, future)
            start += chunk_size
        if prev is not None:
            collect(*prev)
        return out

    async def _encode_on_loop(self, encoder, token_lists, timings):
        """One chunk's encode via the backend's awaitable entry point.

        Busy time is credited to the *submitting* cell's telemetry (the
        captured ``timings``) and to this executor's pipeline stats — the
        foreground thread is elsewhere while this runs.
        """
        t0 = time.perf_counter()
        try:
            return await encoder.aencode_batch(
                token_lists, batch_size=self.batch_size
            )
        finally:
            busy = time.perf_counter() - t0
            telemetry.add("encode", busy, timings=timings)
            with self._pipeline_lock:
                self._pipeline_stats.batches += 1
                self._pipeline_stats.sequences += len(token_lists)
                self._pipeline_stats.encode_seconds += busy


def as_executor(model) -> EmbeddingExecutor:
    """Wrap a raw model in a (cacheless) executor; executors pass through.

    Property runners call this on whatever they were handed, so they can be
    driven either directly with an :class:`EmbeddingModel` (standalone use,
    tests) or with a cache-backed executor from the Observatory runtime.
    """
    if isinstance(model, EmbeddingExecutor):
        return model
    return EmbeddingExecutor(model)
