"""Content fingerprints for embedding-cache keys.

Embeddings are deterministic functions of the *exact* serialized input, so
the cache key must capture everything the serializer can see: headers in
order, rows in order, cell values with their Python types, caption, and
entity links.  Two tables share a fingerprint iff a model would embed them
identically at every level — which is why a row- or column-permuted
variant of a table fingerprints *differently* (order-sensitive models
produce different embeddings for it, and the cache must miss).

Values are tagged with their type before hashing (``repr`` distinguishes
``1``, ``1.0`` and ``"1"``) so numerically equal but differently typed
cells never collide.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, Tuple

from repro.relational.table import Table


def _update_value(digest: "hashlib._Hash", value: object) -> None:
    digest.update(repr(value).encode("utf-8", "replace"))
    digest.update(b"\x1f")


def table_fingerprint(table: Table) -> str:
    """Order-sensitive content hash of a table.

    Covers schema (names, data types, subject flag), caption, the full
    ordered cell grid, and entity links.  Stable across processes (pure
    sha256, no ``hash()`` randomization).
    """
    digest = hashlib.sha256(b"table\x00")
    for column in table.schema:
        digest.update(column.name.encode("utf-8", "replace"))
        digest.update(b"\x1e")
        digest.update(column.data_type.value.encode())
        digest.update(b"\x1e")
        _update_value(digest, column.semantic_type)
        digest.update(b"1" if column.is_subject else b"0")
        digest.update(b"\x1d")
    digest.update(b"\x00caption\x00")
    digest.update(table.caption.encode("utf-8", "replace"))
    digest.update(b"\x00rows\x00")
    for row in table.rows:
        for value in row:
            _update_value(digest, value)
        digest.update(b"\x1c")
    if table.entity_links:
        digest.update(b"\x00links\x00")
        for (r, c), entity in sorted(table.entity_links.items()):
            _update_value(digest, (r, c, entity))
    return digest.hexdigest()


def value_column_fingerprint(header: str, values: Sequence[object]) -> str:
    """Content hash of a standalone (header, values) column request."""
    digest = hashlib.sha256(b"valuecol\x00")
    digest.update(header.encode("utf-8", "replace"))
    digest.update(b"\x00")
    for value in values:
        _update_value(digest, value)
    return digest.hexdigest()


def coords_fingerprint(coords: Iterable[Tuple[int, int]]) -> str:
    """Hash of a cell-coordinate request set (order-insensitive)."""
    digest = hashlib.sha256(b"coords\x00")
    for r, c in sorted(set(coords)):
        _update_value(digest, (r, c))
    return digest.hexdigest()


def token_array_fingerprint(tokens) -> str:
    """Content hash of a serialized token sequence (columnar plane).

    Delegates to :meth:`repro.models.token_array.TokenArray.digest`, which
    hashes the piece *strings* (sorted-unique + inverse index) and the raw
    provenance array bytes — canonical across processes and interner
    states, so a wire-shipped sequence and its local rebuild fingerprint
    identically.  This is the serialization-side key a remote encoder
    backend caches encoded states under.
    """
    from repro.models.token_array import TokenArray

    return TokenArray.coerce(tokens).digest()


def cache_entry_digest(key: Sequence[str], schema_version: int) -> str:
    """Filename-safe digest of a cache key, salted by the cache schema.

    The on-disk tier outlives the process, so the digest mixes in the
    cache schema version: bumping it makes every old entry miss instead
    of silently serving embeddings produced by different math.  Stable
    across processes (pure sha256) — process-sharded sweep workers and
    the parent agree on every entry name.
    """
    salted = (f"schema={schema_version}",) + tuple(key)
    return hashlib.sha256("\x00".join(salted).encode("utf-8")).hexdigest()
