"""Bounded, indexed, crash-safe on-disk cache tier.

:class:`DiskTier` stores numpy arrays as ``.npy`` files under one directory
and keeps a versioned JSON **index** (``index.json``) beside them, so that

- startup reads one small file instead of statting the whole directory;
- the tier stays under a configurable **byte budget** (``max_bytes``) via
  least-recently-used eviction;
- entries past a configurable **age** (``max_age`` seconds since creation)
  expire and are reclaimed before any younger entry is size-evicted;
- every write is **crash-safe**: payloads land via write-temp-then-rename
  (``os.replace`` is atomic on POSIX), the index likewise, and index
  mutations happen under an ``index.lock`` file with stale-lock reclaim —
  a crashed writer never wedges the directory.

Corruption is survivable by construction: a payload that fails to load (or
whose size no longer matches the index) is dropped and recomputed by the
caller; a missing, torn, or version-mismatched index is rebuilt from a
one-time directory scan.  The tier never *raises* out of ``get``/``put`` —
a broken disk degrades to a cache miss, not a failed characterization.

Multiple processes may share one directory (this is how process-sharded
sweeps share work): atomic renames make concurrent reads safe, and the
lock serializes index updates across processes and threads alike.

The wall clock is injectable (``clock``) so eviction policy is testable
under a virtual clock; lock staleness always uses real time.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import uuid
from typing import Callable, Dict, Iterator, Optional

import numpy as np

# Bump when the on-disk index layout changes; mismatched indexes are
# rebuilt from a directory scan (entries survive, the index does not).
INDEX_VERSION = 1

INDEX_NAME = "index.json"
LOCK_NAME = "index.lock"
_TMP_PREFIX = ".tmp-"


class DiskTier:
    """Directory of ``.npy`` entries governed by a versioned JSON index.

    Args:
        directory: storage directory (created if missing).
        max_bytes: byte budget for all entries; ``None`` = unbounded.
            An entry larger than the whole budget is not stored at all.
        max_age: seconds after which an entry expires; ``None`` = never.
            Expired entries are dropped on sight and reclaimed before any
            younger entry is evicted for size.
        clock: time source for entry creation/access stamps (tests inject
            a virtual clock; eviction policy follows it).
        lock_timeout: seconds to wait for ``index.lock`` before assuming
            its holder crashed and reclaiming it.
        stale_lock_age: a lock file older than this is reclaimed
            immediately (its writer is long gone).
    """

    def __init__(
        self,
        directory: str,
        *,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        lock_timeout: float = 5.0,
        stale_lock_age: float = 10.0,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive when set")
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive when set")
        self.directory = directory
        self.max_bytes = max_bytes
        self.max_age = max_age
        self.evictions = 0  # size- or age-based reclaims (files removed)
        self.drops = 0  # corrupt/torn entries dropped on read
        self._clock = clock
        self._lock_timeout = lock_timeout
        self._stale_lock_age = stale_lock_age
        self._deadline = None  # optional live sweep budget; see set_deadline
        os.makedirs(directory, exist_ok=True)

    def set_deadline(self, deadline) -> None:
        """Bound lock patience by a live sweep budget.

        ``deadline`` is a :class:`~repro.runtime.faults.Deadline`.  The
        tier's never-raise contract holds: an expired budget only
        *shortens* how long ``_locked`` waits before stale-reclaiming —
        it never turns a cache access into an error.
        """
        self._deadline = deadline

    # ------------------------------------------------------------------
    # Paths and locking
    # ------------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.npy")

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, INDEX_NAME)

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold ``index.lock`` (O_CREAT|O_EXCL) with stale-lock reclaim."""
        lock_path = os.path.join(self.directory, LOCK_NAME)
        patience = self._lock_timeout
        if self._deadline is not None:
            # A sweep out of wall-clock budget should not sit out the full
            # lock timeout; the floor keeps an expired budget from turning
            # every wait into an instant (possibly-live) lock reclaim.
            patience = max(0.05, self._deadline.bound(self._lock_timeout))
        deadline = time.time() + patience
        fd = None
        while fd is None:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(lock_path)
                except OSError:
                    continue  # holder just released; retry immediately
                if age > self._stale_lock_age or time.time() > deadline:
                    # The writer crashed (or is wedged past our patience):
                    # reclaim.  Unlink is racy-but-safe — worst case two
                    # waiters both proceed to an atomic index rename.
                    with contextlib.suppress(OSError):
                        os.unlink(lock_path)
                    continue
                time.sleep(0.002)
        try:
            with contextlib.suppress(OSError):
                os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            yield
        finally:
            with contextlib.suppress(OSError):
                os.unlink(lock_path)

    # ------------------------------------------------------------------
    # Index I/O
    # ------------------------------------------------------------------

    def _load_index(self) -> Dict[str, Dict[str, float]]:
        """Read the index; rebuild from a directory scan when unusable."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("index_version") != INDEX_VERSION:
                raise ValueError("index version mismatch")
            entries = payload["entries"]
            if not isinstance(entries, dict):
                raise ValueError("malformed entries")
            return entries
        except FileNotFoundError:
            if not any(
                entry.endswith(".npy") and not entry.startswith(_TMP_PREFIX)
                for entry in os.listdir(self.directory)
            ):
                return {}  # fresh directory: nothing to rebuild
            return self._rebuild_index()
        except (OSError, ValueError, KeyError, TypeError):
            return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Dict[str, float]]:
        """Recover the index by scanning the directory (one-time fallback).

        Also sweeps *stale* temp files left behind by crashed writers —
        fresh ones may belong to a concurrent writer's in-flight put.
        """
        entries: Dict[str, Dict[str, float]] = {}
        now = self._clock()
        for filename in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, filename)
            if filename.startswith(_TMP_PREFIX):
                with contextlib.suppress(OSError):
                    if time.time() - os.path.getmtime(path) > self._stale_lock_age:
                        os.unlink(path)
                continue
            if not filename.endswith(".npy"):
                continue
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            entries[filename[: -len(".npy")]] = {
                "bytes": float(size),
                "created": now,
                "atime": now,
            }
        return entries

    def _write_index(self, entries: Dict[str, Dict[str, float]]) -> None:
        payload = {"index_version": INDEX_VERSION, "entries": entries}
        tmp = os.path.join(
            self.directory, f"{_TMP_PREFIX}index-{uuid.uuid4().hex}.json"
        )
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.index_path)

    # ------------------------------------------------------------------
    # Eviction policy
    # ------------------------------------------------------------------

    def _expired(self, entry: Dict[str, float], now: float) -> bool:
        return self.max_age is not None and now - entry["created"] > self.max_age

    def _reclaim(self, entries: Dict[str, Dict[str, float]], now: float) -> list:
        """Apply age expiry then LRU size eviction; returns removed names.

        Expired entries go first, so a younger-than-``max_age`` entry is
        only ever evicted for size once no older-than-``max_age`` entry
        remains — the invariant ``tests/test_cache_eviction.py`` locks in.
        """
        removed = [n for n, e in entries.items() if self._expired(e, now)]
        for name in removed:
            del entries[name]
        if self.max_bytes is not None:
            total = sum(e["bytes"] for e in entries.values())
            while total > self.max_bytes and entries:
                victim = min(entries, key=lambda n: entries[n]["atime"])
                total -= entries[victim]["bytes"]
                del entries[victim]
                removed.append(victim)
        return removed

    def _unlink_entries(self, names) -> None:
        for name in names:
            with contextlib.suppress(OSError):
                os.unlink(self._path(name))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def get(self, name: str) -> Optional[np.ndarray]:
        """The entry's array, or ``None`` (missing, expired, or corrupt).

        A corrupt or torn payload is dropped from disk and index — the
        caller recomputes; wrong data is never returned for entries whose
        payload no longer matches what was written.
        """
        entries = self._load_index()
        entry = entries.get(name)
        if entry is None:
            return None
        now = self._clock()
        path = self._path(name)
        if self._expired(entry, now):
            self._forget(name, unlink=True, count_eviction=True)
            return None
        try:
            if os.path.getsize(path) != int(entry["bytes"]):
                raise ValueError("payload size does not match index")
            value = np.load(path)
        except (OSError, ValueError, EOFError):
            self.drops += 1
            self._forget(name, unlink=True, count_eviction=False)
            return None
        if self.max_bytes is not None:
            # Persist recency only when size-LRU eviction consumes it;
            # age expiry reads "created", so every other configuration
            # skips the locked index rewrite on the hot read path.
            with self._locked():
                entries = self._load_index()
                if name in entries:
                    entries[name]["atime"] = now
                    self._write_index(entries)
        return value

    def put(self, name: str, value: np.ndarray) -> bool:
        """Store ``value`` atomically; returns whether it was kept.

        An entry larger than the entire byte budget is rejected (storing
        it could never satisfy the bound).  Insertion triggers expiry and
        LRU eviction so the budget holds after every operation.
        """
        tmp = os.path.join(self.directory, f"{_TMP_PREFIX}{uuid.uuid4().hex}.npy")
        try:
            np.save(tmp, value)
            size = os.path.getsize(tmp)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            return False  # best-effort tier: a failing disk is a miss
        if self.max_bytes is not None and size > self.max_bytes:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            return False
        now = self._clock()
        with self._locked():
            entries = self._load_index()
            entries[name] = {"bytes": float(size), "created": now, "atime": now}
            removed = self._reclaim(entries, now)
            self.evictions += len(removed)
            # Crash-ordering: victims are unlinked and the index written
            # *before* the payload lands.  A crash at any point leaves
            # either the old state, or index entries whose files are gone
            # or stale — both dropped-and-recomputed on read.  The reverse
            # order would orphan payload bytes that no index accounts for,
            # letting real disk usage creep past max_bytes forever.
            self._unlink_entries(removed)
            self._write_index(entries)
            try:
                os.replace(tmp, self._path(name))
            except OSError:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                return False
        return True

    def _forget(self, name: str, *, unlink: bool, count_eviction: bool) -> None:
        if unlink:
            self._unlink_entries([name])  # before the index write: no orphans
        with self._locked():
            entries = self._load_index()
            if entries.pop(name, None) is not None:
                self._write_index(entries)
                if count_eviction:
                    self.evictions += 1

    def total_bytes(self) -> int:
        """Bytes currently accounted to entries (per the index)."""
        return int(sum(e["bytes"] for e in self._load_index().values()))

    def __len__(self) -> int:
        return len(self._load_index())

    def __repr__(self) -> str:
        budget = "unbounded" if self.max_bytes is None else f"{self.max_bytes}B"
        return (
            f"DiskTier({self.directory!r}, budget={budget}, "
            f"max_age={self.max_age}, entries={len(self)})"
        )
