"""Parallel (model × property) sweep execution.

``Observatory.sweep`` delegates here: every (model, property) cell of the
requested matrix is an independent, deterministically seeded unit of work.
Two execution engines are available:

- ``"thread"`` — cells run on a thread pool; the surrogate encoders spend
  their time in numpy, which releases the GIL, and all executors share one
  embedding cache, so a table embedded for P1 is a cache hit when P2 asks
  for it.
- ``"process"`` — cells run on the work-stealing scheduler
  (:mod:`repro.runtime.scheduler`): persistent spawned workers pull
  corpus-affinity work groups from a dynamic LPT-ordered queue, with
  straggler re-dispatch and crash salvage.  This scales the Python-heavy
  half of the matrix (serializers, aggregates, planners) past the GIL.
  Workers rebuild models from the registry and share only the on-disk
  cache tier.  The legacy static-shard engine
  (:mod:`repro.runtime.process_sweep`) is retained as the scheduler's
  equivalence oracle.

Determinism: a cell's result is a pure function of (seed, model, property,
dataset sizes).  The cache only short-circuits recomputation of values
that would have been identical anyway, and cells never exchange data, so
sweep results are independent of worker count, scheduling order, *and*
execution mode — ``tests/test_runtime_sweep.py`` and
``tests/test_runtime_process_sweep.py`` lock this in.

Cells are *executed* in cache-aware order — grouped so cells sharing a
dataset corpus run back-to-back, raising the intra-sweep hit rate — but
*returned* in request order, so the ordering is invisible to callers.

Cells whose model lacks every level the property needs (the paper's
Table 2 scoping) and pairwise properties that need an explicit partner are
not run; unlike the historical silent skip, each one is recorded as a
:class:`SkippedCell` on the returned :class:`SweepResult`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.core.results import PropertyResult, SkippedCell
from repro.errors import CellExecutionError, ObservatoryError
from repro.models.backends.padded import PaddingStats
from repro.models.backends.remote import TransportStats
from repro.runtime.cache import CacheStats
from repro.runtime.faults import Deadline, FaultPolicy
from repro.runtime.pipeline import PipelineStats

# Workers only pay off when cores exist to run cells in parallel; on a
# single-core host the pool degenerates to sequential execution.
_DEFAULT_WORKER_CAP = min(4, os.cpu_count() or 1)

# Environment override for the default execution engine; the CI matrix
# runs the whole suite under REPRO_SWEEP_EXECUTION=process so both
# engines are gated on every push.
EXECUTION_ENV = "REPRO_SWEEP_EXECUTION"
EXECUTION_MODES = ("thread", "process")

# What a cell failure does to the rest of the sweep: "abort" (default)
# re-raises the typed error; "degrade" records a CellFailure on
# SweepResult.failures and keeps going — every other cell still runs.
ON_ERROR_MODES = ("abort", "degrade")

# Environment override for the default worker count, mirroring
# REPRO_SWEEP_EXECUTION: an explicit max_workers argument or
# RuntimeConfig.max_workers still wins.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

# Which default dataset corpus each property characterizes over.  Cells
# sharing a corpus are scheduled back-to-back (per model) so embeddings
# computed for one property are still memory-tier-warm for the next —
# cache-aware ordering.  perturbation_robustness runs the drspider suite,
# which is *derived from* wikitables and embeds the original wikitables
# tables alongside the perturbed variants — hence its wikitables group.
# A property missing here orders by its own name (correct, just not
# grouped); tests/test_runtime_process_sweep.py guards that every
# registered property stays mapped.
PROPERTY_CORPUS = {
    "row_order_insignificance": "wikitables",
    "column_order_insignificance": "wikitables",
    "sample_fidelity": "wikitables",
    "perturbation_robustness": "wikitables",
    "heterogeneous_context": "sotab",
    "functional_dependencies": "spider",
    "join_relationship": "nextiajd",
    "entity_stability": "entities",
}


def resolve_execution(
    explicit: Optional[str], configured: Optional[str] = None
) -> str:
    """Pick the sweep engine: explicit arg > RuntimeConfig > env > thread."""
    choice = explicit or configured or os.environ.get(EXECUTION_ENV) or "thread"
    if choice not in EXECUTION_MODES:
        raise ObservatoryError(
            f"unknown execution mode {choice!r}; expected one of {EXECUTION_MODES}"
        )
    return choice


def resolve_on_error(explicit: Optional[str], configured: Optional[str] = None) -> str:
    """Pick the failure mode: explicit arg > RuntimeConfig > abort."""
    choice = explicit or configured or "abort"
    if choice not in ON_ERROR_MODES:
        raise ObservatoryError(
            f"unknown on_error mode {choice!r}; expected one of {ON_ERROR_MODES}"
        )
    return choice


def resolve_workers(explicit: Optional[int] = None) -> Optional[int]:
    """Worker count: explicit argument > $REPRO_SWEEP_WORKERS > None (auto).

    The caller passes whatever the API/RuntimeConfig resolved; only when
    that is unset does the environment override apply, so a session-wide
    ``REPRO_SWEEP_WORKERS=8`` never silently beats an explicit argument.
    The env value must be a positive integer — a typo'd override failing
    loudly beats a sweep quietly running single-worker.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ObservatoryError(
            f"${WORKERS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ObservatoryError(
            f"${WORKERS_ENV} must be a positive integer, got {raw!r}"
        )
    return workers


@dataclasses.dataclass
class SweepCell:
    """One completed (model, property) characterization.

    ``seconds`` is the cell's wall clock; the ``*_seconds`` phase fields
    split it into serialization (Python), encoding (BLAS forward passes,
    including background encode work the cell submitted), and aggregation
    (numpy pooling) — the observability that makes hot cells (the known
    heterogeneous_context ~3x skew) diagnosable from a report.
    """

    model_name: str
    property_name: str
    result: PropertyResult
    seconds: float
    serialize_seconds: float = 0.0
    encode_seconds: float = 0.0
    aggregate_seconds: float = 0.0

    def record(self) -> Dict[str, object]:
        """Flat observability record for reports and JSON artifacts."""
        return {
            "model": self.model_name,
            "property": self.property_name,
            "seconds": self.seconds,
            "serialize_seconds": self.serialize_seconds,
            "encode_seconds": self.encode_seconds,
            "aggregate_seconds": self.aggregate_seconds,
        }

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless form for the write-ahead journal (result included)."""
        payload = self.record()
        payload["result"] = self.result.to_jsonable()
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict[str, object]) -> "SweepCell":
        return cls(
            model_name=payload["model"],
            property_name=payload["property"],
            result=PropertyResult.from_jsonable(payload["result"]),
            seconds=float(payload["seconds"]),
            serialize_seconds=float(payload.get("serialize_seconds", 0.0)),
            encode_seconds=float(payload.get("encode_seconds", 0.0)),
            aggregate_seconds=float(payload.get("aggregate_seconds", 0.0)),
        )


@dataclasses.dataclass
class CellFailure:
    """One (model, property) cell that failed under ``on_error="degrade"``.

    Carries the typed error's class name and message; the live exception
    (with its chained ``__cause__``) rides along on ``cause`` for callers
    that want the traceback, but never serializes — reports and the
    journal see only the named failure.
    """

    model_name: str
    property_name: str
    error: str  # ObservatoryError subclass name, e.g. "CellPoisonedError"
    message: str
    cause: Optional[BaseException] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_exception(
        cls, model_name: str, property_name: str, exc: BaseException
    ) -> "CellFailure":
        return cls(model_name, property_name, type(exc).__name__, str(exc), cause=exc)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "model": self.model_name,
            "property": self.property_name,
            "error": self.error,
            "message": self.message,
        }


@dataclasses.dataclass
class SweepResult:
    """Structured outcome of ``Observatory.sweep``.

    Attributes:
        cells: completed cells in request order.
        skipped: cells that were not run, with reasons — nothing is
            dropped silently.
        failures: cells that ran and failed under ``on_error="degrade"``
            (typed :class:`CellFailure` records; empty under the default
            ``"abort"``, which raises instead).
        replayed: how many of ``cells`` were recovered from the
            write-ahead journal rather than recomputed (``--resume``).
        seconds: wall-clock of the whole sweep.
        workers: worker-pool size used (threads or processes).
        execution: engine that ran the cells (``"thread"``/``"process"``).
        backend: encoder-backend description (name, tier width, tolerance)
            the sweep's embeddings went through.
        cache_stats: embedding-cache counters — the shared cache in thread
            mode, the merged per-worker counters in process mode, ``None``
            when the runtime cache is disabled.
        pipeline: async-encode accounting (overlap ratio), merged across
            executors/workers; ``None`` when streaming never engaged.
        padding: padded-backend waste accounting; ``None`` under the
            exact local backend.
        transport: remote-transport accounting (round trips, retries,
            bytes), merged across workers; ``None`` unless the remote
            backend carried chunks for this sweep.
        scheduler: work-stealing dispatch accounting
            (:class:`~repro.runtime.scheduler.SchedulerTelemetry` —
            per-worker busy/idle/steal counters, redispatches, crash
            salvage); ``None`` under the thread engine.
    """

    cells: List[SweepCell] = dataclasses.field(default_factory=list)
    skipped: List[SkippedCell] = dataclasses.field(default_factory=list)
    failures: List[CellFailure] = dataclasses.field(default_factory=list)
    replayed: int = 0
    seconds: float = 0.0
    workers: int = 1
    execution: str = "thread"
    backend: str = "local (exact)"
    cache_stats: Optional[CacheStats] = None
    pipeline: Optional[PipelineStats] = None
    padding: Optional[PaddingStats] = None
    transport: Optional[TransportStats] = None
    scheduler: Optional["SchedulerTelemetry"] = None  # noqa: F821

    @property
    def records(self) -> List[Dict[str, object]]:
        """Per-cell observability records (wall time + phase split)."""
        return [cell.record() for cell in self.cells]

    def slowest(self, n: int = 3) -> List[SweepCell]:
        """The ``n`` longest-running cells, slowest first."""
        return sorted(self.cells, key=lambda c: c.seconds, reverse=True)[:n]

    @property
    def results(self) -> List[PropertyResult]:
        return [cell.result for cell in self.cells]

    @property
    def model_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.model_name, None)
        return list(seen)

    @property
    def property_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.property_name, None)
        return list(seen)

    def get(self, model_name: str, property_name: str) -> Optional[PropertyResult]:
        """The cell result for (model, property), or ``None`` if absent."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.property_name == property_name:
                return cell.result
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "cells": [
                {**cell.record(), "result": cell.result.to_dict()}
                for cell in self.cells
            ],
            "skipped": [dataclasses.asdict(s) for s in self.skipped],
            "failures": [f.to_jsonable() for f in self.failures],
            "replayed": self.replayed,
            "seconds": self.seconds,
            "workers": self.workers,
            "execution": self.execution,
            "backend": self.backend,
            "cache": self.cache_stats.to_dict() if self.cache_stats else None,
            "pipeline": self.pipeline.to_dict() if self.pipeline else None,
            "padding": dataclasses.asdict(self.padding) if self.padding else None,
            "transport": self.transport.to_dict() if self.transport else None,
            "scheduler": self.scheduler.to_dict() if self.scheduler else None,
        }

    def __repr__(self) -> str:
        return (
            f"SweepResult(cells={len(self.cells)}, skipped={len(self.skipped)}, "
            f"failures={len(self.failures)}, replayed={self.replayed}, "
            f"seconds={self.seconds:.2f}, workers={self.workers}, "
            f"execution={self.execution!r}, backend={self.backend!r})"
        )


def plan_cells(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
) -> Tuple[List[Tuple[str, str]], List[SkippedCell]]:
    """Split the matrix into runnable cells and recorded skips."""
    from repro.core.registry import load_property

    runnable: List[Tuple[str, str]] = []
    skipped: List[SkippedCell] = []
    for property_name in property_names:
        runner = load_property(property_name)
        for model_name in model_names:
            if property_name == "entity_stability":
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        "pairwise property; run characterize(..., partner_model=...)",
                    )
                )
                continue
            model = observatory.model(model_name)
            if runner.levels and not any(model.supports(lv) for lv in runner.levels):
                needed = "/".join(lv.value for lv in runner.levels)
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        f"model exposes no {needed} embeddings",
                    )
                )
                continue
            runnable.append((model_name, property_name))
    return runnable, skipped


def order_cells(cells: Sequence[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Cache-aware execution order: model-major, corpus-grouped within.

    Keeping one model's cells together maximizes reuse of its executor's
    cached embeddings, and running properties that share a corpus
    back-to-back (P1/P2/P5/P7 all characterize over wikitables) means the
    second property's tables are still warm from the first.  Models and
    corpora keep their first-seen request order so the schedule — and
    thus shard assignment — is deterministic.
    """
    model_rank: Dict[str, int] = {}
    corpus_rank: Dict[str, int] = {}
    property_rank: Dict[str, int] = {}
    for model_name, property_name in cells:
        model_rank.setdefault(model_name, len(model_rank))
        corpus = PROPERTY_CORPUS.get(property_name, property_name)
        corpus_rank.setdefault(corpus, len(corpus_rank))
        property_rank.setdefault(property_name, len(property_rank))
    return sorted(
        cells,
        key=lambda cell: (
            model_rank[cell[0]],
            corpus_rank[PROPERTY_CORPUS.get(cell[1], cell[1])],
            property_rank[cell[1]],
        ),
    )


def _sweep_plan(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
    backend_desc: str,
    runnable: Sequence[Tuple[str, str]],
) -> Dict[str, object]:
    """The journal's plan-fingerprint payload: everything cell results
    depend on (seed, sizes, models, properties, backend numerics, and the
    runnable matrix) and nothing they don't — execution mode and worker
    count are deliberately absent, since results are bit-identical across
    engines by contract and a thread-engine journal may resume under the
    process engine."""
    return {
        "seed": observatory.seed,
        "sizes": dataclasses.asdict(observatory.sizes),
        "models": list(model_names),
        "properties": list(property_names),
        "backend": backend_desc,
        "cells": [[m, p] for m, p in runnable],
    }


def _apply_deadline(observatory, deadline: Deadline) -> None:
    """Hand the sweep's live countdown to deadline-aware layers.

    The remote backend bounds per-attempt timeouts and backoff sleeps;
    the cache bounds disk-lock patience.  Layers without a
    ``set_deadline`` hook are simply unbounded, as before.
    """
    for target in (
        getattr(observatory, "encoder_backend", None),
        getattr(observatory, "cache", None),
    ):
        if target is not None and hasattr(target, "set_deadline"):
            target.set_deadline(deadline)


def run_sweep(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
    *,
    max_workers: Optional[int] = None,
    execution: Optional[str] = None,
    on_error: Optional[str] = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault_policy: Optional[FaultPolicy] = None,
) -> SweepResult:
    """Execute the matrix on a worker pool; see module docstring.

    With ``journal_dir`` set, every completed cell is appended to a
    write-ahead :class:`~repro.runtime.journal.SweepJournal` as it
    finishes; ``resume=True`` replays completed cells from that journal
    and dispatches only the remainder (refusing a journal whose plan
    fingerprint doesn't match).  ``on_error="degrade"`` converts cell
    failures into :class:`CellFailure` records on the result instead of
    aborting the sweep.
    """
    if not model_names:
        raise ObservatoryError("sweep needs at least one model")
    if not property_names:
        raise ObservatoryError("sweep needs at least one property")
    engine = resolve_execution(execution, getattr(observatory.runtime, "execution", None))
    max_workers = resolve_workers(max_workers)
    on_error = resolve_on_error(on_error, getattr(observatory.runtime, "on_error", None))
    policy = (
        fault_policy
        or getattr(observatory.runtime, "fault_policy", None)
        or FaultPolicy()
    )
    deadline = policy.start_deadline()
    _apply_deadline(observatory, deadline)
    backend_desc = observatory.backend_description()
    # Executors accumulate pipeline/padding counters for their lifetime;
    # snapshot here so this sweep reports only its own work, not a
    # previous sweep's (thread engine reuses the executors).
    pipeline_before = observatory.pipeline_stats()
    padding_before = observatory.padding_stats()
    transport_before = observatory.transport_stats()
    started = time.perf_counter()
    runnable, skipped = plan_cells(observatory, model_names, property_names)
    # Execute cache-aware, return request-order (see order_cells).
    request_rank = {cell: i for i, cell in enumerate(runnable)}
    ordered = order_cells(runnable)

    journal = None
    replayed_cells: List[SweepCell] = []
    todo: List[Tuple[str, str]] = list(ordered)
    if resume and not journal_dir:
        raise ObservatoryError("resume=True requires journal_dir")
    if journal_dir:
        from repro.runtime.journal import SweepJournal

        plan = _sweep_plan(
            observatory, model_names, property_names, backend_desc, runnable
        )
        opener = SweepJournal.resume if resume else SweepJournal.start
        journal = opener(journal_dir, plan)
        if journal.completed:
            todo = [c for c in ordered if c not in journal.completed]
            replayed_cells = [
                SweepCell.from_jsonable(journal.completed[c])
                for c in ordered
                if c in journal.completed
            ]
        # The write-ahead half: the dispatch plan hits disk before any
        # cell runs, so a resumed session can tell "never dispatched"
        # from "dispatched but lost".
        journal.record_planned(todo)

    try:
        return _dispatch_sweep(
            observatory,
            engine=engine,
            max_workers=max_workers,
            on_error=on_error,
            policy=policy,
            deadline=deadline,
            journal=journal,
            backend_desc=backend_desc,
            started=started,
            skipped=skipped,
            request_rank=request_rank,
            todo=todo,
            replayed_cells=replayed_cells,
            pipeline_before=pipeline_before,
            padding_before=padding_before,
            transport_before=transport_before,
        )
    finally:
        if journal is not None:
            journal.close()


def _dispatch_sweep(
    observatory,
    *,
    engine: str,
    max_workers: Optional[int],
    on_error: str,
    policy: FaultPolicy,
    deadline: Deadline,
    journal,
    backend_desc: str,
    started: float,
    skipped: List[SkippedCell],
    request_rank: Dict[Tuple[str, str], int],
    todo: List[Tuple[str, str]],
    replayed_cells: List[SweepCell],
    pipeline_before,
    padding_before,
    transport_before,
) -> SweepResult:
    """Engine dispatch shared by the journaled and plain paths."""
    rank = lambda c: request_rank[(c.model_name, c.property_name)]  # noqa: E731

    if engine == "process":
        if not todo:
            # Nothing to dispatch: every cell was skipped or replayed
            # from the journal.  No workers spawn, no cache is touched —
            # report that honestly rather than falling through to the
            # thread path with the parent's live counters.
            return SweepResult(
                cells=sorted(replayed_cells, key=rank),
                skipped=skipped,
                replayed=len(replayed_cells),
                seconds=time.perf_counter() - started,
                workers=0,
                execution="process",
                backend=backend_desc,
                cache_stats=None,
            )
        # The work-stealing scheduler is the process engine; the static
        # ProcessShardedSweep survives as its equivalence oracle.
        from repro.runtime.scheduler import WorkStealingSweep

        def journal_group(group_cells: List[SweepCell]) -> None:
            # Called by the dispatch loop the moment a group's winning
            # payload lands, so a parent killed mid-sweep has every
            # already-won group on disk.
            if journal is not None:
                for cell in group_cells:
                    journal.record_cell(
                        cell.model_name, cell.property_name, cell.to_jsonable()
                    )

        engine_result = WorkStealingSweep(
            observatory,
            max_workers=max_workers,
            max_retries=policy.scheduler_retries,
            on_error=on_error,
            deadline=deadline,
            on_group_done=journal_group,
        ).run(todo)
        failures = list(engine_result.failures)
        if journal is not None:
            for failure in failures:
                journal.record_failure(failure.to_jsonable())
        return SweepResult(
            cells=sorted(engine_result.cells + replayed_cells, key=rank),
            skipped=skipped,
            failures=failures,
            replayed=len(replayed_cells),
            seconds=time.perf_counter() - started,
            workers=engine_result.workers,
            execution="process",
            backend=backend_desc,
            cache_stats=engine_result.cache_stats,
            pipeline=engine_result.pipeline,
            padding=engine_result.padding,
            transport=engine_result.transport,
            scheduler=engine_result.scheduler,
        )

    # Materialize shared resources serially before fanning out: dataset
    # generators and model construction are the only mutating steps.
    for model_name in {m for m, _ in todo}:
        observatory.executor(model_name)
    for property_name in {p for _, p in todo}:
        observatory.prepare_property_data(property_name)

    workers = max_workers or min(_DEFAULT_WORKER_CAP, max(1, len(todo)))

    def run_cell(cell: Tuple[str, str]) -> SweepCell:
        model_name, property_name = cell
        # A cell that hasn't started when the budget runs out is not
        # worth starting; one already running is left to finish (cells
        # are short relative to sweeps).
        deadline.check(f"cell {model_name}/{property_name}")
        timings = telemetry.start_cell()
        t0 = time.perf_counter()
        try:
            result = observatory.characterize(model_name, property_name)
        except ObservatoryError:
            raise
        except Exception as exc:
            # The errors.py contract: library failure paths raise
            # ObservatoryError subclasses, with the original chained.
            raise CellExecutionError(model_name, property_name, str(exc)) from exc
        finally:
            telemetry.stop_cell()
        return SweepCell(
            model_name,
            property_name,
            result,
            time.perf_counter() - t0,
            serialize_seconds=timings.serialize_seconds,
            encode_seconds=timings.encode_seconds,
            aggregate_seconds=timings.aggregate_seconds,
        )

    def attempt(cell: Tuple[str, str]):
        try:
            return run_cell(cell)
        except ObservatoryError as exc:
            if on_error == "degrade":
                return CellFailure.from_exception(cell[0], cell[1], exc)
            raise

    cells: List[SweepCell] = []
    failures: List[CellFailure] = []

    def finish(outcome) -> None:
        if isinstance(outcome, CellFailure):
            failures.append(outcome)
            if journal is not None:
                journal.record_failure(outcome.to_jsonable())
        else:
            cells.append(outcome)
            if journal is not None:
                # Journal each cell the moment it completes (not at
                # sweep end): that is what survives a SIGKILL.
                journal.record_cell(
                    outcome.model_name, outcome.property_name, outcome.to_jsonable()
                )

    if workers <= 1 or len(todo) <= 1:
        for cell in todo:
            finish(attempt(cell))
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(attempt, c) for c in todo]
            for future in as_completed(futures):
                finish(future.result())
    cells.extend(replayed_cells)
    cells.sort(key=rank)

    cache = getattr(observatory, "cache", None)
    pipeline = observatory.pipeline_stats().since(pipeline_before)
    padding = observatory.padding_stats()
    if padding is not None and padding_before is not None:
        padding = padding.since(padding_before)
    if padding is not None and not padding.padded_batches:
        padding = None  # padded backend configured but nothing was padded
    transport = observatory.transport_stats()
    if transport is not None and transport_before is not None:
        transport = transport.since(transport_before)
    if transport is not None and not transport.chunks:
        transport = None  # remote configured but nothing crossed the wire
    return SweepResult(
        cells=cells,
        skipped=skipped,
        failures=failures,
        replayed=len(replayed_cells),
        seconds=time.perf_counter() - started,
        workers=workers,
        execution=engine,
        backend=backend_desc,
        cache_stats=cache.stats if cache is not None else None,
        pipeline=pipeline if pipeline.batches else None,
        padding=padding,
        transport=transport,
    )
