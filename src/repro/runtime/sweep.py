"""Parallel (model × property) sweep execution.

``Observatory.sweep`` delegates here: every (model, property) cell of the
requested matrix is an independent, deterministically seeded unit of work.
Two execution engines are available:

- ``"thread"`` — cells run on a thread pool; the surrogate encoders spend
  their time in numpy, which releases the GIL, and all executors share one
  embedding cache, so a table embedded for P1 is a cache hit when P2 asks
  for it.
- ``"process"`` — cells run on the work-stealing scheduler
  (:mod:`repro.runtime.scheduler`): persistent spawned workers pull
  corpus-affinity work groups from a dynamic LPT-ordered queue, with
  straggler re-dispatch and crash salvage.  This scales the Python-heavy
  half of the matrix (serializers, aggregates, planners) past the GIL.
  Workers rebuild models from the registry and share only the on-disk
  cache tier.  The legacy static-shard engine
  (:mod:`repro.runtime.process_sweep`) is retained as the scheduler's
  equivalence oracle.

Determinism: a cell's result is a pure function of (seed, model, property,
dataset sizes).  The cache only short-circuits recomputation of values
that would have been identical anyway, and cells never exchange data, so
sweep results are independent of worker count, scheduling order, *and*
execution mode — ``tests/test_runtime_sweep.py`` and
``tests/test_runtime_process_sweep.py`` lock this in.

Cells are *executed* in cache-aware order — grouped so cells sharing a
dataset corpus run back-to-back, raising the intra-sweep hit rate — but
*returned* in request order, so the ordering is invisible to callers.

Cells whose model lacks every level the property needs (the paper's
Table 2 scoping) and pairwise properties that need an explicit partner are
not run; unlike the historical silent skip, each one is recorded as a
:class:`SkippedCell` on the returned :class:`SweepResult`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.core.results import PropertyResult, SkippedCell
from repro.errors import ObservatoryError
from repro.models.backends.padded import PaddingStats
from repro.models.backends.remote import TransportStats
from repro.runtime.cache import CacheStats
from repro.runtime.pipeline import PipelineStats

# Workers only pay off when cores exist to run cells in parallel; on a
# single-core host the pool degenerates to sequential execution.
_DEFAULT_WORKER_CAP = min(4, os.cpu_count() or 1)

# Environment override for the default execution engine; the CI matrix
# runs the whole suite under REPRO_SWEEP_EXECUTION=process so both
# engines are gated on every push.
EXECUTION_ENV = "REPRO_SWEEP_EXECUTION"
EXECUTION_MODES = ("thread", "process")

# Environment override for the default worker count, mirroring
# REPRO_SWEEP_EXECUTION: an explicit max_workers argument or
# RuntimeConfig.max_workers still wins.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

# Which default dataset corpus each property characterizes over.  Cells
# sharing a corpus are scheduled back-to-back (per model) so embeddings
# computed for one property are still memory-tier-warm for the next —
# cache-aware ordering.  perturbation_robustness runs the drspider suite,
# which is *derived from* wikitables and embeds the original wikitables
# tables alongside the perturbed variants — hence its wikitables group.
# A property missing here orders by its own name (correct, just not
# grouped); tests/test_runtime_process_sweep.py guards that every
# registered property stays mapped.
PROPERTY_CORPUS = {
    "row_order_insignificance": "wikitables",
    "column_order_insignificance": "wikitables",
    "sample_fidelity": "wikitables",
    "perturbation_robustness": "wikitables",
    "heterogeneous_context": "sotab",
    "functional_dependencies": "spider",
    "join_relationship": "nextiajd",
    "entity_stability": "entities",
}


def resolve_execution(
    explicit: Optional[str], configured: Optional[str] = None
) -> str:
    """Pick the sweep engine: explicit arg > RuntimeConfig > env > thread."""
    choice = explicit or configured or os.environ.get(EXECUTION_ENV) or "thread"
    if choice not in EXECUTION_MODES:
        raise ObservatoryError(
            f"unknown execution mode {choice!r}; expected one of {EXECUTION_MODES}"
        )
    return choice


def resolve_workers(explicit: Optional[int] = None) -> Optional[int]:
    """Worker count: explicit argument > $REPRO_SWEEP_WORKERS > None (auto).

    The caller passes whatever the API/RuntimeConfig resolved; only when
    that is unset does the environment override apply, so a session-wide
    ``REPRO_SWEEP_WORKERS=8`` never silently beats an explicit argument.
    The env value must be a positive integer — a typo'd override failing
    loudly beats a sweep quietly running single-worker.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ObservatoryError(
            f"${WORKERS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ObservatoryError(
            f"${WORKERS_ENV} must be a positive integer, got {raw!r}"
        )
    return workers


@dataclasses.dataclass
class SweepCell:
    """One completed (model, property) characterization.

    ``seconds`` is the cell's wall clock; the ``*_seconds`` phase fields
    split it into serialization (Python), encoding (BLAS forward passes,
    including background encode work the cell submitted), and aggregation
    (numpy pooling) — the observability that makes hot cells (the known
    heterogeneous_context ~3x skew) diagnosable from a report.
    """

    model_name: str
    property_name: str
    result: PropertyResult
    seconds: float
    serialize_seconds: float = 0.0
    encode_seconds: float = 0.0
    aggregate_seconds: float = 0.0

    def record(self) -> Dict[str, object]:
        """Flat observability record for reports and JSON artifacts."""
        return {
            "model": self.model_name,
            "property": self.property_name,
            "seconds": self.seconds,
            "serialize_seconds": self.serialize_seconds,
            "encode_seconds": self.encode_seconds,
            "aggregate_seconds": self.aggregate_seconds,
        }


@dataclasses.dataclass
class SweepResult:
    """Structured outcome of ``Observatory.sweep``.

    Attributes:
        cells: completed cells in request order.
        skipped: cells that were not run, with reasons — nothing is
            dropped silently.
        seconds: wall-clock of the whole sweep.
        workers: worker-pool size used (threads or processes).
        execution: engine that ran the cells (``"thread"``/``"process"``).
        backend: encoder-backend description (name, tier width, tolerance)
            the sweep's embeddings went through.
        cache_stats: embedding-cache counters — the shared cache in thread
            mode, the merged per-worker counters in process mode, ``None``
            when the runtime cache is disabled.
        pipeline: async-encode accounting (overlap ratio), merged across
            executors/workers; ``None`` when streaming never engaged.
        padding: padded-backend waste accounting; ``None`` under the
            exact local backend.
        transport: remote-transport accounting (round trips, retries,
            bytes), merged across workers; ``None`` unless the remote
            backend carried chunks for this sweep.
        scheduler: work-stealing dispatch accounting
            (:class:`~repro.runtime.scheduler.SchedulerTelemetry` —
            per-worker busy/idle/steal counters, redispatches, crash
            salvage); ``None`` under the thread engine.
    """

    cells: List[SweepCell] = dataclasses.field(default_factory=list)
    skipped: List[SkippedCell] = dataclasses.field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1
    execution: str = "thread"
    backend: str = "local (exact)"
    cache_stats: Optional[CacheStats] = None
    pipeline: Optional[PipelineStats] = None
    padding: Optional[PaddingStats] = None
    transport: Optional[TransportStats] = None
    scheduler: Optional["SchedulerTelemetry"] = None  # noqa: F821

    @property
    def records(self) -> List[Dict[str, object]]:
        """Per-cell observability records (wall time + phase split)."""
        return [cell.record() for cell in self.cells]

    def slowest(self, n: int = 3) -> List[SweepCell]:
        """The ``n`` longest-running cells, slowest first."""
        return sorted(self.cells, key=lambda c: c.seconds, reverse=True)[:n]

    @property
    def results(self) -> List[PropertyResult]:
        return [cell.result for cell in self.cells]

    @property
    def model_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.model_name, None)
        return list(seen)

    @property
    def property_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.property_name, None)
        return list(seen)

    def get(self, model_name: str, property_name: str) -> Optional[PropertyResult]:
        """The cell result for (model, property), or ``None`` if absent."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.property_name == property_name:
                return cell.result
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "cells": [
                {**cell.record(), "result": cell.result.to_dict()}
                for cell in self.cells
            ],
            "skipped": [dataclasses.asdict(s) for s in self.skipped],
            "seconds": self.seconds,
            "workers": self.workers,
            "execution": self.execution,
            "backend": self.backend,
            "cache": self.cache_stats.to_dict() if self.cache_stats else None,
            "pipeline": self.pipeline.to_dict() if self.pipeline else None,
            "padding": dataclasses.asdict(self.padding) if self.padding else None,
            "transport": self.transport.to_dict() if self.transport else None,
            "scheduler": self.scheduler.to_dict() if self.scheduler else None,
        }

    def __repr__(self) -> str:
        return (
            f"SweepResult(cells={len(self.cells)}, skipped={len(self.skipped)}, "
            f"seconds={self.seconds:.2f}, workers={self.workers}, "
            f"execution={self.execution!r}, backend={self.backend!r})"
        )


def plan_cells(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
) -> Tuple[List[Tuple[str, str]], List[SkippedCell]]:
    """Split the matrix into runnable cells and recorded skips."""
    from repro.core.registry import load_property

    runnable: List[Tuple[str, str]] = []
    skipped: List[SkippedCell] = []
    for property_name in property_names:
        runner = load_property(property_name)
        for model_name in model_names:
            if property_name == "entity_stability":
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        "pairwise property; run characterize(..., partner_model=...)",
                    )
                )
                continue
            model = observatory.model(model_name)
            if runner.levels and not any(model.supports(lv) for lv in runner.levels):
                needed = "/".join(lv.value for lv in runner.levels)
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        f"model exposes no {needed} embeddings",
                    )
                )
                continue
            runnable.append((model_name, property_name))
    return runnable, skipped


def order_cells(cells: Sequence[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Cache-aware execution order: model-major, corpus-grouped within.

    Keeping one model's cells together maximizes reuse of its executor's
    cached embeddings, and running properties that share a corpus
    back-to-back (P1/P2/P5/P7 all characterize over wikitables) means the
    second property's tables are still warm from the first.  Models and
    corpora keep their first-seen request order so the schedule — and
    thus shard assignment — is deterministic.
    """
    model_rank: Dict[str, int] = {}
    corpus_rank: Dict[str, int] = {}
    property_rank: Dict[str, int] = {}
    for model_name, property_name in cells:
        model_rank.setdefault(model_name, len(model_rank))
        corpus = PROPERTY_CORPUS.get(property_name, property_name)
        corpus_rank.setdefault(corpus, len(corpus_rank))
        property_rank.setdefault(property_name, len(property_rank))
    return sorted(
        cells,
        key=lambda cell: (
            model_rank[cell[0]],
            corpus_rank[PROPERTY_CORPUS.get(cell[1], cell[1])],
            property_rank[cell[1]],
        ),
    )


def run_sweep(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
    *,
    max_workers: Optional[int] = None,
    execution: Optional[str] = None,
) -> SweepResult:
    """Execute the matrix on a worker pool; see module docstring."""
    if not model_names:
        raise ObservatoryError("sweep needs at least one model")
    if not property_names:
        raise ObservatoryError("sweep needs at least one property")
    engine = resolve_execution(execution, getattr(observatory.runtime, "execution", None))
    max_workers = resolve_workers(max_workers)
    backend_desc = observatory.backend_description()
    # Executors accumulate pipeline/padding counters for their lifetime;
    # snapshot here so this sweep reports only its own work, not a
    # previous sweep's (thread engine reuses the executors).
    pipeline_before = observatory.pipeline_stats()
    padding_before = observatory.padding_stats()
    transport_before = observatory.transport_stats()
    started = time.perf_counter()
    runnable, skipped = plan_cells(observatory, model_names, property_names)
    # Execute cache-aware, return request-order (see order_cells).
    request_rank = {cell: i for i, cell in enumerate(runnable)}
    ordered = order_cells(runnable)

    if engine == "process":
        if not ordered:
            # Every cell was skipped: no workers spawn, no cache is
            # touched — report that honestly rather than falling through
            # to the thread path with the parent's live counters.
            return SweepResult(
                skipped=skipped,
                seconds=time.perf_counter() - started,
                workers=0,
                execution="process",
                backend=backend_desc,
                cache_stats=None,
            )
        # The work-stealing scheduler is the process engine; the static
        # ProcessShardedSweep survives as its equivalence oracle.
        from repro.runtime.scheduler import WorkStealingSweep

        engine_result = WorkStealingSweep(
            observatory, max_workers=max_workers
        ).run(ordered)
        cells = sorted(
            engine_result.cells,
            key=lambda c: request_rank[(c.model_name, c.property_name)],
        )
        return SweepResult(
            cells=cells,
            skipped=skipped,
            seconds=time.perf_counter() - started,
            workers=engine_result.workers,
            execution="process",
            backend=backend_desc,
            cache_stats=engine_result.cache_stats,
            pipeline=engine_result.pipeline,
            padding=engine_result.padding,
            transport=engine_result.transport,
            scheduler=engine_result.scheduler,
        )

    # Materialize shared resources serially before fanning out: dataset
    # generators and model construction are the only mutating steps.
    for model_name in {m for m, _ in ordered}:
        observatory.executor(model_name)
    for property_name in {p for _, p in ordered}:
        observatory.prepare_property_data(property_name)

    workers = max_workers or min(_DEFAULT_WORKER_CAP, max(1, len(ordered)))

    def run_cell(cell: Tuple[str, str]) -> SweepCell:
        model_name, property_name = cell
        timings = telemetry.start_cell()
        t0 = time.perf_counter()
        try:
            result = observatory.characterize(model_name, property_name)
        finally:
            telemetry.stop_cell()
        return SweepCell(
            model_name,
            property_name,
            result,
            time.perf_counter() - t0,
            serialize_seconds=timings.serialize_seconds,
            encode_seconds=timings.encode_seconds,
            aggregate_seconds=timings.aggregate_seconds,
        )

    cells: List[SweepCell]
    if workers <= 1 or len(ordered) <= 1:
        cells = [run_cell(c) for c in ordered]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            cells = list(pool.map(run_cell, ordered))
    cells.sort(key=lambda c: request_rank[(c.model_name, c.property_name)])

    cache = getattr(observatory, "cache", None)
    pipeline = observatory.pipeline_stats().since(pipeline_before)
    padding = observatory.padding_stats()
    if padding is not None and padding_before is not None:
        padding = padding.since(padding_before)
    if padding is not None and not padding.padded_batches:
        padding = None  # padded backend configured but nothing was padded
    transport = observatory.transport_stats()
    if transport is not None and transport_before is not None:
        transport = transport.since(transport_before)
    if transport is not None and not transport.chunks:
        transport = None  # remote configured but nothing crossed the wire
    return SweepResult(
        cells=cells,
        skipped=skipped,
        seconds=time.perf_counter() - started,
        workers=workers,
        execution=engine,
        backend=backend_desc,
        cache_stats=cache.stats if cache is not None else None,
        pipeline=pipeline if pipeline.batches else None,
        padding=padding,
        transport=transport,
    )
