"""Parallel (model × property) sweep execution.

``Observatory.sweep`` delegates here: every (model, property) cell of the
requested matrix is an independent, deterministically seeded unit of work.
Cells run on a thread pool — the surrogate encoders spend their time in
numpy, which releases the GIL — while all executors share one embedding
cache, so a table embedded for P1 is a cache hit when P2 asks for it.

Determinism: a cell's result is a pure function of (seed, model, property,
dataset sizes).  The cache only short-circuits recomputation of values
that would have been identical anyway, and cells never exchange data, so
sweep results are independent of worker count and scheduling order —
``tests/test_runtime_sweep.py`` locks this in.

Cells whose model lacks every level the property needs (the paper's
Table 2 scoping) and pairwise properties that need an explicit partner are
not run; unlike the historical silent skip, each one is recorded as a
:class:`SkippedCell` on the returned :class:`SweepResult`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import PropertyResult, SkippedCell
from repro.errors import ObservatoryError

# Threads only pay off when cores exist to run numpy sections in parallel;
# on a single-core host the pool degenerates to sequential execution.
_DEFAULT_WORKER_CAP = min(4, os.cpu_count() or 1)


@dataclasses.dataclass
class SweepCell:
    """One completed (model, property) characterization."""

    model_name: str
    property_name: str
    result: PropertyResult
    seconds: float


@dataclasses.dataclass
class SweepResult:
    """Structured outcome of ``Observatory.sweep``.

    Attributes:
        cells: completed cells in (model-major) request order.
        skipped: cells that were not run, with reasons — nothing is
            dropped silently.
        seconds: wall-clock of the whole sweep.
        workers: worker-pool size used.
        cache_stats: shared embedding-cache counters (``None`` when the
            runtime cache is disabled).
    """

    cells: List[SweepCell] = dataclasses.field(default_factory=list)
    skipped: List[SkippedCell] = dataclasses.field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1
    cache_stats: Optional[object] = None

    @property
    def results(self) -> List[PropertyResult]:
        return [cell.result for cell in self.cells]

    @property
    def model_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.model_name, None)
        return list(seen)

    @property
    def property_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.property_name, None)
        return list(seen)

    def get(self, model_name: str, property_name: str) -> Optional[PropertyResult]:
        """The cell result for (model, property), or ``None`` if absent."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.property_name == property_name:
                return cell.result
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "cells": [
                {
                    "model": cell.model_name,
                    "property": cell.property_name,
                    "seconds": cell.seconds,
                    "result": cell.result.to_dict(),
                }
                for cell in self.cells
            ],
            "skipped": [dataclasses.asdict(s) for s in self.skipped],
            "seconds": self.seconds,
            "workers": self.workers,
            "cache": self.cache_stats.to_dict() if self.cache_stats else None,
        }

    def __repr__(self) -> str:
        return (
            f"SweepResult(cells={len(self.cells)}, skipped={len(self.skipped)}, "
            f"seconds={self.seconds:.2f}, workers={self.workers})"
        )


def plan_cells(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
) -> Tuple[List[Tuple[str, str]], List[SkippedCell]]:
    """Split the matrix into runnable cells and recorded skips."""
    from repro.core.registry import load_property

    runnable: List[Tuple[str, str]] = []
    skipped: List[SkippedCell] = []
    for property_name in property_names:
        runner = load_property(property_name)
        for model_name in model_names:
            if property_name == "entity_stability":
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        "pairwise property; run characterize(..., partner_model=...)",
                    )
                )
                continue
            model = observatory.model(model_name)
            if runner.levels and not any(model.supports(lv) for lv in runner.levels):
                needed = "/".join(lv.value for lv in runner.levels)
                skipped.append(
                    SkippedCell(
                        model_name,
                        property_name,
                        f"model exposes no {needed} embeddings",
                    )
                )
                continue
            runnable.append((model_name, property_name))
    return runnable, skipped


def run_sweep(
    observatory,
    model_names: Sequence[str],
    property_names: Sequence[str],
    *,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Execute the matrix on a worker pool; see module docstring."""
    if not model_names:
        raise ObservatoryError("sweep needs at least one model")
    if not property_names:
        raise ObservatoryError("sweep needs at least one property")
    started = time.perf_counter()
    runnable, skipped = plan_cells(observatory, model_names, property_names)

    # Materialize shared resources serially before fanning out: dataset
    # generators and model construction are the only mutating steps.
    for model_name in {m for m, _ in runnable}:
        observatory.executor(model_name)
    for property_name in {p for _, p in runnable}:
        observatory.prepare_property_data(property_name)

    workers = max_workers or min(_DEFAULT_WORKER_CAP, max(1, len(runnable)))

    def run_cell(cell: Tuple[str, str]) -> SweepCell:
        model_name, property_name = cell
        t0 = time.perf_counter()
        result = observatory.characterize(model_name, property_name)
        return SweepCell(model_name, property_name, result, time.perf_counter() - t0)

    cells: List[SweepCell]
    if workers <= 1 or len(runnable) <= 1:
        cells = [run_cell(c) for c in runnable]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            cells = list(pool.map(run_cell, runnable))

    cache = getattr(observatory, "cache", None)
    return SweepResult(
        cells=cells,
        skipped=skipped,
        seconds=time.perf_counter() - started,
        workers=workers,
        cache_stats=cache.stats if cache is not None else None,
    )
