"""Embedding cache: in-memory LRU tier + optional bounded on-disk tier.

Entries are keyed by ``(model_name, kind, fingerprint)`` where ``kind`` is
an embedding level (``"column"``, ``"row"``, ``"table"``, …) or a composite
request kind (``"cells/<coords-hash>"``).  Values are either a single
``np.ndarray`` or a dict of arrays (cell/entity requests).

The memory tier is a thread-safe LRU bounded by entry count.  The optional
disk tier (:class:`~repro.runtime.disk.DiskTier`) persists plain-array
entries as ``.npy`` files governed by a versioned JSON index, a byte
budget, and an age limit, so repeated benchmark runs — and the worker
processes of a sharded sweep, which share the directory — only pay for
what actually changed; dict-valued entries stay memory-only.  All
accounting is exposed as :class:`CacheStats` for reporting and the
bench-smoke CI gate.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.runtime.disk import DiskTier
from repro.runtime.fingerprint import cache_entry_digest

CacheKey = Tuple[str, ...]
CacheValue = Union[np.ndarray, Dict[object, np.ndarray]]

# Salt mixed into every disk-tier filename.  The on-disk cache outlives the
# process, so entries must be invalidated whenever the embedding *math*
# changes even though table content (the key) did not.  Bump this constant
# in any PR that alters encoder numerics, serialization, aggregation, or
# model configs — old entries then simply miss instead of silently serving
# stale embeddings.
CACHE_SCHEMA_VERSION = 1


@dataclasses.dataclass
class CacheStats:
    """Counters for cache effectiveness (hits include disk-tier hits).

    ``evictions`` counts memory-tier LRU drops; ``disk_evictions`` counts
    disk-tier reclaims (size budget or age expiry); ``disk_drops`` counts
    corrupt/torn disk entries discarded on read.  Stats are plain counters
    so per-process sweep shards can be summed with :meth:`merged`.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_puts: int = 0
    disk_evictions: int = 0
    disk_drops: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @classmethod
    def merged(cls, parts: Iterable["CacheStats"]) -> "CacheStats":
        """Sum of several stats (e.g. one per sweep worker process)."""
        total = cls()
        for part in parts:
            for field in dataclasses.fields(cls):
                setattr(
                    total,
                    field.name,
                    getattr(total, field.name) + getattr(part, field.name),
                )
        return total

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_puts": self.disk_puts,
            "disk_evictions": self.disk_evictions,
            "disk_drops": self.disk_drops,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.2%}, evictions={self.evictions}, "
            f"disk_evictions={self.disk_evictions})"
        )


class EmbeddingCache:
    """Bounded, thread-safe LRU of embedding results with a disk tier.

    Args:
        max_entries: memory-tier capacity; least recently used entries are
            evicted first (they remain on disk if the disk tier is active).
        disk_dir: optional directory for the persistent tier.  Only plain
            ``np.ndarray`` values are persisted.
        disk_max_bytes: byte budget of the disk tier (``None`` = unbounded).
        disk_max_age: seconds after which disk entries expire
            (``None`` = never).
        clock: time source for the disk tier's eviction policy.
        lock_timeout / stale_lock_age: disk-tier ``index.lock`` patience,
            threaded from :class:`~repro.runtime.faults.FaultPolicy`.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        disk_dir: Optional[str] = None,
        *,
        disk_max_bytes: Optional[int] = None,
        disk_max_age: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        lock_timeout: float = 5.0,
        stale_lock_age: float = 10.0,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CacheValue]" = OrderedDict()
        self._lock = threading.Lock()
        self.disk: Optional[DiskTier] = None
        if disk_dir is not None:
            self.disk = DiskTier(
                disk_dir,
                max_bytes=disk_max_bytes,
                max_age=disk_max_age,
                clock=clock,
                lock_timeout=lock_timeout,
                stale_lock_age=stale_lock_age,
            )

    def set_deadline(self, deadline) -> None:
        """Forward a live sweep budget to the disk tier's lock waits."""
        if self.disk is not None:
            self.disk.set_deadline(deadline)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _entry_name(self, key: CacheKey) -> str:
        # CACHE_SCHEMA_VERSION is read at call time so a bump (or a test
        # monkeypatching it) invalidates every outstanding entry name.
        return cache_entry_digest(key, CACHE_SCHEMA_VERSION)

    def get(self, key: CacheKey) -> Optional[CacheValue]:
        """Look up ``key`` in memory, then disk; ``None`` on a miss.

        Returned arrays are read-only views of the cached entry (mutating
        one would corrupt every aliased result); dict-valued entries come
        back as shallow copies so callers may add/remove keys freely.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return dict(value) if isinstance(value, dict) else value
        if self.disk is not None:
            value = self.disk.get(self._entry_name(key))
            if value is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._sync_disk_counters()
                    self._store(key, value)
                return value
            with self._lock:
                self._sync_disk_counters()
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: CacheKey, value: CacheValue) -> None:
        """Insert ``value`` (also written to the disk tier when eligible)."""
        with self._lock:
            self.stats.puts += 1
            self._store(key, value)
        if self.disk is not None and isinstance(value, np.ndarray):
            stored = self.disk.put(self._entry_name(key), value)
            with self._lock:
                if stored:
                    self.stats.disk_puts += 1
                self._sync_disk_counters()

    def _sync_disk_counters(self) -> None:
        # Caller holds the lock.  The tier's counters are cumulative and
        # monotonic, so mirroring them by assignment is race-free —
        # accumulating per-call deltas would double-count under the
        # thread-pool sweep (two threads reading the same "before").
        self.stats.disk_evictions = self.disk.evictions
        self.stats.disk_drops = self.disk.drops

    def _store(self, key: CacheKey, value: CacheValue) -> None:
        # Caller holds the lock.  Freeze arrays so external mutation of a
        # returned result raises instead of silently poisoning the cache.
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        elif isinstance(value, dict):
            for member in value.values():
                if isinstance(member, np.ndarray):
                    member.setflags(write=False)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier (disk entries are kept)."""
        with self._lock:
            self._entries.clear()
