"""The characterization runtime: batching, caching, and parallel sweeps.

Observatory's workload is a (model × property × dataset) matrix whose
properties repeatedly re-embed the same tables under permutations, samples,
and perturbations.  This package removes that redundancy:

- :mod:`repro.runtime.fingerprint` — content hashes that identify an
  embedding request exactly (order-sensitive, type-aware).
- :mod:`repro.runtime.cache` — a thread-safe LRU embedding cache keyed by
  ``(model, level, fingerprint)`` with an optional on-disk tier.
- :mod:`repro.runtime.planner` — :class:`EmbeddingExecutor`, which
  deduplicates requests, bundles levels into one encoder pass, and drives
  the encoder in configurable batches.
- :mod:`repro.runtime.pipeline` — :class:`EncodeLoop`, the background
  asyncio loop the executor streams encoder batches through so
  serialization/fingerprinting overlap the forward passes (BLAS releases
  the GIL); :class:`PipelineStats` reports the overlap ratio.
- :mod:`repro.runtime.disk` — :class:`DiskTier`, the bounded, indexed,
  crash-safe persistent tier (versioned JSON index, byte/age LRU
  eviction, atomic write-temp-then-rename, stale-lock reclaim).
- :mod:`repro.runtime.sweep` — ``Observatory.sweep``'s worker-pool engine
  returning a structured :class:`SweepResult` (including skipped cells).
- :mod:`repro.runtime.scheduler` — :class:`WorkStealingSweep`, the
  ``execution="process"`` engine: persistent spawned workers pull
  LPT-ordered corpus-affinity :class:`WorkGroup`\\ s from a dynamic
  queue, with straggler re-dispatch and crash salvage
  (:class:`SchedulerTelemetry` reports busy/idle/steal per worker).
- :mod:`repro.runtime.process_sweep` — :class:`ProcessShardedSweep`,
  the legacy static-shard process engine, retained as the scheduler's
  bit-identical equivalence oracle.
- :mod:`repro.runtime.journal` — :class:`SweepJournal`, the write-ahead
  per-cell progress log behind ``sweep(journal_dir=..., resume=True)``:
  digest-verified JSONL segments under a plan-fingerprint header, so a
  killed sweep replays finished cells and dispatches only the remainder.
- :mod:`repro.runtime.faults` — :class:`FaultPolicy`/:class:`Deadline`,
  the single failure-budget config (wall-clock deadline, per-layer retry
  budgets, backoff envelope, lock patience) threaded from
  :class:`RuntimeConfig` through scheduler salvage, remote transport
  retries, and disk-lock waits.
"""

from repro.runtime.cache import CacheStats, EmbeddingCache
from repro.runtime.disk import DiskTier
from repro.runtime.faults import Deadline, FaultPolicy
from repro.runtime.journal import SweepJournal, plan_fingerprint
from repro.runtime.fingerprint import (
    cache_entry_digest,
    coords_fingerprint,
    table_fingerprint,
    value_column_fingerprint,
)
from repro.runtime.pipeline import (
    EncodeLoop,
    EncodeLoopClosedError,
    EncodeLoopStuckError,
    PipelineStats,
    encode_loop,
)
from repro.models.backends.transport import TransportConfig
from repro.runtime.planner import (
    BUNDLE_LEVELS,
    EmbeddingExecutor,
    RuntimeConfig,
    as_executor,
)
from repro.runtime.process_sweep import ProcessShardedSweep, partition_shards
from repro.runtime.scheduler import (
    CostModel,
    GroupScheduler,
    SchedulerTelemetry,
    WorkGroup,
    WorkStealingSweep,
    WorkerTelemetry,
    build_groups,
    load_cost_model,
    lpt_order,
)
from repro.runtime.sweep import (
    EXECUTION_MODES,
    ON_ERROR_MODES,
    CellFailure,
    SkippedCell,
    SweepCell,
    SweepResult,
    order_cells,
    resolve_execution,
    resolve_on_error,
    resolve_workers,
    run_sweep,
)

__all__ = [
    "BUNDLE_LEVELS",
    "CacheStats",
    "CellFailure",
    "CostModel",
    "Deadline",
    "DiskTier",
    "EXECUTION_MODES",
    "FaultPolicy",
    "ON_ERROR_MODES",
    "EmbeddingCache",
    "EmbeddingExecutor",
    "EncodeLoop",
    "EncodeLoopClosedError",
    "EncodeLoopStuckError",
    "GroupScheduler",
    "PipelineStats",
    "ProcessShardedSweep",
    "SchedulerTelemetry",
    "WorkGroup",
    "WorkStealingSweep",
    "WorkerTelemetry",
    "encode_loop",
    "RuntimeConfig",
    "SkippedCell",
    "SweepCell",
    "SweepJournal",
    "SweepResult",
    "TransportConfig",
    "as_executor",
    "build_groups",
    "cache_entry_digest",
    "coords_fingerprint",
    "load_cost_model",
    "lpt_order",
    "order_cells",
    "partition_shards",
    "plan_fingerprint",
    "resolve_execution",
    "resolve_on_error",
    "resolve_workers",
    "run_sweep",
    "table_fingerprint",
    "value_column_fingerprint",
]
