"""The characterization runtime: batching, caching, and parallel sweeps.

Observatory's workload is a (model × property × dataset) matrix whose
properties repeatedly re-embed the same tables under permutations, samples,
and perturbations.  This package removes that redundancy:

- :mod:`repro.runtime.fingerprint` — content hashes that identify an
  embedding request exactly (order-sensitive, type-aware).
- :mod:`repro.runtime.cache` — a thread-safe LRU embedding cache keyed by
  ``(model, level, fingerprint)`` with an optional on-disk tier.
- :mod:`repro.runtime.planner` — :class:`EmbeddingExecutor`, which
  deduplicates requests, bundles levels into one encoder pass, and drives
  the encoder in configurable batches.
- :mod:`repro.runtime.sweep` — ``Observatory.sweep``'s worker-pool engine
  returning a structured :class:`SweepResult` (including skipped cells).
"""

from repro.runtime.cache import CacheStats, EmbeddingCache
from repro.runtime.fingerprint import (
    coords_fingerprint,
    table_fingerprint,
    value_column_fingerprint,
)
from repro.runtime.planner import (
    BUNDLE_LEVELS,
    EmbeddingExecutor,
    RuntimeConfig,
    as_executor,
)
from repro.runtime.sweep import SkippedCell, SweepCell, SweepResult, run_sweep

__all__ = [
    "BUNDLE_LEVELS",
    "CacheStats",
    "EmbeddingCache",
    "EmbeddingExecutor",
    "RuntimeConfig",
    "SkippedCell",
    "SweepCell",
    "SweepResult",
    "as_executor",
    "coords_fingerprint",
    "run_sweep",
    "table_fingerprint",
    "value_column_fingerprint",
]
