"""Blocking HTTP client for the characterization service.

:class:`ServiceClient` is the stdlib-only counterpart of
:class:`~repro.service.app.CharacterizationService`: one keep-alive
connection (reconnecting once on a stale socket — the server may close
idle keep-alive connections between calls), gzip response negotiation,
and typed errors — a 429 surfaces as
:class:`~repro.errors.ServiceOverloadedError` carrying the server's
``Retry-After``, every other failure as
:class:`~repro.errors.ServiceError`; a client never hangs on an
overloaded service and never has to parse status codes itself.

The CLI, the concurrent-client test suite, the service benchmark, and
the CI service-smoke job all drive the service through this client, so
its blocking semantics (``characterize`` returns the finished result;
``stream_characterize`` yields cells as they land) are the service's
de-facto contract.
"""

from __future__ import annotations

import gzip
import http.client
import json
import socket
import time
from typing import Dict, Iterator, List, Optional
from urllib.parse import quote, urlsplit

from repro.errors import ServiceError, ServiceOverloadedError
from repro.runtime.sweep import SweepCell


def cells_from_result(result: Dict[str, object]) -> List[SweepCell]:
    """Reconstruct typed :class:`SweepCell` objects from a service result.

    The service ships cells in their lossless journal form, so a client
    can compare them cell-for-cell against a local
    :meth:`Observatory.sweep` run — the parity the concurrent-client
    suite asserts.
    """
    return [SweepCell.from_jsonable(cell) for cell in result.get("cells", [])]


class ServiceClient:
    """Blocking client; usable as a context manager (closes the socket)."""

    def __init__(self, url: str, *, timeout: float = 60.0):
        split = urlsplit(url)
        if split.scheme not in ("http", "") or not split.netloc and not split.path:
            raise ServiceError(f"unsupported service url {url!r}")
        netloc = split.netloc or split.path
        host, _, port = netloc.partition(":")
        self._host = host or "127.0.0.1"
        self._port = int(port or 80)
        self._timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- wire ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._conn.connect()
            # Headers and body go out as separate writes; without this the
            # Nagle / delayed-ACK interaction adds ~40ms per round trip.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:
                pass
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
    ) -> Dict[str, object]:
        """One JSON round trip; raises typed on 4xx/5xx (see module doc)."""
        body = None
        headers = {"Accept-Encoding": "gzip"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(2):  # one reconnect on a stale keep-alive socket
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                last_error = exc
                self._drop_connection()
        else:
            raise ServiceError(
                f"{method} {path} failed after reconnect: {last_error}"
            ) from last_error
        if response.getheader("Content-Encoding", "").lower() == "gzip":
            raw = gzip.decompress(raw)
        try:
            data: Dict[str, object] = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{method} {path} returned unparseable body "
                f"(status {response.status}): {exc}"
            ) from exc
        if response.status == 429:
            retry_after = float(response.getheader("Retry-After", "1") or 1)
            raise ServiceOverloadedError(
                str(data.get("error", "service overloaded")),
                retry_after=retry_after,
            )
        if response.status >= 400:
            detail = data.get("error") or repr(raw[:200])
            raise ServiceError(
                f"{method} {path} failed with {response.status}: {detail}"
            )
        return data

    # -- request plane -------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self.request("GET", "/v1/stats")

    def submit(
        self, models: List[str], properties: Optional[List[str]] = None
    ) -> Dict[str, object]:
        """Submit a characterization; returns the acceptance payload.

        Cache hits come back already finished (``status == "done"`` with
        the result inline); otherwise the payload carries the job id to
        poll or stream.
        """
        return self.request(
            "POST",
            "/v1/characterize",
            {"models": models, "properties": properties},
        )

    def job(self, job_id: str, *, wait: float = 0.0) -> Dict[str, object]:
        path = f"/v1/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def characterize(
        self,
        models: List[str],
        properties: Optional[List[str]] = None,
        *,
        timeout: float = 600.0,
    ) -> Dict[str, object]:
        """Submit and block until the result is available (or fail typed)."""
        accepted = self.submit(models, properties)
        if accepted.get("status") == "done":
            return accepted["result"]  # cache hit: finished at submit time
        job_id = str(accepted["job_id"])
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} did not finish within {timeout:g}s"
                )
            status = self.job(job_id, wait=min(remaining, 5.0))
            if status.get("status") == "done":
                return status["result"]
            if status.get("status") == "failed":
                raise ServiceError(
                    f"job {job_id} failed: "
                    f"{status.get('error_type', 'error')}: "
                    f"{status.get('error', '')}"
                )

    def stream_characterize(
        self, models: List[str], properties: Optional[List[str]] = None
    ) -> Iterator[Dict[str, object]]:
        """Submit and yield NDJSON records (cells, then a summary) live.

        Uses a dedicated connection: a live stream occupies its socket
        until the job finishes, and the client's keep-alive connection
        must stay usable for status calls meanwhile.
        """
        accepted = self.submit(models, properties)
        if accepted.get("status") == "done":
            result = accepted["result"]
            for cell in result.get("cells", []):
                yield {
                    "type": "cell",
                    "model": cell["model"],
                    "property": cell["property"],
                    "cell": cell,
                }
            yield {
                "type": "summary",
                "job_id": accepted["job_id"],
                "status": "done",
                "cells": len(result.get("cells", [])),
                "cache_hit": True,
            }
            return
        job_id = str(accepted["job_id"])
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(
                    f"stream of job {job_id} failed with {response.status}"
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    # -- table uploads -------------------------------------------------

    def upload_table(
        self,
        table_id: str,
        columns: List[List[object]],
        *,
        caption: str = "",
    ) -> Dict[str, object]:
        return self.request(
            "POST",
            "/v1/tables",
            {"table_id": table_id, "columns": columns, "caption": caption},
        )

    def table(self, table_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/tables/{table_id}")

    # -- index plane ---------------------------------------------------

    def index_create(self, directory: str, dim: int) -> Dict[str, object]:
        return self.request(
            "POST", "/v1/index/create", {"directory": directory, "dim": dim}
        )

    def index_append(
        self,
        directory: str,
        *,
        entries: Optional[List[Dict[str, object]]] = None,
        table_id: Optional[str] = None,
        model: Optional[str] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"directory": directory}
        if entries is not None:
            payload["entries"] = entries
        if table_id is not None:
            payload["table_id"] = table_id
        if model is not None:
            payload["model"] = model
        return self.request("POST", "/v1/index/append", payload)

    def index_query(
        self,
        directory: str,
        *,
        vector: Optional[List[float]] = None,
        table_id: Optional[str] = None,
        column: Optional[str] = None,
        model: Optional[str] = None,
        k: int = 5,
        prune: str = "off",
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"directory": directory, "k": k, "prune": prune}
        if vector is not None:
            payload["vector"] = vector
        if table_id is not None:
            payload["table_id"] = table_id
        if column is not None:
            payload["column"] = column
        if model is not None:
            payload["model"] = model
        return self.request("POST", "/v1/index/query", payload)

    def index_info(self, directory: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/index/info?dir={quote(directory, safe='')}")

    # -- admin ---------------------------------------------------------

    def hold(self) -> Dict[str, object]:
        return self.request("POST", "/v1/admin/hold")

    def release(self) -> Dict[str, object]:
        return self.request("POST", "/v1/admin/release")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServiceClient", "cells_from_result"]
