"""The always-on characterization service.

This package turns the one-shot library into a product surface: a
long-running HTTP service (``repro serve``) that accepts table uploads
and characterization / joinability queries, multiplexes concurrent
clients over the shared sweep engine behind a bounded admission queue,
streams incremental per-cell results, serves repeat queries straight
from the fingerprinted result cache, and journals accepted requests so a
killed service replays them on restart.

Layers (each one re-based on an existing seam, not built beside it):

- :mod:`repro.service.http` — the shared keep-alive HTTP/1.1 + gzip +
  JSON wire plane, extracted from the loopback encoder service; the
  **one** server implementation in the tree
  (:class:`~repro.testing.encoder_service.LoopbackEncoderService` and
  :class:`~repro.testing.encoder_service.FleetHarness` are rebuilt on
  it).
- :mod:`repro.service.encode` — the ``/encode`` endpoint semantics
  (``TokenArray`` wire + ``ModelConfig`` codecs from the remote
  backend protocol), shared by the loopback test double and ``repro
  serve`` — a served instance doubles as an encoder-fleet replica.
- :mod:`repro.service.journal` — the request journal: accepted-but-
  unfinished requests in the PR 9 write-ahead segment format, replayed
  on restart.
- :mod:`repro.service.app` — :class:`CharacterizationService`: request
  plane (admission queue, jobs, streaming, result cache), index plane
  (:class:`~repro.index.ColumnIndex` build/append/query with
  generation-checked shared handles), durability plane.
- :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  HTTP client the CLI, tests, benchmarks, and CI smoke use.
"""

from repro.service.app import CharacterizationService, ServiceConfig
from repro.service.client import ServiceClient, cells_from_result
from repro.service.http import HttpPlane, WireRequest, WireResponse
from repro.service.journal import RequestJournal, pending_requests

__all__ = [
    "CharacterizationService",
    "HttpPlane",
    "RequestJournal",
    "ServiceClient",
    "ServiceConfig",
    "WireRequest",
    "WireResponse",
    "cells_from_result",
    "pending_requests",
]
