"""The ``/encode`` endpoint semantics, shared by every server in the tree.

This is the service half of the remote-encoder protocol (PR 5/6):
requests carry :func:`~repro.models.token_array.wire_from_jsonable`
TokenArray payloads plus a :meth:`ModelConfig.to_jsonable` model
description; responses carry base64 hidden states with digest echoes.
Historically this logic lived inside the loopback test double; now the
always-on characterization service mounts the same endpoint, so a
``repro serve`` instance doubles as an encoder-fleet replica — and there
is exactly one implementation of the wire semantics to keep honest.

:class:`EncoderPool` caches one rebuilt encoder per (model config,
backend mode, padding tier); :meth:`EncoderPool.encode_request` runs one
request end to end and returns the jsonable response body.  Fault
injection stays where it belongs — in
:mod:`repro.testing.encoder_service`, layered *around* these semantics.
"""

from __future__ import annotations

import base64
import hashlib
import json
import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.models.backends.local import LocalBackend
from repro.models.backends.padded import PaddedBackend
from repro.models.backends.remote import PROTOCOL_VERSION
from repro.models.config import ModelConfig
from repro.models.encoder import Encoder
from repro.models.token_array import TokenArray, wire_from_jsonable

#: Protocol versions the service accepts: 2 is current (``state_dtype``);
#: 1 is the pre-fleet client, still answered with float64 states.
ACCEPTED_PROTOCOLS = (1, PROTOCOL_VERSION)


def state_entry(
    digest: str, state: np.ndarray, state_dtype: str = "float64", *, protocol: int = 2
) -> Dict[str, object]:
    """One response entry: base64 state bytes + integrity digest + echo."""
    wire_dtype = "<f4" if state_dtype == "float32" else "<f8"
    raw = np.ascontiguousarray(state.astype(wire_dtype, copy=False)).tobytes()
    entry = {
        "digest": digest,
        "shape": list(state.shape),
        "data": base64.b64encode(raw).decode("ascii"),
        "data_digest": hashlib.sha256(raw).hexdigest(),
    }
    if protocol >= 2:
        entry["dtype"] = state_dtype
    return entry


class EncoderPool:
    """Encoders rebuilt from shipped :class:`ModelConfig`, cached per key.

    The cache key is (canonical config JSON, backend mode, padding tier)
    — the full determinant of the encoder's numerics.  Thread-safe: the
    HTTP plane dispatches requests on per-connection threads.

    Attributes:
        requests_served: successful encode responses produced.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._encoders: Dict[Tuple[str, str, int], Encoder] = {}
        self.requests_served = 0

    def encoder_for(self, config: ModelConfig, mode: str, tier: int) -> Encoder:
        """One cached encoder per (model config, backend mode, tier)."""
        key = (json.dumps(config.to_jsonable(), sort_keys=True), mode, tier)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is None:
                backend = (
                    PaddedBackend(tier_width=tier)
                    if mode == "padded"
                    else LocalBackend()
                )
                encoder = Encoder(config, backend=backend)
                self._encoders[key] = encoder
            return encoder

    def encode_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Validate, decode, encode, and package one wire request.

        Raises ``ValueError``/``KeyError`` on malformed requests (the
        HTTP plane maps those to 400) and lets backend/wire integrity
        errors propagate typed.
        """
        protocol = request.get("protocol")
        if protocol not in ACCEPTED_PROTOCOLS:
            raise ValueError(
                f"protocol mismatch: service speaks {ACCEPTED_PROTOCOLS}, "
                f"request says {protocol!r}"
            )
        mode = request.get("mode", "exact")
        if mode not in ("exact", "padded"):
            raise ValueError(f"unknown mode {mode!r}")
        state_dtype = str(request.get("state_dtype", "float64"))
        if state_dtype not in ("float64", "float32"):
            raise ValueError(f"unknown state_dtype {state_dtype!r}")
        config = ModelConfig.from_jsonable(request["model"])
        tier = int(request.get("padding_tier", 8))
        batch_size = int(request.get("batch_size", 8))
        encoder = self.encoder_for(config, mode, tier)
        arrays: List[TokenArray] = []
        digests: List[str] = []
        for payload in request["sequences"]:
            wire = wire_from_jsonable(payload)
            arrays.append(TokenArray.from_wire(wire))  # digest-checked
            digests.append(str(wire["digest"]))
        states = encoder.backend.encode_batch(encoder, arrays, batch_size=batch_size)
        entries = [
            state_entry(digest, state, state_dtype, protocol=int(protocol))
            for digest, state in zip(digests, states)
        ]
        with self._lock:
            self.requests_served += 1
        return {"states": entries}
