"""Request journal: accepted-but-unfinished service requests, durably.

The admission contract of the characterization service is *accepted
means finished*: once a request clears the bounded queue and gets a 202,
a crash of the service must not silently lose it.  :class:`RequestJournal`
makes that hold by reusing the PR 9 write-ahead machinery wholesale —
the same ``plan.json`` fingerprint header, the same append-only
digest-verified JSONL segments with fsync-per-record and
seal-by-rename, the same first-record-wins replay — with request-level
record types layered on top:

- ``{"type": "request", "id": ..., "payload": ...}`` — appended *before*
  the 202 is sent;
- ``{"type": "done", "id": ..., "status": ...}`` — appended when the job
  reaches a terminal state (``done`` or ``failed``).

On restart, :meth:`RequestJournal.open` replays the segments: every
request without a matching ``done`` is in :attr:`pending`, and the
service re-enqueues it.  The per-job *sweep* journals (which carry the
actual cell results) live beside this one, so a replayed request resumes
its sweep rather than recomputing finished cells.

The plan header is a constant — a request journal has no sweep-shaped
identity — so :meth:`open` never raises a stale-fingerprint error for a
journal this build wrote; a directory holding some *other* journal kind
is refused typed (:class:`~repro.errors.RequestJournalError`).
"""

from __future__ import annotations

import os
from typing import Dict

from repro.errors import JournalError, RequestJournalError
from repro.runtime.journal import (
    JOURNAL_VERSION,
    PLAN_FILE,
    SweepJournal,
    iter_records,
)

#: The constant plan header every request journal is fingerprinted over.
REQUEST_PLAN = {"kind": "request-journal", "journal_version": JOURNAL_VERSION}


class RequestJournal(SweepJournal):
    """Write-ahead journal of accepted service requests (see module doc).

    Construct via :meth:`open` — it starts a fresh journal when the
    directory holds none and resumes (replaying accepted-but-unfinished
    requests into :attr:`pending`) when one exists.

    Attributes:
        pending: request payloads accepted but not yet finished, in
            acceptance order, keyed by request id.  Populated by replay
            on open and maintained by :meth:`record_request` /
            :meth:`record_done`.
        replayed_done: terminal records seen during replay (stats only).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pending: Dict[str, Dict[str, object]] = {}
        self.replayed_done = 0

    @classmethod
    def open(cls, directory: str) -> "RequestJournal":
        """Open (resuming) or create the request journal at ``directory``."""
        try:
            if os.path.exists(os.path.join(directory, PLAN_FILE)):
                journal = cls.resume(directory, dict(REQUEST_PLAN))
            else:
                journal = cls.start(directory, dict(REQUEST_PLAN))
        except RequestJournalError:
            raise
        except JournalError as exc:
            # Includes the stale-fingerprint case: the directory holds a
            # journal of a different kind (e.g. a sweep journal), which a
            # service must refuse rather than overwrite.
            raise RequestJournalError(str(exc)) from exc
        journal._replay_requests()
        return journal

    def _replay_requests(self) -> None:
        for record in iter_records(self.directory):
            kind = record.get("type")
            if kind == "request":
                self.pending.setdefault(
                    str(record["id"]), dict(record.get("payload") or {})
                )
            elif kind == "done":
                self.pending.pop(str(record["id"]), None)
                self.replayed_done += 1

    # -- appends -------------------------------------------------------

    def record_request(
        self, request_id: str, payload: Dict[str, object]
    ) -> None:
        """Journal an accepted request *before* acknowledging it."""
        self._append({"type": "request", "id": request_id, "payload": payload})
        with self._lock:
            self.pending.setdefault(request_id, payload)

    def record_done(self, request_id: str, status: str = "done") -> None:
        """Journal a terminal outcome; the request stops replaying."""
        self._append({"type": "done", "id": request_id, "status": status})
        with self._lock:
            self.pending.pop(request_id, None)

    def _append(self, record: Dict[str, object]) -> None:
        try:
            super()._append(record)
        except RequestJournalError:
            raise
        except JournalError as exc:
            raise RequestJournalError(str(exc)) from exc

    # The sweep-shaped appenders make no sense on a request journal;
    # refuse them typed rather than writing records replay ignores.

    def record_planned(self, cells) -> None:  # noqa: D102
        raise RequestJournalError(
            "a RequestJournal records requests, not sweep plans"
        )

    def record_cell(self, model_name, property_name, cell) -> None:  # noqa: D102
        raise RequestJournalError(
            "a RequestJournal records requests, not sweep cells"
        )

    def record_failure(self, failure) -> None:  # noqa: D102
        raise RequestJournalError(
            "a RequestJournal records requests, not sweep failures"
        )


def pending_requests(directory: str) -> Dict[str, Dict[str, object]]:
    """Read-only replay: accepted-but-unfinished requests at ``directory``.

    Does not open the journal for writing — usable by chaos watchers and
    tests while a live service owns the directory.
    """
    pending: Dict[str, Dict[str, object]] = {}
    if not os.path.exists(os.path.join(directory, PLAN_FILE)):
        return pending
    for record in iter_records(directory):
        kind = record.get("type")
        if kind == "request":
            pending.setdefault(str(record["id"]), dict(record.get("payload") or {}))
        elif kind == "done":
            pending.pop(str(record["id"]), None)
    return pending


__all__ = ["RequestJournal", "REQUEST_PLAN", "pending_requests"]
