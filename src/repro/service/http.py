"""Shared HTTP plane: one keep-alive JSON-wire server for the tree.

This module is the extraction of the HTTP/1.1 plumbing that grew up
private to :mod:`repro.testing.encoder_service` (PR 5/6): a threaded
stdlib server speaking keep-alive HTTP/1.1 with gzip request/response
bodies and JSON payloads, hardened for the realities the loopback fault
suite exercises — bodies drained before dispatch (an unread body under
keep-alive would be parsed as the next request's start line), short
writes on purpose (the ``torn`` fault), clients that vanish mid-response
(cancelled hedge losers).  Both the loopback encoder double and the
always-on characterization service (:mod:`repro.service.app`) are built
on it, so there is exactly one server implementation to harden.

Additions over the historical private plumbing, needed by the
characterization service:

- a **router** (:meth:`HttpPlane.route`) with ``{param}`` path segments,
  replacing the single hard-coded ``/encode`` path;
- **streaming responses**: a :class:`WireResponse` carrying ``stream=``
  (an iterator of jsonable records) is sent with
  ``Transfer-Encoding: chunked``, one JSON line per chunk, so per-cell
  sweep results reach the client as cells finish;
- **typed error mapping**: handlers raise
  :class:`~repro.errors.ObservatoryError` subclasses and the plane maps
  them to wire responses (429 + ``Retry-After`` for
  :class:`~repro.errors.ServiceOverloadedError`, 400 with the error
  class name for the rest) instead of each server hand-rolling status
  codes.

Handlers receive a :class:`WireRequest` and return a
:class:`WireResponse` (or a bare jsonable payload, meaning 200).  The
request body is parsed *lazily* (:meth:`WireRequest.json`): the loopback
fault hooks must consume their fault queue before the body is looked at,
exactly as the pre-extraction handler ordered things.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ObservatoryError, ServiceError, ServiceOverloadedError


@dataclasses.dataclass
class WireRequest:
    """One parsed HTTP request handed to a route handler.

    ``params`` carries ``{name}`` path-segment captures, ``query`` the
    parsed query string.  ``json()`` decodes the (possibly gzipped) body
    on first call — raising ``ValueError`` for a malformed body, which
    the plane maps to a 400 — so handlers control *when* the body is
    trusted (the loopback fault queue pops first).
    """

    method: str
    path: str
    params: Dict[str, str]
    query: Dict[str, str]
    headers: Dict[str, str]
    raw: bytes

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> object:
        """Decode the request body as JSON (gunzipping when declared)."""
        raw = self.raw
        if self.header("content-encoding").lower() == "gzip":
            try:
                raw = gzip.decompress(raw)
            except OSError as exc:  # gzip raises OSError on bad streams
                raise ValueError(f"bad gzip request body: {exc}") from exc
        return json.loads(raw.decode("utf-8"))


@dataclasses.dataclass
class WireResponse:
    """What a route handler returns.

    Exactly one of ``payload`` (buffered JSON body) or ``stream`` (an
    iterator of jsonable records, sent chunked as JSON lines) may be
    set; neither means an empty 200.  ``torn`` is the fault-injection
    hook the loopback service needs: advertise the full
    ``Content-Length`` but write only half the body, then close — a
    client must observe a short read, never a hang.
    """

    status: int = 200
    payload: Optional[object] = None
    stream: Optional[Iterable[object]] = None
    headers: Dict[str, str] = dataclasses.field(default_factory=dict)
    torn: bool = False
    close: bool = False

    def __post_init__(self):
        if self.payload is not None and self.stream is not None:
            raise ValueError("a WireResponse is buffered or streamed, not both")


Handler = Callable[[WireRequest], object]


def error_response(error: BaseException) -> WireResponse:
    """Map a handler exception to its wire form (the typed-error contract).

    :class:`ServiceOverloadedError` → 429 with ``Retry-After``;
    other :class:`ObservatoryError` subclasses → 400 carrying the error
    class name; plain ``ValueError``/``KeyError``/``OSError`` (malformed
    payloads, exactly what the pre-extraction loopback handler caught) →
    400 with the message only.  Anything else is a programming error and
    surfaces as a 500 rather than being swallowed.
    """
    if isinstance(error, ServiceOverloadedError):
        return WireResponse(
            status=429,
            payload={"error": str(error), "error_type": type(error).__name__},
            headers={"Retry-After": f"{error.retry_after:g}"},
        )
    if isinstance(error, ObservatoryError):
        return WireResponse(
            status=400,
            payload={"error": str(error), "error_type": type(error).__name__},
        )
    if isinstance(error, (ValueError, KeyError, OSError)):
        return WireResponse(status=400, payload={"error": str(error)})
    return WireResponse(
        status=500,
        payload={"error": str(error), "error_type": type(error).__name__},
    )


class _Route:
    """One registered (method, pattern) → handler binding."""

    __slots__ = ("method", "segments", "handler")

    def __init__(self, method: str, pattern: str, handler: Handler):
        self.method = method.upper()
        self.segments = tuple(s for s in pattern.strip("/").split("/") if s)
        self.handler = handler

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        parts = tuple(s for s in path.strip("/").split("/") if s)
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, parts):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


class _PlaneHandler(BaseHTTPRequestHandler):
    # HTTP/1.1 semantics: keep-alive by default, so client connection
    # pools see real socket reuse.  Paths that must break the connection
    # (torn fault, explicit close) set ``close_connection``.
    protocol_version = "HTTP/1.1"
    # Header-block and body go out as separate small writes; without
    # TCP_NODELAY the Nagle / delayed-ACK interaction adds ~40ms to every
    # keep-alive round trip, swamping the cache-hit fast path.
    disable_nagle_algorithm = True

    def log_message(self, fmt, *args):  # noqa: D102 - silence test/CI noise
        pass

    def do_GET(self):  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        plane: "HttpPlane" = self.server.plane  # type: ignore[attr-defined]
        # Always drain the request body first: under keep-alive an unread
        # body would be parsed as the *next* request's start line.
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        request = WireRequest(
            method=method,
            path=path,
            params={},
            query=dict(parse_qsl(split.query)),
            headers={k.lower(): v for k, v in self.headers.items()},
            raw=raw,
        )
        response = plane.dispatch(request)
        try:
            self._send(request, response)
        except (BrokenPipeError, ConnectionResetError):
            # The client is gone — a cancelled hedge loser, an expired
            # deadline, or a disconnected stream consumer.  Expected
            # under fleet scheduling and live streaming, not an error.
            self.close_connection = True

    def _send(self, request: WireRequest, response: WireResponse) -> None:
        if response.stream is not None:
            self._send_stream(response)
            return
        body = b""
        if response.payload is not None:
            body = json.dumps(response.payload).encode("utf-8")
        accepts_gzip = "gzip" in request.header("accept-encoding").lower()
        encoding = "gzip" if (accepts_gzip and body) else None
        if encoding == "gzip":
            body = gzip.compress(body, compresslevel=6)
        if response.close or response.torn:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        if encoding:
            self.send_header("Content-Encoding", encoding)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        if response.close or response.torn:
            self.send_header("Connection", "close")
        self.end_headers()
        if response.torn:
            # Advertise everything, deliver half, hang up: the client
            # must see a fast short read, never wait out its deadline.
            self.wfile.write(body[: len(body) // 2])
            return
        self.wfile.write(body)

    def _send_stream(self, response: WireResponse) -> None:
        # Chunked framing is self-delimiting, so keep-alive survives a
        # stream; each record is one JSON line in its own chunk so
        # clients can act on a cell the moment it lands.
        self.send_response(response.status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        assert response.stream is not None
        for record in response.stream:
            line = json.dumps(record).encode("utf-8") + b"\n"
            self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
            self.wfile.write(line + b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")


class HttpPlane:
    """A routed, threaded, keep-alive JSON-wire HTTP server.

    ::

        plane = HttpPlane(name="repro-service")
        plane.route("GET", "/healthz", lambda req: {"ok": True})
        plane.route("GET", "/v1/jobs/{job_id}", get_job)
        plane.start()
        ...
        plane.close()

    Handlers run on the server's per-connection threads; they must be
    thread-safe.  A handler may return a :class:`WireResponse` or any
    jsonable payload (meaning 200).  Exceptions are mapped by
    :func:`error_response` — service code raises typed errors, the plane
    owns status codes.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, name: str = "repro-http"):
        self._routes: List[_Route] = []
        self._name = name
        try:
            self._server = ThreadingHTTPServer((host, port), _PlaneHandler)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {name} to {host}:{port}: {exc}"
            ) from exc
        self._server.plane = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- routing -------------------------------------------------------

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` + ``pattern`` (``{param}`` segments)."""
        self._routes.append(_Route(method, pattern, handler))

    def dispatch(self, request: WireRequest) -> WireResponse:
        """Resolve and invoke the matching handler (used by the wire and tests)."""
        for candidate in self._routes:
            params = candidate.match(request.method, request.path)
            if params is not None:
                request.params = params
                try:
                    result = candidate.handler(request)
                except Exception as error:  # noqa: BLE001 - mapped, not swallowed
                    return error_response(error)
                if isinstance(result, WireResponse):
                    return result
                return WireResponse(payload=result)
        return WireResponse(status=404, payload={"error": "unknown endpoint"})

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "HttpPlane":
        """Serve on a background daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name=self._name, daemon=True
            )
            self._thread.start()
        return self

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving; raise typed if the server thread is wedged."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():
                raise ServiceError(
                    f"{self._name} server thread did not exit within 5s"
                )
            self._thread = None

    def __enter__(self) -> "HttpPlane":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
