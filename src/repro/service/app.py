"""The always-on characterization service: request, index, durability planes.

:class:`CharacterizationService` turns the one-shot library into a
long-running server (``repro serve``).  It owns exactly one
:class:`~repro.core.framework.Observatory` — so every client request
shares the fingerprint-keyed embedding cache, the model registry, and
the backend numerics — and mounts four planes on the shared HTTP plane
(:class:`~repro.service.http.HttpPlane`):

**Request plane.**  ``POST /v1/characterize`` submits a (models ×
properties) characterization.  Admission is a *bounded* queue: when it
is full the service answers a typed 429 with ``Retry-After``
(:class:`~repro.errors.ServiceOverloadedError`) instead of queueing
unboundedly or hanging.  Jobs are identified by a fingerprint over the
canonical request payload, so identical concurrent submissions join one
run, and exact repeats are answered straight from the bounded result
cache (the measured fast path — see ``benchmarks/bench_service.py``).
Results stream incrementally: every job writes a per-job write-ahead
sweep journal, and ``GET /v1/jobs/{id}/stream`` tails it, emitting one
NDJSON record per completed :class:`~repro.runtime.sweep.SweepCell` the
moment it is durable, then a summary.  ``--request-deadline`` bounds
each job's wall clock through the sweep's
:class:`~repro.runtime.faults.FaultPolicy`.

**Encode plane.**  ``POST /encode`` mounts the remote-encoder wire
protocol (:class:`~repro.service.encode.EncoderPool`), so a served
instance doubles as an encoder-fleet replica for
:class:`~repro.models.backends.remote.RemoteBackend` clients.

**Index plane.**  ``/v1/index/*`` serves the persistent columnar
joinability index (:class:`~repro.index.ColumnIndex`): create, online
append, and top-k query with the library's pruning modes and their
guarantees intact (``prune=off`` stays oracle-identical — the service
only routes, it never re-ranks).  Open handles are shared across
requests and **generation-checked**: before use, the handle's
generation is compared against the on-disk manifest and the index is
reopened if another writer advanced it.  ``POST /v1/tables`` uploads a
table (plain columnar JSON) that index append/query can then embed
server-side through the shared executor cache.

**Durability plane.**  Accepted requests are journaled
(:class:`~repro.service.journal.RequestJournal`, the PR 9 write-ahead
segment format) *before* the 202 is sent.  A service killed mid-request
and restarted over the same ``--state-dir`` re-enqueues every
accepted-but-unfinished request and *resumes* its per-job sweep journal
— finished cells replay, only the remainder recomputes.

Characterization sweeps are pinned to ``execution="thread"``: a service
multiplexing many small requests wants the shared in-memory cache fast
path, not per-request process pools (``$REPRO_SWEEP_EXECUTION`` does not
apply to served sweeps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import queue
import tempfile
import threading
import time
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import (
    RequestJournalError,
    ServiceOverloadedError,
    TableError,
)
from repro.relational.table import Table
from repro.runtime.faults import FaultPolicy
from repro.runtime.journal import PLAN_FILE, iter_records
from repro.service.encode import EncoderPool
from repro.service.http import HttpPlane, WireRequest, WireResponse
from repro.service.journal import RequestJournal


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of the characterization service.

    Attributes:
        host/port: bind address (port 0 picks a free port).
        queue_limit: admission-queue bound; submissions past it get a
            typed 429 with ``Retry-After: retry_after``.
        runners: job-runner threads draining the admission queue.
        sweep_workers: worker-pool size of each served sweep (``None`` =
            the runtime default).
        cache_size: result-cache entries kept (LRU past it).
        state_dir: durability root — the request journal lives at
            ``state_dir/requests`` and per-job sweep journals under
            ``state_dir/jobs/<id>``.  ``None`` uses a fresh temporary
            directory (still journaled, but not restart-durable by
            construction — pass a real directory to survive kills).
        request_deadline: per-job wall-clock bound in seconds, enforced
            through the sweep's :class:`FaultPolicy`; ``None`` = unbounded.
        retry_after: seconds advertised on 429 responses.
        stream_poll: seconds between journal polls while streaming a
            live job.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 8
    runners: int = 2
    sweep_workers: Optional[int] = None
    cache_size: int = 32
    state_dir: Optional[str] = None
    request_deadline: Optional[float] = None
    retry_after: float = 0.5
    stream_poll: float = 0.05


@dataclasses.dataclass
class _Job:
    """One accepted characterization request and its lifecycle."""

    id: str
    payload: Dict[str, object]
    journal_dir: str
    status: str = "queued"  # queued | running | done | failed
    result: Optional[Dict[str, object]] = None
    error: str = ""
    error_type: str = ""
    done: threading.Event = dataclasses.field(default_factory=threading.Event)
    replayed_request: bool = False


def _job_fingerprint(payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CharacterizationService:
    """The served Observatory (see module doc).

    ::

        service = CharacterizationService(observatory).start()
        client = ServiceClient(service.url)
        result = client.characterize(["bert"], ["row_order_insignificance"])
        service.close()
    """

    def __init__(self, observatory, *, config: Optional[ServiceConfig] = None):
        self._observatory = observatory
        self._config = config or ServiceConfig()
        self._state_dir = self._config.state_dir or tempfile.mkdtemp(
            prefix="repro-service-"
        )
        os.makedirs(self._state_dir, exist_ok=True)
        self._jobs_dir = os.path.join(self._state_dir, "jobs")
        os.makedirs(self._jobs_dir, exist_ok=True)
        self._journal = RequestJournal.open(os.path.join(self._state_dir, "requests"))

        self._lock = threading.RLock()
        self._jobs: Dict[str, _Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue(
            maxsize=max(1, self._config.queue_limit)
        )
        self._cache: Dict[str, Dict[str, object]] = {}
        self._cache_order: List[str] = []
        self.cache_hits = 0
        self.deduplicated = 0
        self.rejected = 0

        self._gate = threading.Event()
        self._gate.set()
        self._stop = threading.Event()
        self._runners: List[threading.Thread] = []

        self._pool = EncoderPool()
        self._tables: Dict[str, Table] = {}
        self._index_lock = threading.RLock()
        self._indexes: Dict[str, object] = {}
        self._index_reopens = 0

        self._plane = HttpPlane(
            self._config.host, self._config.port, name="repro-service"
        )
        self._mount_routes()

    # -- lifecycle -----------------------------------------------------

    def _mount_routes(self) -> None:
        plane = self._plane
        plane.route("GET", "/healthz", self._handle_health)
        plane.route("GET", "/v1/stats", self._handle_stats)
        plane.route("POST", "/encode", self._handle_encode)
        plane.route("POST", "/v1/characterize", self._handle_submit)
        plane.route("GET", "/v1/jobs/{job_id}", self._handle_job)
        plane.route("GET", "/v1/jobs/{job_id}/stream", self._handle_stream)
        plane.route("POST", "/v1/tables", self._handle_upload_table)
        plane.route("GET", "/v1/tables/{table_id}", self._handle_table)
        plane.route("POST", "/v1/index/create", self._handle_index_create)
        plane.route("POST", "/v1/index/append", self._handle_index_append)
        plane.route("POST", "/v1/index/query", self._handle_index_query)
        plane.route("GET", "/v1/index/info", self._handle_index_info)
        plane.route("POST", "/v1/admin/hold", self._handle_hold)
        plane.route("POST", "/v1/admin/release", self._handle_release)

    def start(self) -> "CharacterizationService":
        """Bind, start job runners, and replay journaled requests."""
        self._plane.start()
        for i in range(max(1, self._config.runners)):
            thread = threading.Thread(
                target=self._runner, name=f"repro-service-runner-{i}", daemon=True
            )
            thread.start()
            self._runners.append(thread)
        pending = dict(self._journal.pending)
        if pending:
            threading.Thread(
                target=self._replay_pending,
                args=(pending,),
                name="repro-service-replay",
                daemon=True,
            ).start()
        return self

    @property
    def url(self) -> str:
        return self._plane.url

    @property
    def state_dir(self) -> str:
        return self._state_dir

    def close(self) -> None:
        """Stop serving, drain runners, seal the request journal."""
        self._stop.set()
        self._gate.set()  # unblock runners parked on an admin hold
        for _ in self._runners:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        for thread in self._runners:
            thread.join(timeout=5.0)
        self._runners = []
        self._plane.close()
        self._journal.close()

    def __enter__(self) -> "CharacterizationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plane -------------------------------------------------

    def _handle_submit(self, request: WireRequest) -> WireResponse:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValueError("characterize request body must be a JSON object")
        models = payload.get("models")
        if not isinstance(models, list) or not models:
            raise ValueError(
                "characterize request needs a non-empty 'models' list"
            )
        properties = payload.get("properties")
        if properties is not None and not isinstance(properties, list):
            raise ValueError("'properties' must be a list when given")
        canonical: Dict[str, object] = {
            "models": [str(m) for m in models],
            "properties": (
                [str(p) for p in properties] if properties is not None else None
            ),
        }
        job_id = _job_fingerprint(canonical)
        with self._lock:
            cached = self._cache.get(job_id)
            if cached is not None:
                self._cache_order.remove(job_id)
                self._cache_order.append(job_id)
                self.cache_hits += 1
                return WireResponse(
                    payload={
                        "job_id": job_id,
                        "status": "done",
                        "cache_hit": True,
                        "result": cached,
                    }
                )
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status in ("queued", "running"):
                self.deduplicated += 1
                return WireResponse(
                    status=202,
                    payload={
                        "job_id": job_id,
                        "status": existing.status,
                        "deduplicated": True,
                    },
                )
            job = _Job(
                id=job_id,
                payload=canonical,
                journal_dir=os.path.join(self._jobs_dir, job_id),
            )
            try:
                self._queue.put_nowait(job_id)
            except queue.Full:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"admission queue full ({self._config.queue_limit} "
                    f"requests queued); retry after "
                    f"{self._config.retry_after:g}s",
                    retry_after=self._config.retry_after,
                ) from None
            self._jobs[job_id] = job
        # Durability before acknowledgement: the 202 below promises the
        # request survives a kill, so the journal append (fsync'd) must
        # land first.  If it cannot, withdraw the job and fail typed.
        try:
            self._journal.record_request(job_id, canonical)
        except RequestJournalError:
            with self._lock:
                self._jobs.pop(job_id, None)
            raise
        return WireResponse(
            status=202, payload={"job_id": job_id, "status": "queued"}
        )

    def _handle_job(self, request: WireRequest) -> WireResponse:
        job_id = request.params["job_id"]
        wait = float(request.query.get("wait", "0") or 0)
        job = self._jobs.get(job_id)
        if job is None:
            with self._lock:
                cached = self._cache.get(job_id)
            if cached is not None:
                return WireResponse(
                    payload={"job_id": job_id, "status": "done", "result": cached}
                )
            return WireResponse(
                status=404, payload={"error": f"unknown job {job_id!r}"}
            )
        if wait > 0 and not job.done.is_set():
            job.done.wait(min(wait, 60.0))
        body: Dict[str, object] = {"job_id": job_id, "status": job.status}
        if job.status == "done":
            body["result"] = job.result
        elif job.status == "failed":
            body["error"] = job.error
            body["error_type"] = job.error_type
        return WireResponse(payload=body)

    def _handle_stream(self, request: WireRequest) -> WireResponse:
        job_id = request.params["job_id"]
        job = self._jobs.get(job_id)
        if job is None:
            with self._lock:
                cached = self._cache.get(job_id)
            if cached is None:
                return WireResponse(
                    status=404, payload={"error": f"unknown job {job_id!r}"}
                )
            return WireResponse(stream=self._stream_cached(job_id, cached))
        return WireResponse(stream=self._stream_job(job))

    def _stream_cached(
        self, job_id: str, cached: Dict[str, object]
    ) -> Iterator[Dict[str, object]]:
        cells = list(cached.get("cells") or [])
        for cell in cells:
            yield {
                "type": "cell",
                "model": cell["model"],
                "property": cell["property"],
                "cell": cell,
            }
        yield {
            "type": "summary",
            "job_id": job_id,
            "status": "done",
            "cells": len(cells),
            "cache_hit": True,
        }

    def _stream_job(self, job: _Job) -> Iterator[Dict[str, object]]:
        # The per-job sweep journal is the streaming substrate: every
        # completed cell is fsync'd there before the sweep proceeds, so
        # tailing it yields cells exactly as they become durable.
        seen = set()
        while True:
            finished = job.done.is_set()  # check BEFORE reading: a cell
            # journaled after this check is caught by the next (or final)
            # pass, never lost.
            for record in iter_records(job.journal_dir):
                if record.get("type") != "cell":
                    continue
                key = (record["model"], record["property"])
                if key in seen:
                    continue
                seen.add(key)
                yield {
                    "type": "cell",
                    "model": record["model"],
                    "property": record["property"],
                    "cell": record["cell"],
                }
            if finished:
                break
            time.sleep(self._config.stream_poll)
        summary: Dict[str, object] = {
            "type": "summary",
            "job_id": job.id,
            "status": job.status,
            "cells": len(seen),
        }
        if job.status == "failed":
            summary["error"] = job.error
            summary["error_type"] = job.error_type
        elif job.result is not None:
            summary["failures"] = job.result.get("failures", [])
            summary["replayed"] = job.result.get("replayed", 0)
        yield summary

    # -- job runners ---------------------------------------------------

    def _runner(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                return
            while not self._gate.is_set():  # admin hold: park, stay stoppable
                if self._stop.is_set():
                    return
                time.sleep(0.02)
            if self._stop.is_set():
                # close() releases the gate to unpark runners; a held job
                # must stay journaled-pending (replayed next start), not
                # sneak into execution during shutdown.
                return
            job = self._jobs.get(job_id)
            if job is not None:
                self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        job.status = "running"
        resume = os.path.exists(os.path.join(job.journal_dir, PLAN_FILE))
        fault_policy = (
            FaultPolicy(deadline=self._config.request_deadline)
            if self._config.request_deadline is not None
            else None
        )
        try:
            sweep = self._observatory.sweep(
                job.payload["models"],
                job.payload.get("properties"),
                max_workers=self._config.sweep_workers,
                execution="thread",  # pinned: see module doc
                on_error="degrade",
                journal_dir=job.journal_dir,
                resume=resume,
                fault_policy=fault_policy,
            )
        except Exception as exc:  # noqa: BLE001 - job-scoped, reported typed
            job.error = str(exc)
            job.error_type = type(exc).__name__
            job.status = "failed"
        else:
            job.result = self._result_payload(sweep)
            job.status = "done"
            with self._lock:
                self._cache[job.id] = job.result
                self._cache_order.append(job.id)
                while len(self._cache_order) > max(1, self._config.cache_size):
                    evicted = self._cache_order.pop(0)
                    self._cache.pop(evicted, None)
        try:
            self._journal.record_done(job.id, status=job.status)
        except RequestJournalError as exc:
            # The result stands; only restart-dedup is degraded.  Note it
            # on the job rather than failing a finished request.
            job.error = job.error or f"request journal append failed: {exc}"
        finally:
            job.done.set()

    @staticmethod
    def _result_payload(sweep) -> Dict[str, object]:
        return {
            "cells": [cell.to_jsonable() for cell in sweep.cells],
            "failures": [failure.to_jsonable() for failure in sweep.failures],
            "skipped": [dataclasses.asdict(skip) for skip in sweep.skipped],
            "replayed": sweep.replayed,
            "seconds": sweep.seconds,
            "workers": sweep.workers,
            "execution": sweep.execution,
            "backend": sweep.backend,
        }

    def _replay_pending(self, pending: Dict[str, Dict[str, object]]) -> None:
        """Re-enqueue accepted-but-unfinished requests from the journal.

        Runs on a daemon thread so a replay backlog larger than the
        admission queue drains as runners free slots, without blocking
        startup or live traffic admission ordering.
        """
        for job_id, payload in pending.items():
            with self._lock:
                if job_id in self._jobs or job_id in self._cache:
                    continue
                job = _Job(
                    id=job_id,
                    payload=payload,
                    journal_dir=os.path.join(self._jobs_dir, job_id),
                    replayed_request=True,
                )
                self._jobs[job_id] = job
            while not self._stop.is_set():
                try:
                    self._queue.put(job_id, timeout=0.2)
                    break
                except queue.Full:
                    continue

    # -- encode plane --------------------------------------------------

    def _handle_encode(self, request: WireRequest) -> Dict[str, object]:
        return self._pool.encode_request(request.json())

    # -- table uploads -------------------------------------------------

    def _handle_upload_table(self, request: WireRequest) -> Dict[str, object]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValueError("table upload body must be a JSON object")
        table_id = str(payload.get("table_id") or "")
        if not table_id:
            raise ValueError("table upload needs a 'table_id'")
        columns = payload.get("columns")
        if not isinstance(columns, list) or not columns:
            raise ValueError(
                "table upload needs 'columns': a list of [header, values] pairs"
            )
        named = []
        for entry in columns:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError("each column is a [header, values] pair")
            header, values = entry
            if not isinstance(values, list):
                raise ValueError(f"column {header!r} values must be a list")
            named.append((str(header), list(values)))
        table = Table.from_columns(
            named, caption=str(payload.get("caption", "")), table_id=table_id
        )
        with self._lock:
            self._tables[table_id] = table
        return {
            "table_id": table_id,
            "rows": table.num_rows,
            "columns": table.num_columns,
        }

    def _handle_table(self, request: WireRequest) -> Dict[str, object]:
        table = self._uploaded_table(request.params["table_id"])
        return {
            "table_id": table.table_id,
            "caption": table.caption,
            "header": list(table.header),
            "rows": table.num_rows,
            "columns": table.num_columns,
        }

    def _uploaded_table(self, table_id: str) -> Table:
        with self._lock:
            table = self._tables.get(table_id)
        if table is None:
            raise TableError(f"no uploaded table {table_id!r}")
        return table

    def _embed_table_columns(self, table: Table, model: str):
        executor = self._observatory.executor(model)
        named = [
            (header, [row[i] for row in table.rows])
            for i, header in enumerate(table.header)
        ]
        return [
            (f"{table.table_id}::{header}", emb)
            for (header, _values), emb in zip(
                named, executor.embed_value_columns(named)
            )
        ]

    # -- index plane ---------------------------------------------------

    def _manifest_generation(self, directory: str) -> Optional[int]:
        from repro.index.store import MANIFEST_NAME

        try:
            with open(
                os.path.join(directory, MANIFEST_NAME), "r", encoding="utf-8"
            ) as handle:
                return int(json.load(handle).get("generation"))
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            return None

    def _index_handle(self, directory: str):
        """Shared, generation-checked open handle for ``directory``.

        A handle opened by an earlier request is reused only while its
        generation matches the on-disk manifest; another writer bumping
        the manifest (including this service's own append route) forces
        a reopen, so queries never serve a stale shard view.
        """
        from repro.index import ColumnIndex

        directory = os.path.abspath(directory)
        with self._index_lock:
            handle = self._indexes.get(directory)
            if handle is not None:
                disk_generation = self._manifest_generation(directory)
                if (
                    disk_generation is not None
                    and handle.generation != disk_generation
                ):
                    handle = ColumnIndex.open(directory)
                    self._indexes[directory] = handle
                    self._index_reopens += 1
                return handle
            handle = ColumnIndex.open(directory)
            self._indexes[directory] = handle
            return handle

    def _index_directory(self, payload: Dict[str, object]) -> str:
        directory = str(payload.get("directory") or "")
        if not directory:
            raise ValueError("index request needs a 'directory'")
        return directory

    def _handle_index_create(self, request: WireRequest) -> Dict[str, object]:
        from repro.index import ColumnIndex

        payload = request.json()
        directory = os.path.abspath(self._index_directory(payload))
        dim = int(payload.get("dim") or 0)
        if dim < 1:
            raise ValueError("index create needs a positive 'dim'")
        with self._index_lock:
            handle = ColumnIndex(directory, dim=dim, create=True)
            self._indexes[directory] = handle
            return handle.describe()

    def _handle_index_append(self, request: WireRequest) -> Dict[str, object]:
        payload = request.json()
        directory = self._index_directory(payload)
        with self._index_lock:
            handle = self._index_handle(directory)
            if payload.get("table_id") is not None:
                table = self._uploaded_table(str(payload["table_id"]))
                model = str(payload.get("model") or "t5")
                items = self._embed_table_columns(table, model)
            else:
                entries = payload.get("entries")
                if not isinstance(entries, list) or not entries:
                    raise ValueError(
                        "index append needs 'entries' ([{key, vector}, ...]) "
                        "or a 'table_id'"
                    )
                items = [
                    (
                        str(entry["key"]),
                        np.asarray(entry["vector"], dtype=np.float64),
                    )
                    for entry in entries
                ]
            known = set(handle.keys()) if len(handle) else set()
            added = handle.append_many(
                (key, emb) for key, emb in items if key not in known
            )
            return {
                "directory": os.path.abspath(directory),
                "appended": added,
                "rows": len(handle),
                "generation": handle.generation,
            }

    def _handle_index_query(self, request: WireRequest) -> Dict[str, object]:
        payload = request.json()
        directory = self._index_directory(payload)
        k = int(payload.get("k", 5))
        prune = str(payload.get("prune", "off"))
        if payload.get("vector") is not None:
            embedding = np.asarray(payload["vector"], dtype=np.float64)
        elif payload.get("table_id") is not None:
            table = self._uploaded_table(str(payload["table_id"]))
            column = str(payload.get("column") or "")
            if column not in table.header:
                raise ValueError(
                    f"table {table.table_id!r} has no column {column!r}"
                )
            model = str(payload.get("model") or "t5")
            items = self._embed_table_columns(table, model)
            embedding = dict(items)[f"{table.table_id}::{column}"]
        else:
            raise ValueError("index query needs a 'vector' or a 'table_id'+'column'")
        with self._index_lock:
            handle = self._index_handle(directory)
            hits = handle.query(embedding, k, prune=prune)
            return {
                "directory": os.path.abspath(directory),
                "k": k,
                "prune": prune,
                "generation": handle.generation,
                "hits": [{"key": key, "score": score} for key, score in hits],
            }

    def _handle_index_info(self, request: WireRequest) -> Dict[str, object]:
        directory = request.query.get("dir") or request.query.get("directory")
        if not directory:
            raise ValueError("index info needs a ?dir= query parameter")
        with self._index_lock:
            handle = self._index_handle(directory)
            info = handle.describe()
            info["open_handles"] = len(self._indexes)
            info["handle_reopens"] = self._index_reopens
            return info

    # -- admin / observability -----------------------------------------

    def _handle_hold(self, request: WireRequest) -> Dict[str, object]:
        self._gate.clear()
        return {"held": True}

    def _handle_release(self, request: WireRequest) -> Dict[str, object]:
        self._gate.set()
        return {"held": False}

    def _job_counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        with self._lock:
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def _handle_health(self, request: WireRequest) -> Dict[str, object]:
        return {
            "ok": True,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self._config.queue_limit,
            "held": not self._gate.is_set(),
            "jobs": self._job_counts(),
        }

    def _handle_stats(self, request: WireRequest) -> Dict[str, object]:
        return self.stats_snapshot()

    def stats_snapshot(self) -> Dict[str, object]:
        """The ``/v1/stats`` payload, callable in-process (CLI shutdown note)."""
        with self._lock:
            cache_entries = len(self._cache)
            tables = len(self._tables)
        return {
            "jobs": self._job_counts(),
            "queue_depth": self._queue.qsize(),
            "queue_limit": self._config.queue_limit,
            "held": not self._gate.is_set(),
            "cache": {
                "entries": cache_entries,
                "limit": self._config.cache_size,
                "hits": self.cache_hits,
            },
            "deduplicated": self.deduplicated,
            "rejected": self.rejected,
            "encode_requests": self._pool.requests_served,
            "tables": tables,
            "index": {
                "open_handles": len(self._indexes),
                "reopens": self._index_reopens,
            },
            "replayed_requests": sum(
                1 for job in self._jobs.values() if job.replayed_request
            ),
            "state_dir": self._state_dir,
            "backend": self._observatory.backend_description(),
        }


__all__ = ["CharacterizationService", "ServiceConfig"]
