"""Loopback encoding service: a real backend behind the real wire format.

:class:`LoopbackEncoderService` is the integration-test double for
:class:`~repro.models.backends.remote.RemoteBackend`.  It is a genuine
HTTP server (stdlib ``http.server``, threaded, bound to a loopback port —
no new runtime dependencies) that speaks the exact protocol the remote
backend ships: JSON requests carrying :func:`wire_to_jsonable` payloads
in, base64 hidden states with digest echoes out.  Behind the wire it runs
a **real** :class:`LocalBackend` (or :class:`PaddedBackend` when the
request says ``mode="padded"``) on an encoder rebuilt from the shipped
:class:`ModelConfig` — so a test that compares remote against local
results is comparing two independent processes' worth of state (interner,
weights, content vectors) reconstructed from configuration, which is
precisely the claim the wire format makes.

The service speaks HTTP/1.1 with keep-alive (so the fleet client's
connection pool is exercised for real), accepts gzip request bodies and
negotiates gzip responses via ``Accept-Encoding``, and honors the
protocol-2 ``state_dtype`` field — ``"float32"`` states are rounded to
little-endian float32 on the wire and tagged with a ``dtype`` echo.
Protocol-1 requests (no ``state_dtype``) still work.

Fault injection: :meth:`LoopbackEncoderService.inject` queues one-shot
faults consumed FIFO by subsequent requests —

- ``"http_500"`` — respond 500 (client must retry with backoff);
- ``"timeout"`` — sleep past the client's deadline before answering (the
  client must abandon the request and retry);
- ``"torn"`` — advertise the full Content-Length but write only half the
  body, then close the connection (the client sees a short read and
  retries);
- ``"shuffle"`` — return the states reversed (NOT a fault the client may
  reject: it must reassemble by digest echo and still be bit-identical);
- ``"tamper"`` — corrupt a state's bytes while keeping the original
  ``data_digest`` (the client must *reject* this, never retry it into
  acceptance).

A persistent per-replica slowness (``delay=``) makes one fleet member a
straggler, which is what hedging tests need.

:class:`FleetHarness` stands up N replicas behind one context manager::

    with FleetHarness(3, slow_index=2, slow_delay=0.2) as fleet:
        backend = RemoteBackend(config=TransportConfig(urls=fleet.urls))
        ...

Run standalone for manual poking::

    python -m repro.testing.encoder_service --port 8077
"""

from __future__ import annotations

import argparse
import base64
import collections
import gzip
import hashlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ObservatoryError
from repro.models.backends.local import LocalBackend
from repro.models.backends.padded import PaddedBackend
from repro.models.backends.remote import PROTOCOL_VERSION
from repro.models.config import ModelConfig
from repro.models.encoder import Encoder
from repro.models.token_array import TokenArray, wire_from_jsonable

FAULT_KINDS = ("http_500", "timeout", "torn", "shuffle", "tamper")

#: Protocol versions the service accepts: 2 is current (``state_dtype``);
#: 1 is the pre-fleet client, still answered with float64 states.
ACCEPTED_PROTOCOLS = (1, PROTOCOL_VERSION)


class _Fault:
    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.75):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault {kind!r}; expected one of {FAULT_KINDS}")
        self.kind = kind
        self.seconds = seconds


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 semantics: keep-alive by default, so the fleet client's
    # connection pool sees real socket reuse.  Fault paths that must
    # break the connection set ``close_connection`` explicitly.
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - silence test noise
        pass

    def do_POST(self):  # noqa: N802 - http.server API
        service: "LoopbackEncoderService" = self.server.service  # type: ignore[attr-defined]
        # Always drain the request body first: under keep-alive an unread
        # body would be parsed as the *next* request's start line.
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        if self.path.rstrip("/") != "/encode":
            self._send(404, b'{"error": "unknown endpoint"}')
            return
        if service.delay:
            time.sleep(service.delay)
        fault = service._next_fault()
        if fault is not None and fault.kind == "timeout":
            # Hold the request past the client's deadline; the response
            # below still completes (harmlessly — the client is gone).
            time.sleep(fault.seconds)
        if fault is not None and fault.kind == "http_500":
            self._send(500, b'{"error": "injected service fault"}')
            return
        try:
            if (self.headers.get("Content-Encoding") or "").lower() == "gzip":
                raw = gzip.decompress(raw)
            request = json.loads(raw.decode("utf-8"))
            body = service._encode_request(request, fault)
        except (ValueError, KeyError, OSError, ObservatoryError) as error:
            self._send(400, json.dumps({"error": str(error)}).encode("utf-8"))
            return
        accepts_gzip = "gzip" in (self.headers.get("Accept-Encoding") or "").lower()
        encoding = "gzip" if accepts_gzip else None
        if encoding == "gzip":
            body = gzip.compress(body, compresslevel=6)
        if fault is not None and fault.kind == "torn":
            # A keep-alive client would otherwise wait out its deadline
            # for the missing bytes — close so it sees a fast short read.
            self.close_connection = True
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            if encoding:
                self.send_header("Content-Encoding", encoding)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body[: len(body) // 2])  # short write, then close
            return
        self._send(200, body, encoding=encoding)

    def _send(self, status: int, body: bytes, encoding: Optional[str] = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            if encoding:
                self.send_header("Content-Encoding", encoding)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client is gone — a cancelled hedge loser or an expired
            # deadline.  Expected under fleet scheduling, not an error.
            self.close_connection = True


class LoopbackEncoderService:
    """In-process HTTP encoding service running real backends (see module doc).

    Usable as a context manager::

        with LoopbackEncoderService() as service:
            backend = RemoteBackend(service.url)
            ...

    Args:
        delay: seconds slept before answering *every* request — a
            persistent straggler knob for fleet/hedging tests (one-shot
            ``inject("timeout")`` faults stack on top).

    Attributes:
        requests_served: successful ``/encode`` responses sent.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, delay: float = 0.0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-loopback-encoder",
            daemon=True,
        )
        self._lock = threading.Lock()
        self._faults: "collections.deque[_Fault]" = collections.deque()
        self._encoders: Dict[Tuple[str, str, int], Encoder] = {}
        self.delay = delay
        self.requests_served = 0
        self._thread.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "LoopbackEncoderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fault injection -----------------------------------------------

    def inject(self, kind: str, *, seconds: float = 0.75) -> None:
        """Queue a one-shot fault for the next request (FIFO)."""
        with self._lock:
            self._faults.append(_Fault(kind, seconds))

    def _next_fault(self) -> Optional[_Fault]:
        with self._lock:
            return self._faults.popleft() if self._faults else None

    # -- encoding ------------------------------------------------------

    def _encoder_for(self, config: ModelConfig, mode: str, tier: int) -> Encoder:
        """One cached encoder per (model config, backend mode, tier)."""
        key = (json.dumps(config.to_jsonable(), sort_keys=True), mode, tier)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is None:
                backend = (
                    PaddedBackend(tier_width=tier)
                    if mode == "padded"
                    else LocalBackend()
                )
                encoder = Encoder(config, backend=backend)
                self._encoders[key] = encoder
            return encoder

    def _encode_request(self, request: Dict[str, object], fault: Optional[_Fault]) -> bytes:
        protocol = request.get("protocol")
        if protocol not in ACCEPTED_PROTOCOLS:
            raise ValueError(
                f"protocol mismatch: service speaks {ACCEPTED_PROTOCOLS}, "
                f"request says {protocol!r}"
            )
        mode = request.get("mode", "exact")
        if mode not in ("exact", "padded"):
            raise ValueError(f"unknown mode {mode!r}")
        state_dtype = str(request.get("state_dtype", "float64"))
        if state_dtype not in ("float64", "float32"):
            raise ValueError(f"unknown state_dtype {state_dtype!r}")
        config = ModelConfig.from_jsonable(request["model"])
        tier = int(request.get("padding_tier", 8))
        batch_size = int(request.get("batch_size", 8))
        encoder = self._encoder_for(config, mode, tier)
        arrays: List[TokenArray] = []
        digests: List[str] = []
        for payload in request["sequences"]:
            wire = wire_from_jsonable(payload)
            arrays.append(TokenArray.from_wire(wire))  # digest-checked
            digests.append(str(wire["digest"]))
        states = encoder.backend.encode_batch(encoder, arrays, batch_size=batch_size)
        entries = [
            _state_entry(digest, state, state_dtype, protocol=int(protocol))
            for digest, state in zip(digests, states)
        ]
        if fault is not None and fault.kind == "shuffle":
            entries.reverse()
        elif fault is not None and fault.kind == "tamper":
            entries[0] = _tampered(entries[0])
        with self._lock:
            self.requests_served += 1
        return json.dumps({"states": entries}).encode("utf-8")


class FleetHarness:
    """N loopback replicas behind one context manager, for fleet tests.

    One replica can be made a persistent straggler (``slow_index`` /
    ``slow_delay``); the one-shot fault hooks stay reachable per replica
    via :attr:`replicas` or :meth:`inject`.

    ::

        with FleetHarness(3, slow_index=2, slow_delay=0.25) as fleet:
            fleet.inject(1, "http_500")       # one-shot, replica 1
            config = TransportConfig(urls=fleet.urls, hedge_after=0.9)
            backend = RemoteBackend(config=config)

    Attributes:
        replicas: the live :class:`LoopbackEncoderService` instances.
    """

    def __init__(
        self,
        n: int = 3,
        *,
        host: str = "127.0.0.1",
        slow_index: Optional[int] = None,
        slow_delay: float = 0.25,
    ):
        if n < 1:
            raise ValueError("a fleet needs at least one replica")
        if slow_index is not None and not 0 <= slow_index < n:
            raise ValueError(f"slow_index {slow_index} out of range for {n} replicas")
        self.replicas: List[LoopbackEncoderService] = []
        try:
            for i in range(n):
                delay = slow_delay if i == slow_index else 0.0
                self.replicas.append(LoopbackEncoderService(host=host, delay=delay))
        except BaseException:
            self.close()
            raise

    @property
    def urls(self) -> Tuple[str, ...]:
        return tuple(replica.url for replica in self.replicas)

    def inject(self, index: int, kind: str, *, seconds: float = 0.75) -> None:
        """Queue a one-shot fault on replica ``index`` (FIFO per replica)."""
        self.replicas[index].inject(kind, seconds=seconds)

    @property
    def requests_served(self) -> int:
        """Total successful responses across the fleet."""
        return sum(replica.requests_served for replica in self.replicas)

    def close(self) -> None:
        for replica in self.replicas:
            try:
                replica.close()
            except Exception:
                pass  # best-effort teardown; later replicas still close
        self.replicas = []

    def __enter__(self) -> "FleetHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _state_entry(
    digest: str, state: np.ndarray, state_dtype: str = "float64", *, protocol: int = 2
) -> Dict[str, object]:
    wire_dtype = "<f4" if state_dtype == "float32" else "<f8"
    raw = np.ascontiguousarray(state.astype(wire_dtype, copy=False)).tobytes()
    entry = {
        "digest": digest,
        "shape": list(state.shape),
        "data": base64.b64encode(raw).decode("ascii"),
        "data_digest": hashlib.sha256(raw).hexdigest(),
    }
    if protocol >= 2:
        entry["dtype"] = state_dtype
    return entry


def _tampered(entry: Dict[str, object]) -> Dict[str, object]:
    """Corrupt the state bytes while keeping the *original* digest.

    This simulates payload corruption or a hostile service: the digest
    check on the client is the only thing standing between this and a
    silently wrong embedding.
    """
    raw = bytearray(base64.b64decode(str(entry["data"])))
    if raw:
        raw[0] ^= 0xFF
    return {**entry, "data": base64.b64encode(bytes(raw)).decode("ascii")}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Loopback encoder service (manual/CI smoke runs)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument(
        "--delay", type=float, default=0.0, help="seconds slept before each response"
    )
    args = parser.parse_args(argv)
    service = LoopbackEncoderService(host=args.host, port=args.port, delay=args.delay)
    print(f"loopback encoder service listening on {service.url}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
