"""Loopback encoding service: a real backend behind the real wire format.

:class:`LoopbackEncoderService` is the integration-test double for
:class:`~repro.models.backends.remote.RemoteBackend`.  It is a genuine
HTTP server bound to a loopback port — no new runtime dependencies —
built on the tree's shared HTTP plane
(:class:`~repro.service.http.HttpPlane`) and the shared ``/encode``
semantics (:class:`~repro.service.encode.EncoderPool`): JSON requests
carrying :func:`wire_to_jsonable` payloads in, base64 hidden states with
digest echoes out.  Behind the wire it runs a **real**
:class:`LocalBackend` (or :class:`PaddedBackend` when the request says
``mode="padded"``) on an encoder rebuilt from the shipped
:class:`ModelConfig` — so a test that compares remote against local
results is comparing two independent processes' worth of state (interner,
weights, content vectors) reconstructed from configuration, which is
precisely the claim the wire format makes.

The service speaks HTTP/1.1 with keep-alive (so the fleet client's
connection pool is exercised for real), accepts gzip request bodies and
negotiates gzip responses via ``Accept-Encoding``, and honors the
protocol-2 ``state_dtype`` field — ``"float32"`` states are rounded to
little-endian float32 on the wire and tagged with a ``dtype`` echo.
Protocol-1 requests (no ``state_dtype``) still work.  All of that now
lives in the shared plane; what stays *here* is exactly the part a test
double owns — fault injection:

:meth:`LoopbackEncoderService.inject` queues one-shot faults consumed
FIFO by subsequent requests —

- ``"http_500"`` — respond 500 (client must retry with backoff);
- ``"timeout"`` — sleep past the client's deadline before answering (the
  client must abandon the request and retry);
- ``"torn"`` — advertise the full Content-Length but write only half the
  body, then close the connection (the client sees a short read and
  retries);
- ``"shuffle"`` — return the states reversed (NOT a fault the client may
  reject: it must reassemble by digest echo and still be bit-identical);
- ``"tamper"`` — corrupt a state's bytes while keeping the original
  ``data_digest`` (the client must *reject* this, never retry it into
  acceptance).

A persistent per-replica slowness (``delay=``) makes one fleet member a
straggler, which is what hedging tests need.

:class:`FleetHarness` stands up N replicas behind one context manager::

    with FleetHarness(3, slow_index=2, slow_delay=0.2) as fleet:
        backend = RemoteBackend(config=TransportConfig(urls=fleet.urls))
        ...

Run standalone for manual poking::

    python -m repro.testing.encoder_service --port 8077
"""

from __future__ import annotations

import argparse
import base64
import collections
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service.encode import ACCEPTED_PROTOCOLS, EncoderPool  # noqa: F401 - re-export
from repro.service.http import HttpPlane, WireRequest, WireResponse

FAULT_KINDS = ("http_500", "timeout", "torn", "shuffle", "tamper")


class _Fault:
    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.75):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault {kind!r}; expected one of {FAULT_KINDS}")
        self.kind = kind
        self.seconds = seconds


class LoopbackEncoderService:
    """In-process HTTP encoding service running real backends (see module doc).

    Usable as a context manager::

        with LoopbackEncoderService() as service:
            backend = RemoteBackend(service.url)
            ...

    Args:
        delay: seconds slept before answering *every* request — a
            persistent straggler knob for fleet/hedging tests (one-shot
            ``inject("timeout")`` faults stack on top).

    Attributes:
        requests_served: successful ``/encode`` responses sent.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, delay: float = 0.0):
        self._plane = HttpPlane(host, port, name="repro-loopback-encoder")
        self._plane.route("POST", "/encode", self._handle_encode)
        self._lock = threading.Lock()
        self._faults: "collections.deque[_Fault]" = collections.deque()
        self._pool = EncoderPool()
        self.delay = delay
        self._plane.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def url(self) -> str:
        return self._plane.url

    @property
    def requests_served(self) -> int:
        return self._pool.requests_served

    def close(self) -> None:
        self._plane.close()

    def __enter__(self) -> "LoopbackEncoderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fault injection -----------------------------------------------

    def inject(self, kind: str, *, seconds: float = 0.75) -> None:
        """Queue a one-shot fault for the next request (FIFO)."""
        with self._lock:
            self._faults.append(_Fault(kind, seconds))

    def _next_fault(self) -> Optional[_Fault]:
        with self._lock:
            return self._faults.popleft() if self._faults else None

    # -- encoding ------------------------------------------------------

    def _handle_encode(self, request: WireRequest) -> WireResponse:
        # Ordering is the fault contract: the fault queue pops *before*
        # the body is parsed, so an injected http_500/timeout fires even
        # for a request whose payload would not decode.
        if self.delay:
            time.sleep(self.delay)
        fault = self._next_fault()
        if fault is not None and fault.kind == "timeout":
            # Hold the request past the client's deadline; the response
            # below still completes (harmlessly — the client is gone).
            time.sleep(fault.seconds)
        if fault is not None and fault.kind == "http_500":
            return WireResponse(
                status=500, payload={"error": "injected service fault"}
            )
        body = self._pool.encode_request(request.json())
        entries = body["states"]
        if fault is not None and fault.kind == "shuffle":
            entries.reverse()
        elif fault is not None and fault.kind == "tamper":
            entries[0] = _tampered(entries[0])
        return WireResponse(
            payload=body,
            # A keep-alive client would otherwise wait out its deadline
            # for the missing bytes — tear so it sees a fast short read.
            torn=fault is not None and fault.kind == "torn",
        )


class FleetHarness:
    """N loopback replicas behind one context manager, for fleet tests.

    One replica can be made a persistent straggler (``slow_index`` /
    ``slow_delay``); the one-shot fault hooks stay reachable per replica
    via :attr:`replicas` or :meth:`inject`.

    ::

        with FleetHarness(3, slow_index=2, slow_delay=0.25) as fleet:
            fleet.inject(1, "http_500")       # one-shot, replica 1
            config = TransportConfig(urls=fleet.urls, hedge_after=0.9)
            backend = RemoteBackend(config=config)

    Attributes:
        replicas: the live :class:`LoopbackEncoderService` instances.
    """

    def __init__(
        self,
        n: int = 3,
        *,
        host: str = "127.0.0.1",
        slow_index: Optional[int] = None,
        slow_delay: float = 0.25,
    ):
        if n < 1:
            raise ValueError("a fleet needs at least one replica")
        if slow_index is not None and not 0 <= slow_index < n:
            raise ValueError(f"slow_index {slow_index} out of range for {n} replicas")
        self.replicas: List[LoopbackEncoderService] = []
        try:
            for i in range(n):
                delay = slow_delay if i == slow_index else 0.0
                self.replicas.append(LoopbackEncoderService(host=host, delay=delay))
        except BaseException:
            self.close()
            raise

    @property
    def urls(self) -> Tuple[str, ...]:
        return tuple(replica.url for replica in self.replicas)

    def inject(self, index: int, kind: str, *, seconds: float = 0.75) -> None:
        """Queue a one-shot fault on replica ``index`` (FIFO per replica)."""
        self.replicas[index].inject(kind, seconds=seconds)

    @property
    def requests_served(self) -> int:
        """Total successful responses across the fleet."""
        return sum(replica.requests_served for replica in self.replicas)

    def close(self) -> None:
        for replica in self.replicas:
            try:
                replica.close()
            except Exception:
                pass  # best-effort teardown; later replicas still close
        self.replicas = []

    def __enter__(self) -> "FleetHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _tampered(entry: Dict[str, object]) -> Dict[str, object]:
    """Corrupt the state bytes while keeping the *original* digest.

    This simulates payload corruption or a hostile service: the digest
    check on the client is the only thing standing between this and a
    silently wrong embedding.
    """
    raw = bytearray(base64.b64decode(str(entry["data"])))
    if raw:
        raw[0] ^= 0xFF
    return {**entry, "data": base64.b64encode(bytes(raw)).decode("ascii")}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Loopback encoder service (manual/CI smoke runs)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument(
        "--delay", type=float, default=0.0, help="seconds slept before each response"
    )
    args = parser.parse_args(argv)
    service = LoopbackEncoderService(host=args.host, port=args.port, delay=args.delay)
    print(f"loopback encoder service listening on {service.url}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
