"""Cross-layer chaos harness: one seeded plan for every fault injector.

The repo grew fault hooks one layer at a time: the work-stealing
scheduler honors ``$REPRO_SCHEDULER_TEST_CRASH`` / ``_STALL``, the
loopback encoder service queues per-request transport faults, and the
disk cache tier is exercised by hand-corrupting ``.npy`` entries.  Each
is useful alone but composing them — a worker crash *while* a replica
flakes *while* a cache write tears — meant ad-hoc test plumbing.

:class:`ChaosPlan` is that plumbing, unified.  A plan is a seeded,
declarative composition of injections across layers:

- **worker crashes / poisoned cells / stalls** — scheduler env-var
  injection (``worker_crash`` / ``poison_cell`` / ``worker_stall``),
  applied on ``__enter__`` and restored on ``__exit__``;
- **replica faults** — one-shot transport faults (timeout / http_500 /
  torn / tamper) queued FIFO onto a
  :class:`~repro.testing.encoder_service.LoopbackEncoderService` or a
  :class:`~repro.testing.encoder_service.FleetHarness` replica;
- **torn cache writes** — a seeded pick of an existing disk-tier entry
  truncated mid-payload, exercising the drop-and-recompute path;
- **parent kill-points** — a watcher that SIGKILLs a sweep process
  after its write-ahead journal records N completed cells, driving the
  crash/resume invariant end to end;
- **service kill-points** — the same idea against a live
  characterization service (``repro serve --state-dir``): SIGKILL once
  the per-job journals under the state dir record N cells, then the
  caller restarts the service over the same state dir and asserts the
  request journal replays every accepted request to completion.

The invariant the harness exists to check, stated once
(:func:`assert_sweep_invariant`): **every sweep completes, degrades
with named failures, or resumes bit-identically — it never hangs and
never silently drops a cell.**

Everything is deterministic under the plan's ``seed``: the same plan
against the same sweep injects the same faults, so chaos tests are
replayable, not flaky.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.runtime.scheduler import CRASH_ENV, STALL_ENV

__all__ = [
    "ChaosPlan",
    "assert_sweep_invariant",
    "count_journal_cells",
    "count_service_cells",
    "kill_when_journal_reaches",
    "kill_when_service_reaches",
]


def count_journal_cells(journal_dir: str) -> int:
    """Completed-cell records currently readable from a sweep journal.

    Counts digest-valid ``"cell"`` records across sealed and unsealed
    segments (deduplicated, exactly what a resume would replay).  Safe
    to call while the sweep is still appending — the journal fsyncs
    every record, so this only ever under-counts by in-flight cells.
    """
    from repro.runtime.journal import _replay_segments

    completed, _dropped = _replay_segments(journal_dir)
    return len(completed)


def count_service_cells(state_dir: str) -> int:
    """Completed cells across *all* per-job sweep journals of a service.

    A characterization service (``repro serve --state-dir``) keeps one
    write-ahead sweep journal per accepted job under
    ``state_dir/jobs/<id>``; this sums their durable cell counts — the
    ground truth for "how far did the service get" that the
    kill-under-live-traffic scenario triggers on.
    """
    jobs_dir = os.path.join(state_dir, "jobs")
    try:
        names = os.listdir(jobs_dir)
    except OSError:
        return 0
    total = 0
    for name in sorted(names):
        path = os.path.join(jobs_dir, name)
        if os.path.isdir(path):
            total += count_journal_cells(path)
    return total


def _kill_when(
    count, threshold: int, pid: int, *, poll: float, timeout: float, sig: int, name: str
) -> threading.Thread:
    """Watcher thread: send ``sig`` to ``pid`` once ``count()`` reaches
    ``threshold``.  Daemonized; exits silently if the target disappears
    or the timeout lapses first."""

    def _watch() -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if count() >= threshold:
                try:
                    os.kill(pid, sig)
                except (ProcessLookupError, PermissionError):
                    pass
                return
            try:
                os.kill(pid, 0)  # stop polling once the target is gone
            except (ProcessLookupError, PermissionError):
                return
            time.sleep(poll)

    thread = threading.Thread(target=_watch, daemon=True, name=name)
    thread.start()
    return thread


def kill_when_journal_reaches(
    journal_dir: str,
    cells: int,
    pid: int,
    *,
    poll: float = 0.02,
    timeout: float = 120.0,
    sig: int = signal.SIGKILL,
) -> threading.Thread:
    """Watcher thread: SIGKILL ``pid`` once the journal holds ``cells``.

    This is the parent kill-point of the chaos harness: the journal is
    the ground truth for "how far did the sweep get", so killing on a
    journal count (not a sleep) makes the crash point deterministic
    under scheduling noise.  The thread is a daemon; it exits silently
    if the process finishes or disappears first.
    """
    return _kill_when(
        lambda: count_journal_cells(journal_dir),
        cells,
        pid,
        poll=poll,
        timeout=timeout,
        sig=sig,
        name="chaos-killer",
    )


def kill_when_service_reaches(
    state_dir: str,
    cells: int,
    pid: int,
    *,
    poll: float = 0.02,
    timeout: float = 120.0,
    sig: int = signal.SIGKILL,
) -> threading.Thread:
    """Watcher thread: SIGKILL a *service* process mid-request.

    Same deterministic-crash-point idea as
    :func:`kill_when_journal_reaches`, but counting durable cells across
    every per-job journal under the service's ``--state-dir``
    (:func:`count_service_cells`) — the trigger for the
    kill-and-resume-under-live-traffic scenario: restart the service
    over the same state dir and assert the journaled requests finish.
    """
    return _kill_when(
        lambda: count_service_cells(state_dir),
        cells,
        pid,
        poll=poll,
        timeout=timeout,
        sig=sig,
        name="chaos-service-killer",
    )


class ChaosPlan:
    """Seeded, composable fault plan applied as a context manager.

    Builder methods return ``self`` so a plan reads as one declaration::

        plan = (
            ChaosPlan(seed=7)
            .worker_crash(0)
            .replica_fault(service, "timeout", seconds=0.5)
            .torn_cache_write(cache_dir)
        )
        with plan:
            sweep = observatory.sweep(...)

    ``__enter__`` applies every injection (env vars saved for restore,
    replica faults queued, cache entries torn); ``__exit__`` restores
    the environment so plans never leak into the next test.  At most
    one scheduler injection (crash *or* poison) can be active — the
    scheduler reads a single spec — and the plan enforces that at build
    time rather than letting one silently shadow the other.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._crash_spec: Optional[str] = None
        self._stall_spec: Optional[str] = None
        self._replica_faults: List[Tuple[object, Optional[int], str, float]] = []
        self._torn_dirs: List[str] = []
        self._kill_points: List[Tuple[str, int, int]] = []
        self._service_kills: List[Tuple[str, int, int]] = []
        self._saved_env: Dict[str, Optional[str]] = {}
        self._watchers: List[threading.Thread] = []
        self._entered = False

    # -- scheduler layer ----------------------------------------------

    def _set_crash(self, spec: str) -> "ChaosPlan":
        if self._crash_spec is not None:
            raise ValueError(
                f"scheduler crash injection already set to "
                f"{self._crash_spec!r}; the scheduler honors one spec"
            )
        self._crash_spec = spec
        return self

    def worker_crash(self, worker_id: int) -> "ChaosPlan":
        """Hard-exit worker ``worker_id`` on its first dispatched group."""
        return self._set_crash(f"worker:{worker_id}")

    def poison_cell(self, model: str, property_name: str) -> "ChaosPlan":
        """Crash whichever worker reaches cell ``model/property_name``."""
        return self._set_crash(f"cell:{model}/{property_name}")

    def worker_stall(self, worker_id: int, seconds: float) -> "ChaosPlan":
        """Make worker ``worker_id`` a straggler before its first group."""
        if self._stall_spec is not None:
            raise ValueError(
                f"scheduler stall injection already set to "
                f"{self._stall_spec!r}; the scheduler honors one spec"
            )
        self._stall_spec = f"{worker_id}:{seconds}"
        return self

    # -- transport layer ----------------------------------------------

    def replica_fault(
        self,
        service: object,
        kind: str,
        *,
        seconds: float = 0.75,
        replica: Optional[int] = None,
        count: int = 1,
    ) -> "ChaosPlan":
        """Queue ``count`` one-shot transport faults on an encoder double.

        ``service`` is a
        :class:`~repro.testing.encoder_service.LoopbackEncoderService`
        (``replica`` ignored) or a
        :class:`~repro.testing.encoder_service.FleetHarness`
        (``replica`` selects the target; unset picks one under the
        plan's seed at apply time).  Fault ``kind`` is validated by the
        service when applied (timeout / http_500 / torn / tamper /
        shuffle).
        """
        if count < 1:
            raise ValueError("count must be positive")
        for _ in range(count):
            self._replica_faults.append((service, replica, kind, seconds))
        return self

    # -- disk layer ---------------------------------------------------

    def torn_cache_write(self, cache_dir: str) -> "ChaosPlan":
        """Tear one existing disk-tier entry (seeded pick) on apply.

        The entry is truncated mid-payload — exactly the state a crash
        between payload write and rename leaves behind.  The disk tier's
        contract is to *drop and recompute*, never to serve the torn
        bytes, so a sweep over a torn cache must still be bit-identical.
        Applying to a cache directory with no entries is a no-op (there
        is nothing to tear — callers populate the cache first).
        """
        self._torn_dirs.append(cache_dir)
        return self

    # -- parent kill-points -------------------------------------------

    def parent_kill(
        self, journal_dir: str, after_cells: int, pid: int
    ) -> "ChaosPlan":
        """SIGKILL ``pid`` once ``journal_dir`` records ``after_cells``.

        The watcher starts on ``__enter__`` (see
        :func:`kill_when_journal_reaches`).
        """
        if after_cells < 1:
            raise ValueError("after_cells must be positive")
        self._kill_points.append((journal_dir, after_cells, pid))
        return self

    def service_kill(
        self, state_dir: str, after_cells: int, pid: int
    ) -> "ChaosPlan":
        """SIGKILL a live characterization service mid-request.

        The watcher (started on ``__enter__``, see
        :func:`kill_when_service_reaches`) counts durable cells across
        every per-job journal under the service's ``state_dir`` and
        kills ``pid`` once ``after_cells`` are recorded — i.e. while
        accepted requests are provably in flight.  The scenario's second
        half is the caller's: restart the service over the same
        ``state_dir`` and assert its request journal replays the
        accepted-but-unfinished work to completion.
        """
        if after_cells < 1:
            raise ValueError("after_cells must be positive")
        self._service_kills.append((state_dir, after_cells, pid))
        return self

    # -- lifecycle ----------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Loggable summary of the plan (what a CI failure should print)."""
        return {
            "seed": self.seed,
            "scheduler_crash": self._crash_spec,
            "scheduler_stall": self._stall_spec,
            "replica_faults": [
                {"kind": kind, "seconds": seconds, "replica": replica}
                for _service, replica, kind, seconds in self._replica_faults
            ],
            "torn_cache_dirs": list(self._torn_dirs),
            "parent_kills": [
                {"journal": journal, "after_cells": cells, "pid": pid}
                for journal, cells, pid in self._kill_points
            ],
            "service_kills": [
                {"state_dir": state_dir, "after_cells": cells, "pid": pid}
                for state_dir, cells, pid in self._service_kills
            ],
        }

    def _tear_one_entry(self, cache_dir: str) -> Optional[str]:
        try:
            names = sorted(
                name
                for name in os.listdir(cache_dir)
                if name.endswith(".npy") and not name.startswith(".tmp-")
            )
        except FileNotFoundError:
            return None
        if not names:
            return None
        victim = os.path.join(cache_dir, self.rng.choice(names))
        size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.truncate(max(1, size // 2))
        return victim

    def __enter__(self) -> "ChaosPlan":
        if self._entered:
            raise RuntimeError("ChaosPlan is not reentrant; build a new plan")
        self._entered = True
        env: Dict[str, Optional[str]] = {}
        if self._crash_spec is not None:
            env[CRASH_ENV] = self._crash_spec
        if self._stall_spec is not None:
            env[STALL_ENV] = self._stall_spec
        for key, value in env.items():
            self._saved_env[key] = os.environ.get(key)
            os.environ[key] = value  # type: ignore[assignment]
        for service, replica, kind, seconds in self._replica_faults:
            if hasattr(service, "replicas"):  # FleetHarness
                index = (
                    replica
                    if replica is not None
                    else self.rng.randrange(len(service.replicas))
                )
                service.inject(index, kind, seconds=seconds)
            else:  # LoopbackEncoderService
                service.inject(kind, seconds=seconds)
        for cache_dir in self._torn_dirs:
            self._tear_one_entry(cache_dir)
        for journal_dir, cells, pid in self._kill_points:
            self._watchers.append(
                kill_when_journal_reaches(journal_dir, cells, pid)
            )
        for state_dir, cells, pid in self._service_kills:
            self._watchers.append(
                kill_when_service_reaches(state_dir, cells, pid)
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for key, value in self._saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        self._saved_env.clear()
        self._entered = False


def assert_sweep_invariant(sweep, planned: int) -> None:
    """Assert the harness invariant on a finished sweep.

    ``planned`` is the number of runnable cells the caller expected
    (after skips).  Every one of them must be accounted for **exactly
    once** — as a completed cell or a named :class:`CellFailure` —
    with no duplicates and nothing silently dropped.  Hang-freedom is
    asserted by the sweep having returned at all (pair with a test
    timeout); resume bit-identity is asserted by the caller comparing
    ``to_dict()`` forms across runs.
    """
    seen = [(c.model_name, c.property_name) for c in sweep.cells]
    failed = [(f.model_name, f.property_name) for f in sweep.failures]
    combined = seen + failed
    if len(set(combined)) != len(combined):
        raise AssertionError(
            f"sweep double-counted cells: completed={sorted(seen)} "
            f"failed={sorted(failed)}"
        )
    if len(combined) != planned:
        raise AssertionError(
            f"sweep dropped cells: {planned} planned, "
            f"{len(seen)} completed + {len(failed)} degraded accounted"
        )
    for failure in sweep.failures:
        if not failure.error or not failure.message:
            raise AssertionError(
                f"degraded cell {failure.model_name}/"
                f"{failure.property_name} lacks a named error: {failure!r}"
            )
