"""Test doubles shipped with the library.

:class:`~repro.testing.encoder_service.LoopbackEncoderService` is an
in-process HTTP encoding service that runs a real local backend behind
the TokenArray wire format — what integration tests (and the CI fleet
smoke) point the ``"remote"`` encoder backend at.
:class:`~repro.testing.encoder_service.FleetHarness` stands up several of
them (one optionally slow or fault-injected) behind a single context
manager for fleet-scheduling tests without real hosts.
"""

from repro.testing.encoder_service import FleetHarness, LoopbackEncoderService

__all__ = ["FleetHarness", "LoopbackEncoderService"]
