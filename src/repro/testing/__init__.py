"""Test doubles shipped with the library.

:class:`~repro.testing.encoder_service.LoopbackEncoderService` is an
in-process HTTP encoding service that runs a real local backend behind
the TokenArray wire format — what integration tests (and the CI fleet
smoke) point the ``"remote"`` encoder backend at.
:class:`~repro.testing.encoder_service.FleetHarness` stands up several of
them (one optionally slow or fault-injected) behind a single context
manager for fleet-scheduling tests without real hosts.
:class:`~repro.testing.chaos.ChaosPlan` composes every fault injector —
scheduler worker crashes/stalls, replica transport faults, torn cache
writes, parent kill-points — into one seeded, replayable plan, and
:func:`~repro.testing.chaos.assert_sweep_invariant` states the contract
chaos tests check: every sweep completes, degrades with named failures,
or resumes bit-identically — never hangs, never silently drops a cell.
"""

from repro.testing.chaos import (
    ChaosPlan,
    assert_sweep_invariant,
    count_journal_cells,
    count_service_cells,
    kill_when_journal_reaches,
    kill_when_service_reaches,
)
from repro.testing.encoder_service import FleetHarness, LoopbackEncoderService

__all__ = [
    "ChaosPlan",
    "FleetHarness",
    "LoopbackEncoderService",
    "assert_sweep_invariant",
    "count_journal_cells",
    "count_service_cells",
    "kill_when_journal_reaches",
    "kill_when_service_reaches",
]
