"""Test doubles shipped with the library.

Currently one: :class:`~repro.testing.encoder_service.LoopbackEncoderService`,
an in-process HTTP encoding service that runs a real local backend behind
the TokenArray wire format — what integration tests (and the CI remote
smoke) point the ``"remote"`` encoder backend at.
"""

from repro.testing.encoder_service import LoopbackEncoderService

__all__ = ["LoopbackEncoderService"]
