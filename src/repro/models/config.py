"""Model configuration: every architectural knob of a surrogate model.

The zoo modules (``repro.models.zoo``) each define one :class:`ModelConfig`;
DESIGN.md section 5 maps each knob back to the mechanism the paper credits
for the corresponding model's behaviour.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Optional

from repro.core.levels import EmbeddingLevel
from repro.errors import ModelError


class Serialization(enum.Enum):
    """How a table is flattened into a token sequence."""

    ROW_WISE = "row_wise"        # row by row (TURL, TAPAS, TaBERT, BERT, …)
    COLUMN_WISE = "column_wise"  # column by column with per-column [CLS] (DODUO)
    ROW_TEMPLATE = "row_template"  # each row its own text sequence (TapTap)


class PositionKind(enum.Enum):
    """Positional-information scheme of the encoder."""

    NONE = "none"              # order-blind
    ABSOLUTE = "absolute"      # learned absolute index embeddings (BERT family)
    RELATIVE = "relative"      # distance-decay attention bias (T5)
    ROW_COLUMN = "row_column"  # separate row-id and column-id embeddings (TAPAS)


class AttentionMask(enum.Enum):
    """Which tokens may attend to which."""

    FULL = "full"                  # every token sees every token
    COLUMN_LOCAL = "column_local"  # vertical attention within a column (TaBERT)
    ROW_LOCAL = "row_local"        # within a row only (TapTap)


class OutputNorm(enum.Enum):
    """Final output normalization."""

    LAYER = "layer"  # final layer norm (most models)
    NONE = "none"    # raw residual stream (DODUO's task head consumes raw CLS)


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Full specification of one surrogate embedding model.

    Attributes:
        name: registry name, e.g. ``"bert"``.
        dim: embedding dimensionality.
        n_layers: transformer layers.
        n_heads: attention heads (must divide ``dim``).
        max_tokens: input budget; serialization fits rows by binary search.
        serialization: table flattening scheme.
        position_kind: positional-information scheme.
        position_scale: magnitude of absolute position embeddings relative to
            content vectors (0 disables them even for ABSOLUTE).
        row_position_scale / column_position_scale: magnitudes of the row-id
            and column-id embeddings for ROW_COLUMN positions; the column-id
            scale also injects mild column-identity signal for other kinds
            when nonzero.
        attention_mask: attention visibility pattern.
        attention_gain: multiplier on the attention output before the
            residual add — how much cross-token mixing contributes relative
            to the token's own stream.  Anchor-based models (DODUO) need
            gain > 1 for their [CLS] state to track sequence content.
        attention_temperature: multiplier on attention scores before the
            softmax.  > 1 gives peaked, selective attention (fine-tuned
            table models show sharp per-column patterns), which makes
            anchor states sensitive to which value sits at which position.
        relative_tau: distance-decay constant for RELATIVE positions.
        header_weight: weight of header tokens when pooling column/table
            embeddings (0 = schema-blind like DODUO, >1 = header-dominated
            like TaBERT).
        include_caption: whether the caption is serialized.
        cls_per_column: insert a [CLS] anchor before each column and use it
            as the column embedding (DODUO).
        content_snapshot_rows: if set, only the first K rows are serialized
            (TaBERT's content snapshot, K=3).
        anisotropy: strength of the rank-one output amplification along a
            fixed model direction (T5's stretched geometry); 0 disables.
        anisotropy_shift: constant component added along the anisotropy
            direction (pushes cosine up while MCV stays high).
        output_norm: final normalization.
        output_scale: multiplier on the final hidden states (DODUO's
            unnormalized raw stream uses > 1).
        lowercase: tokenizer case folding (False = RoBERTa-style).
        levels: embedding levels this model exposes.
        seed_name: namespace for the model's deterministic weights; defaults
            to ``name``.
    """

    name: str
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_tokens: int = 512
    serialization: Serialization = Serialization.ROW_WISE
    position_kind: PositionKind = PositionKind.ABSOLUTE
    position_scale: float = 0.1
    row_position_scale: float = 0.0
    column_position_scale: float = 0.0
    attention_mask: AttentionMask = AttentionMask.FULL
    attention_gain: float = 1.0
    attention_temperature: float = 1.0
    relative_tau: float = 32.0
    header_weight: float = 1.0
    include_caption: bool = False
    cls_per_column: bool = False
    content_snapshot_rows: Optional[int] = None
    anisotropy: float = 0.0
    anisotropy_shift: float = 0.0
    output_norm: OutputNorm = OutputNorm.LAYER
    output_scale: float = 1.0
    lowercase: bool = True
    levels: FrozenSet[EmbeddingLevel] = frozenset(
        {
            EmbeddingLevel.TABLE,
            EmbeddingLevel.COLUMN,
            EmbeddingLevel.ROW,
            EmbeddingLevel.CELL,
            EmbeddingLevel.ENTITY,
        }
    )
    seed_name: str = ""

    def __post_init__(self):
        if self.dim < 1 or self.n_layers < 0 or self.n_heads < 1:
            raise ModelError("dim/n_layers/n_heads must be positive")
        if self.dim % self.n_heads != 0:
            raise ModelError(
                f"dim {self.dim} must be divisible by n_heads {self.n_heads}"
            )
        if self.max_tokens < 8:
            raise ModelError("max_tokens must be at least 8")
        if self.content_snapshot_rows is not None and self.content_snapshot_rows < 1:
            raise ModelError("content_snapshot_rows must be positive when set")
        if not self.seed_name:
            object.__setattr__(self, "seed_name", self.name)

    def supports(self, level: EmbeddingLevel) -> bool:
        return level in self.levels

    # -- wire form -----------------------------------------------------
    #
    # The remote encoder transport ships the full config per request so
    # the service can rebuild the exact encoder (weights are a pure
    # function of seed_name/dim/n_layers); enums travel by value and the
    # levels frozenset as a sorted list, so the payload is plain JSON.

    def to_jsonable(self) -> Dict[str, object]:
        """JSON-safe dict that :meth:`from_jsonable` rebuilds exactly."""
        out: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, enum.Enum):
                value = value.value
            elif isinstance(value, frozenset):
                value = sorted(level.value for level in value)
            out[field.name] = value
        return out

    @classmethod
    def from_jsonable(cls, payload: "Dict[str, object]") -> "ModelConfig":
        """Invert :meth:`to_jsonable`; raises :class:`ModelError` on junk."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ModelError(f"unknown ModelConfig fields: {unknown}")
        kwargs = dict(payload)
        try:
            for key, enum_type in (
                ("serialization", Serialization),
                ("position_kind", PositionKind),
                ("attention_mask", AttentionMask),
                ("output_norm", OutputNorm),
            ):
                if key in kwargs:
                    kwargs[key] = enum_type(kwargs[key])
            if "levels" in kwargs:
                kwargs["levels"] = frozenset(
                    EmbeddingLevel(v) for v in kwargs["levels"]
                )
            # TypeError covers missing required fields and wrong-typed
            # values reaching __post_init__'s comparisons; both are
            # payload junk, not programming errors here.
            return cls(**kwargs)
        except (TypeError, ValueError) as error:
            raise ModelError(f"malformed ModelConfig payload: {error}") from error
