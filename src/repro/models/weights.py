"""Deterministic parameter generation for surrogate encoders.

All weights are drawn from seeded Gaussians keyed by (model seed name,
layer, part) so that a model's parameters are identical across processes —
the reproducibility property every Observatory measure depends on.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.seeding import rng_for


def _matrix(seed_name: str, label: str, rows: int, cols: int, scale: float) -> np.ndarray:
    rng = rng_for("weights", seed_name, label)
    return (rng.standard_normal((rows, cols)) * scale).astype(np.float64)


class LayerWeights:
    """Parameters of one transformer layer (pre-norm MHSA + FFN)."""

    def __init__(self, seed_name: str, layer: int, dim: int, hidden: int):
        # 1/sqrt(dim) keeps activations near unit variance through depth.
        scale = 1.0 / np.sqrt(dim)
        tag = f"layer{layer}"
        self.wq = _matrix(seed_name, f"{tag}.wq", dim, dim, scale)
        self.wk = _matrix(seed_name, f"{tag}.wk", dim, dim, scale)
        self.wv = _matrix(seed_name, f"{tag}.wv", dim, dim, scale)
        self.wo = _matrix(seed_name, f"{tag}.wo", dim, dim, scale)
        self.w1 = _matrix(seed_name, f"{tag}.w1", dim, hidden, scale)
        self.w2 = _matrix(seed_name, f"{tag}.w2", hidden, dim, 1.0 / np.sqrt(hidden))


class ModelWeights:
    """All parameters of a surrogate encoder, generated once per model."""

    def __init__(self, seed_name: str, dim: int, n_layers: int, ffn_multiplier: int = 2):
        self.seed_name = seed_name
        self.dim = dim
        self.layers = [
            LayerWeights(seed_name, i, dim, ffn_multiplier * dim)
            for i in range(n_layers)
        ]
        rng = rng_for("weights", seed_name, "anisotropy")
        direction = rng.standard_normal(dim)
        self.anisotropy_direction = direction / np.linalg.norm(direction)
        probe = rng.standard_normal(dim)
        self.anisotropy_probe = probe / np.linalg.norm(probe)
        self._position_cache: Dict[str, np.ndarray] = {}
        self._position_matrices: Dict[str, np.ndarray] = {}

    def position_vector(self, kind: str, index: int) -> np.ndarray:
        """Deterministic embedding for a positional index (cached).

        ``kind`` namespaces the three positional vocabularies ("abs", "row",
        "col") so row id 3 and column id 3 get independent vectors.
        """
        key = f"{kind}:{index}"
        cached = self._position_cache.get(key)
        if cached is None:
            rng = rng_for("weights", self.seed_name, "pos", kind, index)
            cached = rng.standard_normal(self.dim).astype(np.float64)
            self._position_cache[key] = cached
        return cached

    def position_matrix(self, kind: str, n: int) -> np.ndarray:
        """Stacked positional embeddings for indices ``0..n-1`` (cached).

        Row ``i`` is bit-identical to :meth:`position_vector` — same seeded
        draw per index — but the matrix form lets the encoder add a whole
        sequence's positional terms in one vectorized slice/gather instead
        of a per-token loop.  Grown geometrically; callers slice or gather,
        never mutate.  May hold more than ``n`` rows.
        """
        mat = self._position_matrices.get(kind)
        have = 0 if mat is None else mat.shape[0]
        if have < n:
            size = max(n, 2 * have, 64)
            grown = np.empty((size, self.dim), dtype=np.float64)
            if have:
                grown[:have] = mat
            for i in range(have, size):
                rng = rng_for("weights", self.seed_name, "pos", kind, i)
                grown[i] = rng.standard_normal(self.dim).astype(np.float64)
            self._position_matrices[kind] = mat = grown
        return mat

    def segment_matrix(self, kinds: "tuple") -> np.ndarray:
        """Stacked segment vectors for the given role kinds, in order."""
        key = "segmat:" + "|".join(kinds)
        cached = self._position_cache.get(key)
        if cached is None:
            cached = np.stack([self.segment_vector(kind) for kind in kinds])
            self._position_cache[key] = cached
        return cached

    def segment_vector(self, kind: str) -> np.ndarray:
        """Embedding for a token's structural role (header/value/caption/special)."""
        key = f"seg:{kind}"
        cached = self._position_cache.get(key)
        if cached is None:
            rng = rng_for("weights", self.seed_name, "segment", kind)
            cached = rng.standard_normal(self.dim).astype(np.float64)
            self._position_cache[key] = cached
        return cached
