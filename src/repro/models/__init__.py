"""Surrogate embedding models.

Deterministic numpy transformer encoders standing in for the nine pretrained
checkpoints the paper evaluates.  Each surrogate reproduces the
*architectural mechanisms* the paper attributes each model's behaviour to —
serialization order, positional-encoding scheme, attention masking, pooling
anchors, header/value weighting, and output geometry — on top of a content
space shared across models.
"""

from repro.models.backends import (
    EncoderBackend,
    LocalBackend,
    PaddedBackend,
    RemoteBackend,
    TransportStats,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.models.config import ModelConfig
from repro.models.base import EmbeddingModel, LevelBatchPlan, SurrogateModel
from repro.models.registry import available_models, load_model, register_model
from repro.models.token_array import Token, TokenArray, TokenInterner, TokenRole

__all__ = [
    "EncoderBackend",
    "LocalBackend",
    "ModelConfig",
    "EmbeddingModel",
    "LevelBatchPlan",
    "PaddedBackend",
    "RemoteBackend",
    "SurrogateModel",
    "Token",
    "TokenArray",
    "TokenInterner",
    "TokenRole",
    "TransportStats",
    "available_backends",
    "available_models",
    "load_model",
    "register_backend",
    "register_model",
    "resolve_backend",
]
