"""Embedding-model interface and the configurable surrogate implementation.

:class:`EmbeddingModel` is the contract Observatory properties program
against — the paper's extensibility point ("researchers can analyze new
models by specifying the procedure of embedding inference following the
implemented interface").  :class:`SurrogateModel` is the deterministic
numpy implementation driven entirely by a :class:`ModelConfig`; the model
zoo instantiates it nine ways.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.core.levels import EmbeddingLevel
from repro.errors import ModelError, UnsupportedLevelError
from repro.models import aggregate
from repro.models.backends import resolve_backend
from repro.models.config import ModelConfig, Serialization
from repro.models.encoder import Encoder
from repro.models.serializers import (
    ColumnWiseSerializer,
    RowTemplateSerializer,
    RowWiseSerializer,
)
from repro.models.token_array import TokenArray
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer, TokenizerConfig


class EmbeddingModel(abc.ABC):
    """Contract every analyzable model implements.

    All ``embed_*`` methods are total over the model's supported levels and
    raise :class:`UnsupportedLevelError` otherwise.  Embeddings are
    deterministic functions of the input table.
    """

    name: str
    dim: int

    @abc.abstractmethod
    def supported_levels(self) -> frozenset:
        """The :class:`EmbeddingLevel` values this model exposes."""

    def supports(self, level: EmbeddingLevel) -> bool:
        return level in self.supported_levels()

    @abc.abstractmethod
    def embed_columns(self, table: Table) -> np.ndarray:
        """Column embeddings, shape [table.num_columns, dim]."""

    @abc.abstractmethod
    def embed_rows(self, table: Table) -> np.ndarray:
        """Row embeddings for serialized rows, shape [k, dim] with k <= num_rows.

        Serialization keeps a prefix of the table's rows, so row ``i`` of the
        result corresponds to row ``i`` of the input table.
        """

    @abc.abstractmethod
    def embed_table(self, table: Table) -> np.ndarray:
        """Whole-table embedding, shape [dim]."""

    @abc.abstractmethod
    def embed_cells(
        self, table: Table, coords: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Embeddings of specific cells; coordinates truncated away are absent."""

    @abc.abstractmethod
    def embed_entities(self, table: Table) -> Dict[str, np.ndarray]:
        """Embeddings of linked entities, keyed by entity id."""

    @abc.abstractmethod
    def embed_value_column(
        self, header: str, values: Sequence[object]
    ) -> np.ndarray:
        """Embedding of a standalone column (header + values), shape [dim].

        Columns longer than the input limit are chunked with the shared
        header and the chunk embeddings aggregated (Measure 5 protocol).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, dim={self.dim})"


@dataclasses.dataclass
class LevelBatchPlan:
    """Serialized half of a level-batch request (see ``serialize_levels``).

    Holds everything :meth:`SurrogateModel.finish_levels` needs to turn
    encoder outputs back into per-table level bundles — the seam that lets
    the streaming executor serialize chunk *k+1* while chunk *k*'s token
    lists are still inside the encoder.
    """

    tables: List[Table]
    effectives: List[Table]
    token_lists: List[TokenArray]
    levels_list: List[Tuple[EmbeddingLevel, ...]]


class SurrogateModel(EmbeddingModel):
    """Config-driven surrogate: tokenize -> serialize -> encode -> aggregate."""

    def __init__(self, config: ModelConfig, backend=None):
        self.config = config
        self.name = config.name
        self.dim = config.dim
        self.tokenizer = Tokenizer(
            config=TokenizerConfig(lowercase=config.lowercase)
        )
        self.encoder = Encoder(config, backend=backend)
        if config.serialization == Serialization.COLUMN_WISE:
            self._serializer = ColumnWiseSerializer(
                self.tokenizer,
                config.max_tokens,
                include_header=config.header_weight > 0,
            )
        elif config.serialization == Serialization.ROW_TEMPLATE:
            self._serializer = RowTemplateSerializer(self.tokenizer, config.max_tokens)
        else:
            self._serializer = RowWiseSerializer(
                self.tokenizer,
                config.max_tokens,
                include_header=config.header_weight > 0,
                include_caption=config.include_caption,
            )

    # ------------------------------------------------------------------
    # Encoder backend
    # ------------------------------------------------------------------

    @property
    def backend(self):
        """The encoder's batching strategy (:mod:`repro.models.backends`)."""
        return self.encoder.backend

    def set_backend(self, backend) -> "SurrogateModel":
        """Swap the batching strategy; embeddings of the exact (local)
        backend are bit-identical, padded backends are within their
        documented tolerance.  Returns self for chaining."""
        self.encoder.backend = resolve_backend(backend)
        return self

    # ------------------------------------------------------------------
    # Pipeline plumbing
    # ------------------------------------------------------------------

    def _effective_table(self, table: Table) -> Table:
        """Apply the model's internal input policy (TaBERT content snapshot)."""
        k = self.config.content_snapshot_rows
        if k is not None and table.num_rows > k:
            return table.head(k)
        return table

    def _encode_table(self, table: Table) -> Tuple[TokenArray, np.ndarray, Table]:
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            raise ModelError(
                f"{self.name} encodes rows independently; use embed_rows"
            )
        effective = self._effective_table(table)
        with telemetry.span("serialize"):
            tokens = self._serializer.serialize(effective)
        with telemetry.span("encode"):
            states = self.encoder.encode(tokens)
        return tokens, states, effective

    def fitted_rows(self, table: Table) -> int:
        """How many leading rows of ``table`` the model actually ingests."""
        effective = self._effective_table(table)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            return effective.num_rows
        return max(1, min(effective.num_rows, self._serializer.fit_rows(effective)))

    def _require(self, level: EmbeddingLevel) -> None:
        if not self.config.supports(level):
            raise UnsupportedLevelError(self.name, level.value)

    def supported_levels(self) -> frozenset:
        return self.config.levels

    # ------------------------------------------------------------------
    # Bundled / batched level embeddings (the runtime's fast path)
    # ------------------------------------------------------------------

    def _aggregate_level(
        self,
        level: EmbeddingLevel,
        tokens: TokenArray,
        states: np.ndarray,
        table: Table,
        effective: Table,
    ) -> np.ndarray:
        """One level's aggregate from an already-encoded table."""
        if level == EmbeddingLevel.COLUMN:
            return aggregate.column_embeddings(
                tokens,
                states,
                table.num_columns,
                header_weight=self.config.header_weight,
                use_cls_anchor=self.config.cls_per_column,
            )
        if level == EmbeddingLevel.ROW:
            n_rows = aggregate.embedded_row_count(tokens)
            return aggregate.row_embeddings(
                tokens, states, min(n_rows, effective.num_rows)
            )
        if level == EmbeddingLevel.TABLE:
            return aggregate.table_embedding(
                tokens, states, header_weight=self.config.header_weight
            )
        raise ModelError(f"level {level} has no bundled aggregate")

    def embed_levels(
        self, table: Table, levels: Sequence[EmbeddingLevel]
    ) -> Dict[EmbeddingLevel, np.ndarray]:
        """Column/row/table embeddings from a *single* encoder pass.

        The dedicated ``embed_columns``/``embed_rows``/``embed_table``
        methods each re-encode the table; a property that needs several
        levels of the same table (the shuffle sweeps need all three) pays
        the transformer cost once here.  Results are identical to the
        dedicated methods — same tokens, same states, same aggregates.
        """
        levels = tuple(levels)
        for level in levels:
            self._require(level)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            # Rows are encoded independently; there is no shared pass.
            # Route through the dedicated methods so unsupported levels
            # fail with the same ModelError the single-call path raises.
            dedicated = {
                EmbeddingLevel.COLUMN: self.embed_columns,
                EmbeddingLevel.ROW: self.embed_rows,
                EmbeddingLevel.TABLE: self.embed_table,
            }
            return {level: dedicated[level](table) for level in levels}
        tokens, states, effective = self._encode_table(table)
        with telemetry.span("aggregate"):
            return {
                level: self._aggregate_level(level, tokens, states, table, effective)
                for level in levels
            }

    def serialize_levels(
        self,
        tables: Sequence[Table],
        levels_list: Sequence[Sequence[EmbeddingLevel]],
    ) -> Optional[LevelBatchPlan]:
        """Serialization half of :meth:`embed_levels_batch`.

        Returns ``None`` when there is no shared encoder pass to plan
        (ROW_TEMPLATE models encode rows independently) — callers fall
        back to the per-table path.  Splitting serialization from the
        encode lets the streaming executor overlap the two across chunks.
        """
        if len(tables) != len(levels_list):
            raise ModelError("tables and levels_list must have equal length")
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            return None
        for levels in levels_list:
            for level in levels:
                self._require(level)
        with telemetry.span("serialize"):
            effectives = [self._effective_table(t) for t in tables]
            token_lists = [self._serializer.serialize(e) for e in effectives]
        return LevelBatchPlan(
            tables=list(tables),
            effectives=effectives,
            token_lists=token_lists,
            levels_list=[tuple(levels) for levels in levels_list],
        )

    def finish_levels(
        self, plan: LevelBatchPlan, states_list: Sequence[np.ndarray]
    ) -> List[Dict[EmbeddingLevel, np.ndarray]]:
        """Aggregation half of :meth:`embed_levels_batch`."""
        out: List[Dict[EmbeddingLevel, np.ndarray]] = []
        with telemetry.span("aggregate"):
            for table, effective, tokens, states, levels in zip(
                plan.tables, plan.effectives, plan.token_lists, states_list, plan.levels_list
            ):
                out.append(
                    {
                        level: self._aggregate_level(
                            level, tokens, states, table, effective
                        )
                        for level in levels
                    }
                )
        return out

    def embed_levels_batch(
        self,
        tables: Sequence[Table],
        levels_list: Sequence[Sequence[EmbeddingLevel]],
        *,
        batch_size: int = 8,
    ) -> List[Dict[EmbeddingLevel, np.ndarray]]:
        """Bundled level embeddings for many tables with a batched encoder.

        ``levels_list[i]`` names the levels wanted for ``tables[i]``.  All
        tables are serialized up front (:meth:`serialize_levels`) and
        driven through :meth:`Encoder.encode_batch`, whose configured
        backend batches the transformer math — the exact local backend is
        numerically identical to encoding each table alone; a padded
        backend is within its documented tolerance.
        """
        plan = self.serialize_levels(tables, levels_list)
        if plan is None:
            return [
                self.embed_levels(t, lv) for t, lv in zip(tables, levels_list)
            ]
        with telemetry.span("encode"):
            states_list = self.encoder.encode_batch(
                plan.token_lists, batch_size=batch_size
            )
        return self.finish_levels(plan, states_list)

    def embed_value_columns_batch(
        self,
        requests: Sequence[Tuple[str, Sequence[object]]],
        *,
        batch_size: int = 8,
    ) -> List[np.ndarray]:
        """Standalone column embeddings for many requests, batch-encoded.

        Chunk plans are laid out for every request up front and all chunk
        serializations are driven through :meth:`Encoder.encode_batch`;
        per-request aggregation mirrors :meth:`embed_value_column` exactly
        (single-chunk requests return the chunk embedding directly,
        multi-chunk requests the length-weighted mean).
        """
        self._require(EmbeddingLevel.COLUMN)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            # Rows are encoded independently; the single-call path already
            # is the batch plan.
            return [
                self.embed_value_column(header, values)
                for header, values in requests
            ]
        snapshot = self.config.content_snapshot_rows
        plans: List[Tuple[int, List[int]]] = []  # (first chunk index, chunk lengths)
        token_lists: List[TokenArray] = []
        with telemetry.span("serialize"):
            for header, values in requests:
                values = list(values)
                if not values:
                    raise ModelError("cannot embed an empty column")
                if snapshot is not None:
                    chunks = [values[:snapshot]]
                else:
                    chunks = self._column_chunks(header, values)
                plans.append((len(token_lists), [len(c) for c in chunks]))
                for chunk in chunks:
                    chunk_table = Table.from_columns([(header, list(chunk))])
                    token_lists.append(self._serializer.serialize(chunk_table))
        with telemetry.span("encode"):
            states_list = self.encoder.encode_batch(
                token_lists, batch_size=batch_size
            )
        out: List[np.ndarray] = []
        with telemetry.span("aggregate"):
            for start, chunk_lengths in plans:
                parts = [
                    aggregate.column_embeddings(
                        token_lists[start + i],
                        states_list[start + i],
                        1,
                        header_weight=self.config.header_weight,
                        use_cls_anchor=self.config.cls_per_column,
                    )[0]
                    for i in range(len(chunk_lengths))
                ]
                if snapshot is not None:
                    # Snapshot models return their (single) chunk directly.
                    out.append(parts[0])
                else:
                    # Mirror embed_value_column exactly: the length-weighted
                    # mean is applied even to a single chunk (x*n/n is not
                    # bit-identical to x, and results must match the
                    # single-call path to the last ulp).
                    weights = np.array(chunk_lengths, dtype=np.float64)
                    stacked = np.stack(parts)
                    out.append(
                        (stacked * weights[:, None]).sum(axis=0) / weights.sum()
                    )
        return out

    # ------------------------------------------------------------------
    # Level embeddings
    # ------------------------------------------------------------------

    def embed_columns(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.COLUMN)
        tokens, states, _ = self._encode_table(table)
        return aggregate.column_embeddings(
            tokens,
            states,
            table.num_columns,
            header_weight=self.config.header_weight,
            use_cls_anchor=self.config.cls_per_column,
        )

    def embed_rows(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.ROW)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            out = np.zeros((table.num_rows, self.dim))
            for r in range(table.num_rows):
                tokens = self._serializer.serialize_row(table, r)
                states = self.encoder.encode(tokens)
                out[r] = states.mean(axis=0)
            return out
        tokens, states, effective = self._encode_table(table)
        n_rows = aggregate.embedded_row_count(tokens)
        return aggregate.row_embeddings(tokens, states, min(n_rows, effective.num_rows))

    def embed_table(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.TABLE)
        tokens, states, _ = self._encode_table(table)
        return aggregate.table_embedding(
            tokens, states, header_weight=self.config.header_weight
        )

    def embed_cells(
        self, table: Table, coords: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        self._require(EmbeddingLevel.CELL)
        tokens, states, _ = self._encode_table(table)
        return aggregate.cell_embeddings(tokens, states, coords)

    def embed_entities(self, table: Table) -> Dict[str, np.ndarray]:
        self._require(EmbeddingLevel.ENTITY)
        tokens, states, _ = self._encode_table(table)
        sums: Dict[str, np.ndarray] = {}
        counts: Dict[str, int] = {}
        for (row, col), entity_id in table.entity_links.items():
            vec = aggregate.entity_embedding(tokens, states, row, col)
            if vec is None:
                continue
            if entity_id in sums:
                sums[entity_id] = sums[entity_id] + vec
                counts[entity_id] += 1
            else:
                sums[entity_id] = vec
                counts[entity_id] = 1
        return {eid: sums[eid] / counts[eid] for eid in sums}

    def embed_value_column(self, header: str, values: Sequence[object]) -> np.ndarray:
        self._require(EmbeddingLevel.COLUMN)
        if not len(values):
            raise ModelError("cannot embed an empty column")
        snapshot = self.config.content_snapshot_rows
        if snapshot is not None:
            # The model never sees beyond its snapshot; no chunking needed.
            values = list(values)[:snapshot]
            return self._embed_chunk(header, values)
        chunks = self._column_chunks(header, values)
        parts = [self._embed_chunk(header, chunk) for chunk in chunks]
        weights = np.array([len(chunk) for chunk in chunks], dtype=np.float64)
        stacked = np.stack(parts)
        return (stacked * weights[:, None]).sum(axis=0) / weights.sum()

    # ------------------------------------------------------------------

    def _column_chunks(
        self, header: str, values: Sequence[object]
    ) -> List[List[object]]:
        """Split values into chunks that each fit the input budget."""
        values = list(values)
        probe = Table.from_columns([(header, values)])
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            return [values]
        fit = self._serializer.fit_rows(probe)
        if fit <= 0:
            fit = 1
        if fit >= len(values):
            return [values]
        return [values[i : i + fit] for i in range(0, len(values), fit)]

    def _embed_chunk(self, header: str, values: Sequence[object]) -> np.ndarray:
        chunk_table = Table.from_columns([(header, list(values))])
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            # Row-template models average their per-row encodings.
            rows = RowTemplateSerializer(self.tokenizer, self.config.max_tokens)
            states = [
                self.encoder.encode(rows.serialize_row(chunk_table, r)).mean(axis=0)
                for r in range(chunk_table.num_rows)
            ]
            return np.stack(states).mean(axis=0)
        tokens = self._serializer.serialize(chunk_table)
        states = self.encoder.encode(tokens)
        return aggregate.column_embeddings(
            tokens,
            states,
            1,
            header_weight=self.config.header_weight,
            use_cls_anchor=self.config.cls_per_column,
        )[0]
